//! Smoke tests: every paper exhibit regenerates end-to-end at tiny
//! scale, producing structurally complete results.

use workloads::{WorkloadKind, WorkloadSpec};
use ws_bench::experiments::{fig1, fig4, fig5, fig6, table1, table2, table3, table4};
use ws_bench::BenchArgs;

fn tiny_args() -> BenchArgs {
    BenchArgs::parse_from(
        "--workers 2 --scale 0.0001"
            .split_whitespace()
            .map(String::from),
    )
}

#[test]
fn table2_regenerates() {
    let r = table2::run(&tiny_args());
    assert_eq!(r.rows.len(), 6, "five ladder rungs + serial");
    assert_eq!(r.rows[5].version, "Serial");
    assert!(r.rows.iter().all(|row| row.seconds > 0.0));
    // The serial row has zero overhead by definition.
    assert_eq!(r.rows[5].overhead_cycles, 0.0);
    let rendered = table2::render(&r).render();
    assert!(rendered.contains("Private tasks"));
}

#[test]
fn table3_regenerates() {
    let r = table3::run(&tiny_args());
    assert_eq!(r.rows.len(), 4, "wool, cilk-like, tbb-like, omp-like");
    let wool = &r.rows[0];
    assert_eq!(wool.system, "wool");
    assert!(wool.inlined_cycles_public.is_some(), "wool reports a range");
    assert!(r.rows.iter().all(|row| !row.steal_cycles.is_empty()));
    let rendered = table3::render(&r).render();
    assert!(rendered.contains("cilk-like"));
}

#[test]
fn table4_regenerates() {
    let r = table4::run(&tiny_args());
    assert_eq!(r.rows.len(), 4);
    for row in &r.rows {
        for &(p, predicted, measured) in &row.entries {
            assert!(p >= 2);
            assert!(predicted >= 0.0 && predicted.is_finite());
            assert!(measured > 0.0 && measured.is_finite());
        }
    }
}

#[test]
fn fig1_regenerates() {
    let r = fig1::run(&tiny_args());
    assert_eq!(r.fib.len(), 4);
    assert_eq!(r.stress.len(), 4);
    for s in r.fib.iter().chain(&r.stress) {
        assert!(!s.points.is_empty());
        assert!(s.points.iter().all(|&(_, v)| v > 0.0 && v.is_finite()));
    }
    let (l, rt) = fig1::render(&r);
    assert!(l.render().contains("wool"));
    assert!(rt.render().contains("relative"));
}

#[test]
fn fig4_regenerates() {
    let r = fig4::run(&tiny_args());
    assert_eq!(r.panels.len(), 5, "five region sizes");
    for p in &r.panels {
        assert_eq!(p.series.len(), 4, "base/peek/trylock/nolock");
        assert!(p.series.iter().any(|(n, _)| n == "nolock"));
    }
    assert_eq!(fig4::render(&r).len(), 5);
}

#[test]
fn fig5_regenerates_subset() {
    // A subset keeps the smoke test fast; full sweep is the binary's job.
    let specs = vec![
        WorkloadSpec {
            kind: WorkloadKind::Mm,
            p1: 24,
            p2: 0,
            reps: 2,
        },
        WorkloadSpec {
            kind: WorkloadKind::Stress,
            p1: 4,
            p2: 64,
            reps: 4,
        },
    ];
    let r = fig5::run_specs(&tiny_args(), &specs);
    assert_eq!(r.panels.len(), 2);
    assert!(r.panels[0].absolute, "mm uses absolute speedup");
    assert!(!r.panels[1].absolute, "stress uses relative speedup");
    for p in &r.panels {
        assert_eq!(p.series.len(), 4);
    }
}

#[test]
fn fig6_regenerates() {
    let r = fig6::run(&tiny_args());
    assert_eq!(r.panels.len(), 5, "the paper's workload selection");
    for p in &r.panels {
        for b in &p.bars {
            // NA must dominate a healthy run; all fractions finite.
            assert!(b.fractions.iter().all(|f| f.is_finite() && *f >= 0.0));
            assert!(b.fractions[1] > 0.0, "NA nonzero in {}", p.workload);
        }
    }
}

#[test]
fn table1_regenerates_with_full_row_set() {
    let r = table1::run(&tiny_args());
    assert_eq!(r.rows.len(), 24, "all Table I rows");
    for row in &r.rows {
        assert!(
            row.parallelism0 >= 0.9,
            "{}: {}",
            row.workload,
            row.parallelism0
        );
        assert!(
            row.parallelism_2000 <= row.parallelism0 + 1e-6,
            "{}: realistic model must not exceed ideal",
            row.workload
        );
        assert!(row.g_t > 0.0);
        assert!(row.rep_kcycles > 0.0);
    }
    let rendered = table1::render(&r).render();
    assert!(rendered.contains("cholesky"));
    assert!(rendered.contains("stress"));
}

#[test]
fn ablation_regenerates() {
    use ws_bench::experiments::ablation;
    let r = ablation::run(&tiny_args());
    assert_eq!(r.rows.len(), 4 * 5 + 1, "trip x batch sweep + all-public");
    assert!(r.rows.iter().all(|row| row.seconds > 0.0));
    let forced = r.rows.last().unwrap();
    assert!(forced.force_public);
    assert_eq!(
        forced.private_ratio, 0.0,
        "all-public leaves nothing private"
    );
    assert_eq!(r.join_policy.len(), 2);
    assert_eq!(r.join_policy[0].system, "wool");
    assert_eq!(r.join_policy[1].system, "wool/no-leapfrog");
    // Plain waiting performs no leap steals (modulo the long-stall
    // progress valve, which cannot fire in a healthy tiny run).
    assert_eq!(r.join_policy[1].leap_steals, 0);
    let rendered = ablation::render(&r).render();
    assert!(rendered.contains("private%"));
    assert!(ablation::render_join_policy(&r)
        .render()
        .contains("no-leapfrog"));
}
