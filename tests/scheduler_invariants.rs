//! Scheduler invariants under sustained multi-threaded stress.

use wool_core::{Pool, PoolConfig, Strategy, WorkerHandle};

fn fib<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
    a + b
}

/// Every spawn is matched by exactly one join of some kind.
#[test]
fn spawns_equal_joins() {
    let mut pool: Pool = Pool::new(4);
    for _ in 0..10 {
        pool.run(|h| fib(h, 20));
        let t = pool.last_report().unwrap().total;
        let joins =
            t.inlined_private + t.inlined_public + t.stolen_joins + (t.rts_joins - t.stolen_joins); // reacquired-task joins
        assert_eq!(t.spawns, joins, "{t:?}");
    }
}

/// Every steal is eventually matched by a stolen join (same region).
#[test]
fn steals_equal_stolen_joins() {
    let mut pool: Pool = Pool::new(4);
    for _ in 0..20 {
        pool.run(|h| fib(h, 22));
        let t = pool.last_report().unwrap().total;
        assert_eq!(
            t.total_steals(),
            t.stolen_joins,
            "each stolen task is joined exactly once: {t:?}"
        );
    }
}

/// The paper's §III-A claim: back-offs stay rare relative to steals.
#[test]
fn backoffs_stay_rare() {
    let mut pool: Pool = Pool::new(4);
    let mut steals = 0;
    let mut backoffs = 0;
    for _ in 0..40 {
        pool.run(|h| fib(h, 22));
        let t = pool.last_report().unwrap().total;
        steals += t.total_steals();
        backoffs += t.backoffs;
    }
    if steals > 100 {
        let ratio = backoffs as f64 / steals as f64;
        assert!(ratio < 0.05, "backoff ratio {ratio} ({backoffs}/{steals})");
    }
}

/// Span accounting: work is conserved across worker counts.
#[test]
fn work_is_conserved() {
    let run_work = |workers: usize| -> (u64, u64) {
        let cfg = PoolConfig::with_workers(workers).instrument_span(true);
        let mut pool: Pool = Pool::with_config(cfg);
        pool.run(|h| fib(h, 21));
        let r = pool.last_report().unwrap();
        (r.work, r.span0)
    };
    let (w1, s1) = run_work(1);
    let (w1b, _) = run_work(1);
    assert!(w1 > 0 && w1b > 0);
    // Repeated single-worker measurements agree (cache and
    // instrumentation noise allowed).
    let ratio = w1b as f64 / w1 as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "work should be reproducible: {w1} vs {w1b}"
    );
    // Multi-worker work only sanity-checked from below: on hosts with
    // fewer hardware threads than workers, rdtsc keeps counting while a
    // worker is descheduled, inflating its measured leaf time — which
    // is why Table I takes its work/span numbers from 1-worker runs.
    let (w4, _s4) = run_work(4);
    assert!(
        w4 as f64 > 0.5 * w1 as f64,
        "work lost at 4 workers: {w1} vs {w4}"
    );
    // Span is at most work.
    assert!(s1 <= w1);
}

/// Mixed fork + for_each under concurrency, repeated to shake races.
#[test]
fn mixed_primitives_stress() {
    use std::sync::atomic::{AtomicU64, Ordering};
    let mut pool: Pool = Pool::new(4);
    for round in 0..30 {
        let total = AtomicU64::new(0);
        pool.run(|h| {
            h.for_each_spawn(16, &|h, i| {
                let (a, b) = h.fork(
                    |h| fib(h, 10 + (i as u64 % 3)),
                    |h| {
                        let mut acc = 0;
                        h.for_each_spawn(4, &|_h, j| {
                            std::hint::black_box(j);
                        });
                        acc += i as u64;
                        acc
                    },
                );
                total.fetch_add(a + b, Ordering::Relaxed);
            });
        });
        let got = total.load(Ordering::Relaxed);
        let expect: u64 = (0..16u64)
            .map(|i| {
                let f = match i % 3 {
                    0 => 55,
                    1 => 89,
                    _ => 144,
                };
                f + i
            })
            .sum();
        assert_eq!(got, expect, "round {round}");
    }
}

/// Pools of every strategy survive panics under concurrency.
#[test]
fn panic_under_concurrency() {
    fn check<S: Strategy>() {
        let mut pool: Pool<S> = Pool::new(3);
        for _ in 0..10 {
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.run(|h| {
                    let ((), v) = h.fork(
                        |h| {
                            // Some real work on the non-panicking side.
                            std::hint::black_box(fib(h, 12));
                        },
                        |_| -> u64 { panic!("injected") },
                    );
                    v
                })
            }));
            assert!(r.is_err());
            assert_eq!(pool.run(|h| fib(h, 10)), 55);
        }
    }
    check::<wool_core::WoolFull>();
    check::<wool_core::TaskSpecific>();
    check::<wool_core::LockedBase>();
}

/// Deep nesting across pool sizes and small stacks exercises the
/// overflow fallback concurrently.
#[test]
fn overflow_under_concurrency() {
    // fib(n) keeps at most one pending task per recursion level, so the
    // stack must be smaller than the recursion depth to overflow.
    let cfg = PoolConfig::with_workers(4).stack_capacity(16);
    let mut pool: Pool = Pool::with_config(cfg);
    for _ in 0..5 {
        let v = pool.run(|h| fib(h, 24));
        assert_eq!(v, 46368);
    }
    let t = pool.last_report().unwrap().total;
    assert!(t.overflow_inlines > 0, "tiny stack must overflow: {t:?}");
}

/// A pool with no workers could never run anything: constructing one
/// must fail loudly with an actionable message, not hang or divide by
/// zero later (`wool-serve` has the twin test for `ServePool::start`).
#[test]
fn pool_zero_workers_rejected() {
    let err = match std::panic::catch_unwind(|| {
        let _: Pool = Pool::with_config(PoolConfig::with_workers(0));
    }) {
        Ok(()) => panic!("Pool::with_config(workers == 0) must panic"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("at least one worker"),
        "panic message should explain the fix: {msg:?}"
    );
}
