//! Smoke test for the `--trace-out` pipeline (bench `trace` feature):
//! record a traced `fib` run, export Chrome trace JSON, re-parse it and
//! validate both its structure and its agreement with the scheduler's
//! own statistics.

use minijson::Json;
use ws_bench::tracing::{record_fib_trace, record_stress_trace, write_chrome};

#[test]
fn traced_fib_exports_valid_chrome_json() {
    let (trace, stats) = record_fib_trace(3, 18);
    assert_eq!(
        trace.dropped(),
        0,
        "fib(18) must fit the --trace-out ring capacity"
    );
    assert!(!trace.is_empty());

    // --- acceptance: steal-graph total equals the Stats steal count ---
    let analysis = trace.analyze();
    assert_eq!(analysis.steals, stats.total_steals());
    let edge_total: u64 = analysis.steal_graph.iter().map(|e| e.count).sum();
    assert_eq!(edge_total, stats.total_steals());
    assert_eq!(
        trace.count(wool_core::wool_trace::EventKind::Spawn),
        stats.spawns
    );

    // --- export and re-parse ---
    let dir = std::env::temp_dir().join(format!("wool-trace-smoke-{}", std::process::id()));
    let path = dir.join("trace.json");
    let path_str = path.to_str().unwrap();
    write_chrome(path_str, &trace).expect("export must succeed");
    let text = std::fs::read_to_string(&path).unwrap();
    let doc = minijson::parse(&text).expect("exported file must be valid JSON");

    // Top-level Chrome trace shape.
    assert!(doc.get("displayTimeUnit").is_some());
    let other = doc.get("otherData").expect("otherData object");
    assert!(other.get("ticks_per_ns").and_then(Json::as_f64).unwrap() > 0.0);
    assert_eq!(other.get("dropped_events").and_then(Json::as_u64), Some(0));

    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // Every event record is well-formed per the trace-event format.
    let mut instants = 0u64;
    let mut metadata = 0u64;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(matches!(ph, "i" | "X" | "M"), "unexpected phase {ph}");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid");
        assert!(tid < 3, "tid must be a worker index");
        match ph {
            "M" => metadata += 1,
            "i" => {
                instants += 1;
                // Timestamps are µs relative to the trace epoch.
                assert!(e.get("ts").and_then(Json::as_f64).unwrap() >= 0.0);
                assert!(e.get("cat").and_then(Json::as_str).is_some());
            }
            _ => {
                assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
    }
    assert_eq!(metadata, 3, "one thread_name record per worker");
    assert_eq!(
        instants,
        trace.len() as u64,
        "every retained event appears as an instant"
    );

    // Steal events in the JSON match the analysis too.
    let steal_instants = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("steal_success"))
        .count() as u64;
    assert_eq!(steal_instants, analysis.steals);

    std::fs::remove_file(&path).ok();
    std::fs::remove_dir(&dir).ok();
}

/// The `--trace-out` workload runs and its totals agree with `Stats`
/// whether or not thieves won any work this time (timing-dependent).
#[test]
fn stress_trace_totals_agree_with_stats() {
    let (trace, stats) = record_stress_trace(4, 10, 2000, 4);
    assert_eq!(trace.dropped(), 0);
    let analysis = trace.analyze();
    assert_eq!(analysis.steals, stats.total_steals());
    let edge_total: u64 = analysis.steal_graph.iter().map(|e| e.count).sum();
    assert_eq!(edge_total, stats.total_steals());
}

/// Forces at least one steal deterministically (the spawned branch can
/// only ever execute on a thief) so the steal-graph acceptance check is
/// non-vacuous: the graph is non-empty and equals `Stats.steals`.
#[test]
fn forced_steal_appears_in_graph() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use wool_core::{Pool, PoolConfig, WoolFull, WorkerHandle};

    fn fib(h: &mut WorkerHandle<WoolFull>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
        a + b
    }

    let cfg = PoolConfig::with_workers(4)
        .instrument_trace(true)
        .trace_capacity(1 << 20);
    let mut pool: Pool<WoolFull> = Pool::with_config(cfg);
    let started = AtomicBool::new(false);
    pool.run(|h| {
        let ((), ()) = h.fork(
            |h| {
                let t0 = Instant::now();
                while !started.load(Ordering::Acquire) {
                    // Keep spawning/joining so the owner services
                    // trip-wire publication requests.
                    std::hint::black_box(fib(h, 8));
                    if t0.elapsed() > Duration::from_secs(30) {
                        panic!("spawned branch was never stolen");
                    }
                    std::thread::yield_now();
                }
            },
            |_| started.store(true, Ordering::Release),
        );
    });

    let stats = pool.last_report().unwrap().total;
    assert!(stats.total_steals() >= 1);
    let trace = pool.take_trace().expect("tracing was configured");
    let analysis = trace.analyze();
    assert!(!analysis.steal_graph.is_empty());
    if trace.dropped() == 0 {
        assert_eq!(analysis.steals, stats.total_steals());
        let edge_total: u64 = analysis.steal_graph.iter().map(|e| e.count).sum();
        assert_eq!(edge_total, stats.total_steals());
        // Thief/victim indices are in range and never self-referential.
        for e in &analysis.steal_graph {
            assert!(e.thief < 4 && e.victim < 4);
            assert_ne!(e.thief, e.victim);
        }
    }
}

#[test]
fn summary_table_mentions_paper_claim() {
    let (trace, _) = record_fib_trace(2, 15);
    let table = ws_bench::report::steal_summary_table(&trace.analyze());
    let text = table.render();
    assert!(text.contains("total steals"));
    assert!(text.contains("back-off ratio"));
    assert!(text.contains("paper: <1%"));
}
