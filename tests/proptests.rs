//! Property-style tests across crates: randomly shaped task trees give
//! identical results on every scheduler, and the span model obeys its
//! algebraic laws. Cases are drawn from a seeded xorshift64* generator
//! so runs are deterministic without an external property testing crate.

use wool_core::span::combine;
use wool_core::{Fork, Job};
use ws_bench::{System, SystemKind};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// A randomly shaped computation tree executed with forks.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(u64),
    Fork(Box<Tree>, Box<Tree>),
    Seq(Box<Tree>, Box<Tree>),
    ForEach(u8),
}

fn random_tree(rng: &mut Rng, depth: u32) -> Tree {
    if depth == 0 || rng.next() % 4 == 0 {
        return if rng.next() % 2 == 0 {
            Tree::Leaf(rng.next() % 50)
        } else {
            Tree::ForEach((1 + rng.next() % 11) as u8)
        };
    }
    let a = Box::new(random_tree(rng, depth - 1));
    let b = Box::new(random_tree(rng, depth - 1));
    if rng.next() % 2 == 0 {
        Tree::Fork(a, b)
    } else {
        Tree::Seq(a, b)
    }
}

fn eval<C: Fork>(c: &mut C, t: &Tree) -> u64 {
    match t {
        Tree::Leaf(v) => v.wrapping_mul(0x9E3779B9).rotate_left(5),
        Tree::Fork(a, b) => {
            let (x, y) = c.fork(|c| eval(c, a), |c| eval(c, b));
            x.wrapping_add(y.rotate_left(1))
        }
        Tree::Seq(a, b) => {
            let x = eval(c, a);
            let y = eval(c, b);
            x.wrapping_sub(y).rotate_left(3)
        }
        Tree::ForEach(n) => {
            use std::sync::atomic::{AtomicU64, Ordering};
            let acc = AtomicU64::new(0);
            c.for_each_spawn(*n as usize, &|_c, i| {
                acc.fetch_add((i as u64 + 1).wrapping_mul(7), Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        }
    }
}

struct TreeJob(Tree);
impl Job<u64> for TreeJob {
    fn call<C: Fork>(self, ctx: &mut C) -> u64 {
        eval(ctx, &self.0)
    }
}

/// Any tree shape computes the same value on the wool scheduler,
/// the heap-node baseline, and serially.
#[test]
fn random_trees_agree() {
    let mut rng = Rng::new(0x7EE5);
    for _ in 0..64 {
        let t = random_tree(&mut rng, 5);
        let mut serial = System::create(SystemKind::Serial, 1);
        let expect = serial.run_job(TreeJob(t.clone()));
        let mut wool = System::create(SystemKind::Wool, 3);
        assert_eq!(wool.run_job(TreeJob(t.clone())), expect);
        let mut tbb = System::create(SystemKind::TbbLike, 2);
        assert_eq!(tbb.run_job(TreeJob(t)), expect);
    }
}

/// span combine: commutative, bounded by sequential sum and by
/// max + overhead, monotone in the overhead parameter.
#[test]
fn combine_laws() {
    let mut rng = Rng::new(0xC0B1);
    for _ in 0..200 {
        let a = rng.next() % 1_000_000;
        let b = rng.next() % 1_000_000;
        let c1 = rng.next() % 10_000;
        let c2 = rng.next() % 10_000;
        assert_eq!(combine(a, b, c1), combine(b, a, c1));
        let v = combine(a, b, c1);
        assert!(v <= a + b);
        assert!(v >= a.max(b).min(a + b));
        assert!(v <= a.max(b) + c1);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        assert!(combine(a, b, lo) <= combine(a, b, hi));
    }
}

/// combine with zero cost is exactly max; with huge cost it's the
/// sequential sum.
#[test]
fn combine_limits() {
    let mut rng = Rng::new(0x11135);
    for _ in 0..200 {
        let a = rng.next() % 1_000_000;
        let b = rng.next() % 1_000_000;
        assert_eq!(combine(a, b, 0), a.max(b));
        assert_eq!(combine(a, b, u64::MAX / 2), a + b);
    }
}

/// The steal-cost model never predicts more than linear speedup and
/// degrades monotonically with the steal cost.
#[test]
fn model_sanity() {
    use ws_bench::model::ModelInputs;
    use ws_bench::steal_cost_model_speedup;
    let mut rng = Rng::new(0x30DE1);
    for _ in 0..100 {
        let work = rng.f64(1_000.0, 1e9);
        let c2 = rng.f64(0.0, 1e6);
        let steals = rng.f64(0.0, 1e4);
        for p in [2usize, 4, 8] {
            let s = steal_cost_model_speedup(ModelInputs {
                work,
                c2,
                cp: c2,
                steals,
                p,
            });
            assert!(s <= p as f64 + 1e-9, "superlinear prediction {s} at p={p}");
            assert!(s >= 0.0);
            let s_worse = steal_cost_model_speedup(ModelInputs {
                work,
                c2: c2 * 2.0,
                cp: c2 * 2.0,
                steals,
                p,
            });
            assert!(s_worse <= s + 1e-9, "higher cost must not speed up");
        }
    }
}
