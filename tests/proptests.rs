//! Property-based tests across crates: randomly shaped task trees give
//! identical results on every scheduler, and the span model obeys its
//! algebraic laws.

use proptest::prelude::*;
use ws_bench::{System, SystemKind};
use wool_core::span::combine;
use wool_core::{Fork, Job};

/// A randomly shaped computation tree executed with forks.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(u64),
    Fork(Box<Tree>, Box<Tree>),
    Seq(Box<Tree>, Box<Tree>),
    ForEach(u8),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (0u64..50).prop_map(Tree::Leaf),
        (1u8..12).prop_map(Tree::ForEach),
    ];
    leaf.prop_recursive(5, 64, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Tree::Fork(Box::new(a), Box::new(b))),
            (inner.clone(), inner)
                .prop_map(|(a, b)| Tree::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval<C: Fork>(c: &mut C, t: &Tree) -> u64 {
    match t {
        Tree::Leaf(v) => v.wrapping_mul(0x9E3779B9).rotate_left(5),
        Tree::Fork(a, b) => {
            let (x, y) = c.fork(|c| eval(c, a), |c| eval(c, b));
            x.wrapping_add(y.rotate_left(1))
        }
        Tree::Seq(a, b) => {
            let x = eval(c, a);
            let y = eval(c, b);
            x.wrapping_sub(y).rotate_left(3)
        }
        Tree::ForEach(n) => {
            use std::sync::atomic::{AtomicU64, Ordering};
            let acc = AtomicU64::new(0);
            c.for_each_spawn(*n as usize, &|_c, i| {
                acc.fetch_add((i as u64 + 1).wrapping_mul(7), Ordering::Relaxed);
            });
            acc.load(Ordering::Relaxed)
        }
    }
}

struct TreeJob(Tree);
impl Job<u64> for TreeJob {
    fn call<C: Fork>(self, ctx: &mut C) -> u64 {
        eval(ctx, &self.0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any tree shape computes the same value on the wool scheduler,
    /// the heap-node baseline, and serially.
    #[test]
    fn random_trees_agree(t in tree_strategy()) {
        let mut serial = System::create(SystemKind::Serial, 1);
        let expect = serial.run_job(TreeJob(t.clone()));
        let mut wool = System::create(SystemKind::Wool, 3);
        prop_assert_eq!(wool.run_job(TreeJob(t.clone())), expect);
        let mut tbb = System::create(SystemKind::TbbLike, 2);
        prop_assert_eq!(tbb.run_job(TreeJob(t)), expect);
    }

    /// span combine: commutative, bounded by sequential sum and by
    /// max + overhead, monotone in the overhead parameter.
    #[test]
    fn combine_laws(a in 0u64..1_000_000, b in 0u64..1_000_000, c1 in 0u64..10_000, c2 in 0u64..10_000) {
        prop_assert_eq!(combine(a, b, c1), combine(b, a, c1));
        let v = combine(a, b, c1);
        prop_assert!(v <= a + b);
        prop_assert!(v >= a.max(b).min(a + b));
        prop_assert!(v <= a.max(b) + c1);
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(combine(a, b, lo) <= combine(a, b, hi));
    }

    /// combine with zero cost is exactly max; with huge cost it's the
    /// sequential sum.
    #[test]
    fn combine_limits(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        prop_assert_eq!(combine(a, b, 0), a.max(b));
        prop_assert_eq!(combine(a, b, u64::MAX / 2), a + b);
    }

    /// The steal-cost model never predicts more than linear speedup and
    /// degrades monotonically with the steal cost.
    #[test]
    fn model_sanity(work in 1_000.0f64..1e9, c2 in 0.0f64..1e6, steals in 0.0f64..1e4) {
        use ws_bench::steal_cost_model_speedup;
        use ws_bench::model::ModelInputs;
        for p in [2usize, 4, 8] {
            let s = steal_cost_model_speedup(ModelInputs { work, c2, cp: c2, steals, p });
            prop_assert!(s <= p as f64 + 1e-9, "superlinear prediction {s} at p={p}");
            prop_assert!(s >= 0.0);
            let s_worse = steal_cost_model_speedup(ModelInputs {
                work, c2: c2 * 2.0, cp: c2 * 2.0, steals, p,
            });
            prop_assert!(s_worse <= s + 1e-9, "higher cost must not speed up");
        }
    }
}
