//! The extended (non-paper) workloads agree across schedulers too.

use wool_core::{Fork, Job};
use ws_bench::{System, SystemKind};

use workloads::extra::heat::{simulate_par, Grid};
use workloads::extra::knapsack::{knapsack_dp, knapsack_par, Instance};
use workloads::extra::nqueens::{nqueens_par, KNOWN};
use workloads::extra::sort::{merge_sort, quick_sort, random_input};
use workloads::extra::strassen::{strassen, Sq};
use workloads::mm::Matrix;

const SYSTEMS: [SystemKind; 6] = [
    SystemKind::Wool,
    SystemKind::WoolLockedBase,
    SystemKind::TbbLike,
    SystemKind::CilkLike,
    SystemKind::OmpLike,
    SystemKind::Central,
];

struct NqueensJob(usize);
impl Job<u64> for NqueensJob {
    fn call<C: Fork>(self, c: &mut C) -> u64 {
        nqueens_par(c, self.0, self.0)
    }
}

#[test]
fn nqueens_on_all_systems() {
    for kind in SYSTEMS {
        let mut sys = System::create(kind, 3);
        assert_eq!(sys.run_job(NqueensJob(9)), KNOWN[9], "{}", kind.name());
    }
}

struct SortJob {
    data: Vec<u64>,
    quick: bool,
}
impl Job<Vec<u64>> for SortJob {
    fn call<C: Fork>(mut self, c: &mut C) -> Vec<u64> {
        if self.quick {
            quick_sort(c, &mut self.data);
        } else {
            let mut scratch = vec![0; self.data.len()];
            merge_sort(c, &mut self.data, &mut scratch);
        }
        self.data
    }
}

#[test]
fn sorts_on_all_systems() {
    let data = random_input(30_000, 5);
    let mut expect = data.clone();
    expect.sort_unstable();
    for kind in SYSTEMS {
        for quick in [false, true] {
            let mut sys = System::create(kind, 3);
            let got = sys.run_job(SortJob {
                data: data.clone(),
                quick,
            });
            assert_eq!(got, expect, "{} quick={quick}", kind.name());
        }
    }
}

struct StrassenJob(usize);
impl Job<f64> for StrassenJob {
    fn call<C: Fork>(self, c: &mut C) -> f64 {
        let a = Sq::from_matrix(&Matrix::random(self.0, 1));
        let b = Sq::from_matrix(&Matrix::random(self.0, 2));
        let r = strassen(c, &a, &b);
        // Deterministic scalar probe of the product.
        r.at(0, 0) + r.at(self.0 / 2, self.0 / 3) + r.at(self.0 - 1, self.0 - 1)
    }
}

#[test]
fn strassen_on_all_systems() {
    let mut reference = None;
    // 2x the cutoff so real forking happens.
    for kind in SYSTEMS {
        let mut sys = System::create(kind, 3);
        let v = sys.run_job(StrassenJob(130));
        match reference {
            None => reference = Some(v),
            Some(r) => assert!((r - v).abs() < 1e-9, "{}", kind.name()),
        }
    }
}

struct HeatJob;
impl Job<f64> for HeatJob {
    fn call<C: Fork>(self, c: &mut C) -> f64 {
        simulate_par(c, Grid::hot_edge(24, 24), 30).checksum()
    }
}

#[test]
fn heat_on_all_systems() {
    let mut reference = None;
    for kind in SYSTEMS {
        let mut sys = System::create(kind, 3);
        let v = sys.run_job(HeatJob);
        match reference {
            None => reference = Some(v),
            Some(r) => assert_eq!(r, v, "{}", kind.name()),
        }
    }
}

struct KnapsackJob(Instance);
impl Job<u64> for KnapsackJob {
    fn call<C: Fork>(self, c: &mut C) -> u64 {
        knapsack_par(c, &self.0, 8)
    }
}

#[test]
fn knapsack_on_all_systems() {
    let inst = Instance::random(20, 99);
    let expect = knapsack_dp(&inst);
    for kind in SYSTEMS {
        let mut sys = System::create(kind, 3);
        assert_eq!(
            sys.run_job(KnapsackJob(inst.clone())),
            expect,
            "{}",
            kind.name()
        );
    }
}
