//! Cross-crate integration: every workload computes the same result on
//! every scheduler in the repository.

use std::sync::atomic::AtomicU64;
use std::sync::atomic::Ordering::Relaxed;

use wool_core::{Fork, Job};
use workloads::{WorkloadKind, WorkloadSpec};
use ws_bench::{System, SystemKind};

const ALL_SYSTEMS: [SystemKind; 13] = [
    SystemKind::Serial,
    SystemKind::Wool,
    SystemKind::WoolTaskSpecific,
    SystemKind::WoolSyncOnTask,
    SystemKind::WoolLockedBase,
    SystemKind::WoolStealLockBase,
    SystemKind::WoolStealLockPeek,
    SystemKind::WoolStealLockTrylock,
    SystemKind::WoolNoLeapfrog,
    SystemKind::TbbLike,
    SystemKind::CilkLike,
    SystemKind::OmpLike,
    SystemKind::Central,
];

fn check_spec(spec: WorkloadSpec, workers: usize) {
    let mut serial = System::create(SystemKind::Serial, 1);
    let expect = serial.run_job(spec.job());
    for kind in ALL_SYSTEMS {
        let mut sys = System::create(kind, workers);
        let got = sys.run_job(spec.job());
        assert_eq!(
            got,
            expect,
            "{} on {} with {} workers",
            spec.name(),
            kind.name(),
            workers
        );
    }
}

#[test]
fn fib_agrees_everywhere() {
    check_spec(
        WorkloadSpec {
            kind: WorkloadKind::Fib,
            p1: 17,
            p2: 0,
            reps: 2,
        },
        3,
    );
}

#[test]
fn stress_agrees_everywhere() {
    check_spec(
        WorkloadSpec {
            kind: WorkloadKind::Stress,
            p1: 5,
            p2: 64,
            reps: 4,
        },
        3,
    );
}

#[test]
fn mm_agrees_everywhere() {
    check_spec(
        WorkloadSpec {
            kind: WorkloadKind::Mm,
            p1: 32,
            p2: 0,
            reps: 2,
        },
        3,
    );
}

#[test]
fn ssf_agrees_everywhere() {
    check_spec(
        WorkloadSpec {
            kind: WorkloadKind::Ssf,
            p1: 10,
            p2: 0,
            reps: 2,
        },
        3,
    );
}

#[test]
fn cholesky_agrees_everywhere() {
    check_spec(
        WorkloadSpec {
            kind: WorkloadKind::Cholesky,
            p1: 80,
            p2: 300,
            reps: 1,
        },
        3,
    );
}

#[test]
fn repeated_regions_stay_consistent() {
    // A pool survives many small regions with identical results.
    let spec = WorkloadSpec {
        kind: WorkloadKind::Fib,
        p1: 14,
        p2: 0,
        reps: 1,
    };
    let mut serial = System::create(SystemKind::Serial, 1);
    let expect = serial.run_job(spec.job());
    let mut wool = System::create(SystemKind::Wool, 4);
    for rep in 0..100 {
        assert_eq!(wool.run_job(spec.job()), expect, "region {rep}");
    }
}

/// `for_each_spawn(n, body)`: every index in `0..n` must run exactly
/// once, on every scheduler, including the degenerate shapes — an empty
/// loop, a single iteration (no task spawned at all), and a loop wider
/// than the per-worker task stack (spawns overflow to inline calls).
struct ForEachJob {
    n: usize,
}

impl Job<f64> for ForEachJob {
    fn call<C: Fork>(self, ctx: &mut C) -> f64 {
        let hits: Vec<AtomicU64> = (0..self.n).map(|_| AtomicU64::new(0)).collect();
        ctx.for_each_spawn(self.n, &|_c: &mut C, i: usize| {
            hits[i].fetch_add(1, Relaxed);
        });
        // Weighted checksum: distinguishes "ran twice at i, never at j"
        // from a correct run, unlike a plain counter.
        hits.iter()
            .enumerate()
            .map(|(i, h)| (h.load(Relaxed) * (i as u64 + 1)) as f64)
            .sum()
    }
}

#[test]
fn for_each_spawn_edge_widths_agree_everywhere() {
    // n == 0 (no iterations), n == 1 (direct call only), and
    // n > stack_capacity (8192 default: overflow path).
    for n in [0usize, 1, 10_000] {
        let expect = (n as u64 * (n as u64 + 1) / 2) as f64;
        for kind in ALL_SYSTEMS {
            let mut sys = System::create(kind, 3);
            let got = sys.run_job(ForEachJob { n });
            assert_eq!(got, expect, "for_each_spawn({n}) on {}", kind.name());
        }
    }
}

#[test]
fn many_workers_on_tiny_work() {
    // More workers than tasks: thieves mostly fail; results still exact.
    for kind in ALL_SYSTEMS {
        let mut sys = System::create(kind, 8);
        let spec = WorkloadSpec {
            kind: WorkloadKind::Fib,
            p1: 6,
            p2: 0,
            reps: 3,
        };
        assert_eq!(sys.run_job(spec.job()), 3.0 * 8.0, "{}", kind.name());
    }
}
