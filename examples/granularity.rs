//! Granularity analysis of a workload, in the paper's terms.
//!
//! Runs each Table I benchmark family at a small size and prints the
//! §II granularity measures: task granularity `G_T = T_S / N_T`,
//! load-balancing granularity `G_L = T_S / N_M`, and the measured
//! parallelism under the ideal and 2000-cycle overhead models — the
//! same quantities Table I reports.
//!
//! ```text
//! cargo run --release -p workloads --example granularity -- [workers]
//! ```

use wool_core::{Executor, Pool, PoolConfig};
use workloads::{WorkloadKind, WorkloadSpec};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let specs = [
        WorkloadSpec {
            kind: WorkloadKind::Fib,
            p1: 27,
            p2: 0,
            reps: 1,
        },
        WorkloadSpec {
            kind: WorkloadKind::Cholesky,
            p1: 250,
            p2: 1000,
            reps: 8,
        },
        WorkloadSpec {
            kind: WorkloadKind::Mm,
            p1: 64,
            p2: 0,
            reps: 32,
        },
        WorkloadSpec {
            kind: WorkloadKind::Ssf,
            p1: 12,
            p2: 0,
            reps: 16,
        },
        WorkloadSpec {
            kind: WorkloadKind::Stress,
            p1: 8,
            p2: 256,
            reps: 256,
        },
    ];

    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "G_T(cyc)", "G_L(kcyc)", "steals", "par(0)", "par(2k)"
    );
    for spec in specs {
        // Instrumented single-worker run: exact work, span, N_T.
        let cfg = PoolConfig::with_workers(1).instrument_span(true);
        let mut pool1: Pool = Pool::with_config(cfg);
        pool1.run_job(spec.job());
        let r1 = pool1.last_report().unwrap().clone();

        // Multi-worker run: steal count.
        let mut pool_p: Pool = Pool::new(workers);
        pool_p.run_job(spec.job());
        let rp = pool_p.last_report().unwrap();

        let work = r1.work as f64;
        let g_t = work / r1.total.spawns.max(1) as f64;
        let steals = rp.total.total_steals();
        let g_l = work / steals.max(1) as f64 / 1e3;
        println!(
            "{:<24} {:>10.0} {:>10.1} {:>10} {:>10.1} {:>10.1}",
            spec.name(),
            g_t,
            g_l,
            steals,
            r1.parallelism0(),
            r1.parallelism_c(),
        );
    }
    println!(
        "\n(G_T: average work per task; G_L: average work per steal on {workers} workers;\n \
         par: T1/Tinf under 0- and 2000-cycle steal-cost models — cf. Table I.)"
    );
}
