//! wool-par tour: data-parallel iterators on the direct task stack.
//!
//! Computes a few map/reduce kernels and a parallel sort, showing the
//! adaptive grain the splitter picks and the scheduler counters the
//! run produced (steals stay modest because interior forks ride the
//! private task path).
//!
//! ```text
//! cargo run --release -p wool-par --example par -- [workers]
//! ```

use wool_core::{Pool, PoolConfig};
use wool_par::{adaptive_grain, join, par_iter, par_iter_mut, par_range, par_sort_unstable};

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(wool_core::config::default_workers);

    let n = 1 << 20;
    let cfg = PoolConfig::with_workers(workers).min_grain(64);
    let mut pool: Pool = Pool::with_config(cfg);
    println!("workers        : {workers}");
    println!("items          : {n}");
    println!(
        "adaptive grain : {} (len / (8 * workers), floored at min_grain = 64)",
        adaptive_grain(n, workers, 64)
    );

    // Map over a mutable slice: xs[i] = i^2 (mod 2^64).
    let mut xs: Vec<u64> = (0..n as u64).collect();
    pool.run(|h| par_iter_mut(&mut xs).for_each(h, |x| *x = x.wrapping_mul(*x)));
    assert_eq!(xs[3], 9);

    // Reduce: sum of the mapped slice, and a dot product over a range.
    let sum = pool.run(|h| par_iter(&xs).copied().sum(h));
    println!("sum x[i]^2     : {sum}");
    let ys: Vec<u64> = (0..n as u64).rev().collect();
    let dot = pool.run(|h| par_range(0..n).map(|i| xs[i].wrapping_mul(ys[i])).sum(h));
    println!("dot(x^2, y)    : {dot}");

    // Two independent reductions through the binary `join` primitive.
    let (mx, mn) = pool.run(|h| {
        let (xs, ys) = (&xs, &ys);
        join(
            h,
            |h| par_iter(xs).copied().reduce(h, || 0, u64::max),
            |h| par_iter(ys).copied().reduce(h, || u64::MAX, u64::min),
        )
    });
    println!("max x / min y  : {mx} / {mn}");

    // Merge-based parallel sort.
    let mut zs: Vec<u64> = (0..n as u64)
        .map(|i| (i * 2654435761) % 1_000_003)
        .collect();
    pool.run(|h| par_sort_unstable(h, &mut zs));
    assert!(zs.windows(2).all(|w| w[0] <= w[1]));
    println!("sorted         : {} items", zs.len());

    let report = pool.last_report().expect("a region just ran");
    println!(
        "scheduler      : {} spawns, {} steals, {} private joins, {} public joins",
        report.total.spawns,
        report.total.steals,
        report.total.inlined_private,
        report.total.inlined_public
    );
}
