//! Parallel merge sort on the Wool pool, validated against the standard
//! library sort and compared against every baseline scheduler.
//!
//! Demonstrates forking over *disjoint mutable borrows* (`split_at_mut`)
//! — the scoped `fork` guarantees both halves are done before the
//! borrows expire, so this is entirely safe code.
//!
//! ```text
//! cargo run --release -p workloads --example sort -- [len] [workers]
//! ```

use wool_core::{Executor, Fork, Job, Pool};
use ws_baseline::{cilk_like, tbb_like, SerialExecutor};

/// Sorts `xs` by parallel merge sort with an insertion-sort base case.
fn msort<C: Fork>(c: &mut C, xs: &mut [u64], scratch: &mut [u64]) {
    const GRAIN: usize = 256;
    let n = xs.len();
    if n <= GRAIN {
        xs.sort_unstable();
        return;
    }
    let mid = n / 2;
    {
        let (xl, xr) = xs.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        c.fork(|c| msort(c, xl, sl), |c| msort(c, xr, sr));
    }
    // Merge the halves through the scratch buffer.
    scratch[..n].copy_from_slice(xs);
    let (left, right) = scratch[..n].split_at(mid);
    let (mut i, mut j) = (0, 0);
    for slot in xs.iter_mut() {
        if j >= right.len() || (i < left.len() && left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

/// Deterministic pseudo-random input.
fn input(len: usize) -> Vec<u64> {
    let mut x = 0x853C49E6748FEA9Bu64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

/// The sort as a [`Job`] so it can run on any executor.
struct SortJob(Vec<u64>);
impl Job<Vec<u64>> for SortJob {
    fn call<C: Fork>(mut self, ctx: &mut C) -> Vec<u64> {
        let mut scratch = vec![0u64; self.0.len()];
        msort(ctx, &mut self.0, &mut scratch);
        self.0
    }
}

fn run_on(name: &str, e: &mut impl Executor, data: &[u64], expect: &[u64]) {
    let t0 = std::time::Instant::now();
    let sorted = e.run_job(SortJob(data.to_vec()));
    let dt = t0.elapsed();
    assert_eq!(sorted, expect, "{name} produced a wrong ordering");
    println!("  {name:<12} {dt:?}");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let len: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(1 << 20);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let data = input(len);
    let mut expect = data.clone();
    expect.sort_unstable();

    println!("sorting {len} u64s on {workers} workers:");
    run_on("serial", &mut SerialExecutor::new(), &data, &expect);
    let mut wool: Pool = Pool::new(workers);
    run_on("wool", &mut wool, &data, &expect);
    run_on("tbb-like", &mut tbb_like(workers), &data, &expect);
    run_on("cilk-like", &mut cilk_like(workers), &data, &expect);
    println!("all schedulers agree with std sort");
}
