//! Multi-client serving: many submitter threads share one ServePool.
//!
//! Each client thread submits a batch of fork-join jobs through the
//! global injector, waits on its `JobHandle`s, and checks the results;
//! the pool drains gracefully at the end and prints its session report.
//!
//! ```text
//! cargo run --release -p wool-serve --example serve
//! ```

use std::time::Instant;

use wool_serve::strategy::Strategy;
use wool_serve::{ServePool, WorkerHandle};

/// Parallel Fibonacci — the paper's fine-grain stress kernel. Each job
/// is a root of its own fork-join region; idle workers steal across
/// regions, so even a single big job saturates the pool.
fn fib<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = h.fork(move |h| fib(h, n - 1), move |h| fib(h, n - 2));
    a + b
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

fn main() {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
    let clients = 4;
    let jobs_per_client = 64;

    let pool = ServePool::start(workers);
    println!(
        "serving with {} workers (strategy {}), injector capacity {}",
        pool.workers(),
        pool.strategy_name(),
        pool.queue_capacity()
    );

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for client in 0..clients {
            let pool = &pool;
            s.spawn(move || {
                let mut handles = Vec::with_capacity(jobs_per_client);
                for i in 0..jobs_per_client {
                    let n = 18 + ((client + i) % 6) as u64; // fib(18..=23)
                    let h = pool.submit(move |h| fib(h, n)).expect("pool is serving");
                    handles.push((n, h));
                }
                for (n, h) in handles {
                    assert_eq!(h.join(), fib_seq(n), "client {client}: fib({n})");
                }
                println!("client {client}: {jobs_per_client} jobs verified");
            });
        }
    });
    let elapsed = t0.elapsed();

    let mut pool = pool;
    let report = pool.shutdown().expect("first shutdown");
    println!(
        "ran {} jobs in {:.1} ms: {} spawns, {} steals, {:.1}% private joins",
        report.jobs,
        elapsed.as_secs_f64() * 1e3,
        report.total.spawns,
        report.total.total_steals(),
        100.0 * report.total.private_join_ratio(),
    );
}
