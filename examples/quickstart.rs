//! Quickstart: create a pool, fork tasks, read scheduler statistics.
//!
//! ```text
//! cargo run --release -p workloads --example quickstart
//! ```

use wool_core::{Fork, Pool, PoolConfig};

/// Parallel Fibonacci — every recursive call is a spawnable task, no
/// cutoff needed: with the direct task stack a spawn costs a handful of
/// cycles, so granularity control is the scheduler's job, not yours.
fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

/// Parallel sum of a slice by recursive halving.
fn sum<C: Fork>(c: &mut C, xs: &[u64]) -> u64 {
    if xs.len() <= 1024 {
        return xs.iter().sum();
    }
    let (lo, hi) = xs.split_at(xs.len() / 2);
    let (a, b) = c.fork(|c| sum(c, lo), |c| sum(c, hi));
    a + b
}

fn main() {
    // A pool with instrumentation enabled so the report shows work/span.
    let cfg = PoolConfig::with_workers(4).instrument_span(true);
    let mut pool: Pool = Pool::with_config(cfg);

    let n = 30;
    let value = pool.run(|h| fib(h, n));
    println!("fib({n}) = {value}");

    let report = pool.last_report().expect("report after run");
    println!(
        "  spawned {} tasks, {} steals, {:.1}% of joins ran with no atomics",
        report.total.spawns,
        report.total.total_steals(),
        100.0 * report.total.private_join_ratio(),
    );
    println!(
        "  measured parallelism: {:.1} (ideal), {:.1} (with 2000-cycle steal cost)",
        report.parallelism0(),
        report.parallelism_c()
    );

    let xs: Vec<u64> = (0..1_000_000).collect();
    let total = pool.run(|h| sum(h, &xs));
    assert_eq!(total, 999_999 * 1_000_000 / 2);
    println!("sum(0..1e6) = {total}");
}
