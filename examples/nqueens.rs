//! N-queens via fine-grained task-parallel backtracking search.
//!
//! A classic irregular workload: the search tree is highly unbalanced,
//! which is exactly the situation the paper's private-task trip-wire
//! scheme targets (unbalanced trees need more public tasks, balanced
//! trees fewer — §III-B). Run with:
//!
//! ```text
//! cargo run --release -p workloads --example nqueens -- [N] [workers]
//! ```

use wool_core::{Fork, Pool};

/// Counts the solutions that extend the partial placement `rows[..k]`.
///
/// Every branch of the search spawns; there is no cutoff — on the
/// direct task stack that costs almost nothing while still exposing all
/// the parallelism near the root.
fn solve<C: Fork>(c: &mut C, n: usize, k: usize, rows: &[usize]) -> u64 {
    if k == n {
        return 1;
    }
    // Try each column in row k; recurse in parallel over feasible ones.
    let feasible: Vec<usize> = (0..n)
        .filter(|&col| {
            rows.iter()
                .enumerate()
                .take(k)
                .all(|(r, &cc)| cc != col && (k - r) != col.abs_diff(cc))
        })
        .collect();

    // Binary-split the feasible set with forks.
    fn over<C: Fork>(c: &mut C, n: usize, k: usize, rows: &[usize], cols: &[usize]) -> u64 {
        match cols {
            [] => 0,
            [col] => {
                let mut next = rows[..k].to_vec();
                next.push(*col);
                solve(c, n, k + 1, &next)
            }
            _ => {
                let (lo, hi) = cols.split_at(cols.len() / 2);
                let (a, b) = c.fork(|c| over(c, n, k, rows, lo), |c| over(c, n, k, rows, hi));
                a + b
            }
        }
    }
    over(c, n, k, rows, &feasible)
}

/// Known solution counts for n = 0..=12.
const KNOWN: [u64; 13] = [1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200];

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let mut pool: Pool = Pool::new(workers);
    let t0 = std::time::Instant::now();
    let count = pool.run(|h| solve(h, n, 0, &[]));
    let dt = t0.elapsed();

    println!("{n}-queens: {count} solutions in {dt:?} on {workers} workers");
    let stats = pool.last_report().unwrap().total;
    println!(
        "  {} spawns, {} steals ({} while leap-frogging), {} publications",
        stats.spawns,
        stats.total_steals(),
        stats.leap_steals,
        stats.publishes
    );
    if n < KNOWN.len() {
        assert_eq!(count, KNOWN[n], "solution count mismatch");
        println!("  verified against known value {}", KNOWN[n]);
    }
}
