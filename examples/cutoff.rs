//! The paper's thesis, demonstrated: manual cutoffs are unnecessary on
//! the direct task stack and essential everywhere else.
//!
//! §I: existing implementations "exhibit significant overheads for fine
//! grain computations, forcing application programmers to implement
//! manual cut-offs"; Wool's conclusion is "an almost free spawn …
//! obviates the need for application level granularity control".
//!
//! This example times `fib(n)` with a range of manual cutoff depths on
//! each scheduler. On wool, the no-cutoff column is close to the best
//! cutoff (spawning is nearly free); on the heap-node baselines the
//! no-cutoff column is many times slower than their best cutoff.
//!
//! ```text
//! cargo run --release -p workloads --example cutoff -- [n] [workers]
//! ```

use std::time::Instant;

use wool_core::{Executor, Fork, Job, Pool};
use workloads::fib::{fib_cutoff, fib_serial};
use ws_baseline::{cilk_like, tbb_like};

struct FibJob {
    n: u64,
    cutoff: u64,
}

impl Job<u64> for FibJob {
    fn call<C: Fork>(self, ctx: &mut C) -> u64 {
        fib_cutoff(ctx, self.n, self.cutoff)
    }
}

fn row(name: &str, e: &mut impl Executor, n: u64, cutoffs: &[u64], expect: u64) {
    print!("  {name:<10}");
    for &c in cutoffs {
        let t0 = Instant::now();
        let v = e.run_job(FibJob { n, cutoff: c });
        assert_eq!(v, expect);
        print!(" {:>9.1}ms", t0.elapsed().as_secs_f64() * 1e3);
    }
    println!();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(32);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    let cutoffs = [0u64, 10, 16, 22];
    let t0 = Instant::now();
    let expect = fib_serial(n);
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("fib({n}) on {workers} workers; columns are manual cutoff depths");
    print!("  {:<10}", "cutoff:");
    for c in cutoffs {
        if c == 0 {
            print!(" {:>9}  ", "none");
        } else {
            print!(" {c:>9}  ");
        }
    }
    println!(
        "\n  {:<10} {serial_ms:>9.1}ms  (plain recursion, no tasks)",
        "serial"
    );

    let mut wool: Pool = Pool::new(workers);
    row("wool", &mut wool, n, &cutoffs, expect);
    row("tbb-like", &mut tbb_like(workers), n, &cutoffs, expect);
    row("cilk-like", &mut cilk_like(workers), n, &cutoffs, expect);

    println!(
        "\nThe 'none' column is the paper's headline case: on wool it should be\n\
         within a small factor of the best cutoff; on the heap-node baselines\n\
         it pays a task allocation per 13-cycle fib call."
    );
}
