//! Periodic real-time-style processing: the paper's motivating use case.
//!
//! §II of the paper: "Many (soft as well as hard) real time systems
//! have periodic serialization points when input (eg sensor data) is
//! consumed and output is produced. A natural way to program such a
//! system is to parallelize each interval, which then becomes the
//! parallel region." Small parallel regions are exactly where task
//! overhead dominates — the case the direct task stack is built for.
//!
//! This example simulates such a loop: every "interval" ingests a batch
//! of sensor samples, runs a small parallel filter + reduction over
//! them, and records the interval's latency. It prints the latency
//! distribution over many intervals for Wool and for the heap-node
//! baseline, so you can see the per-region overhead difference the
//! paper quantifies.
//!
//! ```text
//! cargo run --release -p workloads --example periodic -- [intervals] [samples] [workers]
//! ```

use std::time::Instant;

use wool_core::{Executor, Fork, Job, Pool};
use ws_baseline::tbb_like;

/// One interval's work: an independent per-sample filter followed by a
/// parallel tree reduction — a miniature parallel region.
struct Interval<'a> {
    samples: &'a [f64],
}

impl<'a> Job<f64> for Interval<'a> {
    fn call<C: Fork>(self, ctx: &mut C) -> f64 {
        fn reduce<C: Fork>(c: &mut C, xs: &[f64]) -> f64 {
            if xs.len() <= 64 {
                // A cheap nonlinear "filter" per sample.
                return xs.iter().map(|&x| (x * 1.3 + 0.7).sin().abs()).sum();
            }
            let (lo, hi) = xs.split_at(xs.len() / 2);
            let (a, b) = c.fork(|c| reduce(c, lo), |c| reduce(c, hi));
            a + b
        }
        reduce(ctx, self.samples)
    }
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn drive(name: &str, e: &mut impl Executor, intervals: usize, samples: &[f64]) {
    let mut latencies_us: Vec<u128> = Vec::with_capacity(intervals);
    let mut checksum = 0.0;
    for _ in 0..intervals {
        let t0 = Instant::now();
        checksum += e.run_job(Interval { samples });
        latencies_us.push(t0.elapsed().as_micros());
    }
    latencies_us.sort_unstable();
    println!(
        "  {name:<10} p50={:>6}us  p90={:>6}us  p99={:>6}us  max={:>6}us  (checksum {checksum:.1})",
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.90),
        percentile(&latencies_us, 0.99),
        latencies_us.last().unwrap(),
    );
}

fn main() {
    let mut args = std::env::args().skip(1);
    let intervals: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2000);
    let n: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4096);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // Deterministic "sensor" data.
    let samples: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).cos()).collect();

    println!("periodic processing: {intervals} intervals x {n} samples, {workers} workers");
    let mut wool: Pool = Pool::new(workers);
    drive("wool", &mut wool, intervals, &samples);
    let mut tbb = tbb_like(workers);
    drive("tbb-like", &mut tbb, intervals, &samples);

    let stats = wool.last_report().unwrap().total;
    println!(
        "  (wool last interval: {} spawns, {} steals)",
        stats.spawns,
        stats.total_steals()
    );
}
