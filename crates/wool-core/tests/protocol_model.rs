//! An exhaustive little model checker for the descriptor protocol.
//!
//! The direct task stack's thief/victim coordination (Figure 3 of the
//! paper; `docs/PROTOCOL.md`) is small enough to model exactly: one
//! descriptor, one joining owner, N thieves, each an explicit state
//! machine over the shared `(state, bot)` pair. This test enumerates
//! **every interleaving** of their atomic steps (DFS over the state
//! space) and checks, in all terminal states:
//!
//! * the task body executed **exactly once** (no loss, no duplication),
//! * the owner terminated and observed the result only after execution,
//! * `bot` ends where it started (the owner reclaims it after a steal).
//!
//! This validates the *algorithm* (including the delayed-thief back-off
//! rule) independently of the production implementation; the
//! implementation is covered by the runtime tests and stress suites.

use std::collections::HashSet;

/// Descriptor state word values (mirroring `wool_core::slot`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Word {
    Empty,
    Task,
    Stolen(u8),
    Done,
}

/// Owner program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OwnerPc {
    /// About to swap the state word (the join fast path).
    Swap,
    /// Saw Empty; spinning until the word changes (RTS_join).
    SpinEmpty,
    /// Saw Stolen; waiting for Done.
    WaitDone,
    /// Synchronized with Done; about to restore `bot`.
    RestoreBot,
    /// Finished (either inlined the task or consumed the result).
    Finished,
}

/// Thief program counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ThiefPc {
    /// About to read `bot` (possibly reading a stale snapshot later).
    ReadBot,
    /// About to load the state word.
    LoadState,
    /// About to CAS Task -> Empty.
    Cas,
    /// CAS won; about to re-validate `bot`.
    CheckBot,
    /// Validation failed; about to restore Task.
    Restore,
    /// Validated; about to write Stolen(i).
    WriteStolen,
    /// About to advance `bot`.
    AdvanceBot,
    /// Executing the task body.
    Exec,
    /// About to write Done.
    WriteDone,
    /// Out of the protocol.
    Stopped,
}

/// One global model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    word: Word,
    /// `bot` as an offset from the joined slot: 0 = at it, 1 = past it.
    bot: u8,
    owner: OwnerPc,
    /// Whether the owner executed the task inline.
    owner_ran: bool,
    thieves: Vec<Thief>,
    /// Total executions of the task body (must end at exactly 1).
    execs: u8,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Thief {
    pc: ThiefPc,
    /// The `bot` snapshot this thief read (None before ReadBot).
    /// A *stale* thief is seeded with Some(0) without re-reading.
    seen_bot: Option<u8>,
    /// The state word snapshot from LoadState.
    seen_word: Option<Word>,
}

impl State {
    fn initial(n_thieves: usize, stale: bool) -> State {
        State {
            word: Word::Task,
            bot: 0,
            owner: OwnerPc::Swap,
            owner_ran: false,
            thieves: (0..n_thieves)
                .map(|i| Thief {
                    pc: if stale && i == 0 {
                        // A delayed thief that already read bot == 0
                        // "arbitrarily long ago" (§III-A's race).
                        ThiefPc::LoadState
                    } else {
                        ThiefPc::ReadBot
                    },
                    seen_bot: if stale && i == 0 { Some(0) } else { None },
                    seen_word: None,
                })
                .collect(),
            execs: 0,
        }
    }

    fn terminal(&self) -> bool {
        self.owner == OwnerPc::Finished && self.thieves.iter().all(|t| t.pc == ThiefPc::Stopped)
    }

    /// All successor states (each = one atomic step by one agent).
    fn successors(&self) -> Vec<State> {
        let mut out = Vec::new();

        // Owner step.
        {
            let mut s = self.clone();
            let stepped = match self.owner {
                OwnerPc::Swap => {
                    let old = s.word;
                    s.word = Word::Empty;
                    match old {
                        Word::Task => {
                            // Inlined: execute directly.
                            s.execs += 1;
                            s.owner_ran = true;
                            s.owner = OwnerPc::Finished;
                        }
                        Word::Empty => s.owner = OwnerPc::SpinEmpty,
                        Word::Stolen(_) => s.owner = OwnerPc::WaitDone,
                        Word::Done => s.owner = OwnerPc::RestoreBot,
                    }
                    true
                }
                OwnerPc::SpinEmpty => {
                    match s.word {
                        Word::Empty => false, // spin (no state change)
                        Word::Task => {
                            s.owner = OwnerPc::Swap;
                            true
                        }
                        Word::Stolen(_) => {
                            s.owner = OwnerPc::WaitDone;
                            true
                        }
                        Word::Done => {
                            s.owner = OwnerPc::RestoreBot;
                            true
                        }
                    }
                }
                OwnerPc::WaitDone => match s.word {
                    Word::Done => {
                        s.owner = OwnerPc::RestoreBot;
                        true
                    }
                    _ => false,
                },
                OwnerPc::RestoreBot => {
                    assert_eq!(s.bot, 1, "bot must be past the stolen slot");
                    s.bot = 0;
                    s.owner = OwnerPc::Finished;
                    true
                }
                OwnerPc::Finished => false,
            };
            if stepped {
                out.push(s);
            }
        }

        // Thief steps.
        for (i, t) in self.thieves.iter().enumerate() {
            let mut s = self.clone();
            let th = &mut s.thieves[i];
            let stepped = match t.pc {
                ThiefPc::ReadBot => {
                    th.seen_bot = Some(s.bot);
                    th.pc = if s.bot == 0 {
                        ThiefPc::LoadState
                    } else {
                        // Past the slot: nothing to steal here.
                        ThiefPc::Stopped
                    };
                    true
                }
                ThiefPc::LoadState => {
                    th.seen_word = Some(s.word);
                    th.pc = if s.word == Word::Task {
                        ThiefPc::Cas
                    } else {
                        ThiefPc::Stopped
                    };
                    true
                }
                ThiefPc::Cas => {
                    if s.word == Word::Task {
                        s.word = Word::Empty;
                        th.pc = ThiefPc::CheckBot;
                    } else {
                        th.pc = ThiefPc::Stopped; // lost the race
                    }
                    true
                }
                ThiefPc::CheckBot => {
                    // §III-A back-off: re-validate bot.
                    th.pc = if s.bot == th.seen_bot.unwrap() {
                        ThiefPc::WriteStolen
                    } else {
                        ThiefPc::Restore
                    };
                    true
                }
                ThiefPc::Restore => {
                    s.word = Word::Task;
                    th.pc = ThiefPc::Stopped;
                    true
                }
                ThiefPc::WriteStolen => {
                    s.word = Word::Stolen(i as u8);
                    th.pc = ThiefPc::AdvanceBot;
                    true
                }
                ThiefPc::AdvanceBot => {
                    s.bot = 1;
                    th.pc = ThiefPc::Exec;
                    true
                }
                ThiefPc::Exec => {
                    s.execs += 1;
                    th.pc = ThiefPc::WriteDone;
                    true
                }
                ThiefPc::WriteDone => {
                    s.word = Word::Done;
                    th.pc = ThiefPc::Stopped;
                    true
                }
                ThiefPc::Stopped => false,
            };
            if stepped {
                out.push(s);
            }
        }
        out
    }
}

/// Explores all reachable states; checks invariants at every terminal.
fn explore(initial: State) -> (usize, usize) {
    let mut seen: HashSet<State> = HashSet::new();
    let mut stack = vec![initial];
    let mut terminals = 0;
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        // Global safety invariants.
        assert!(s.execs <= 1, "task executed twice: {s:?}");
        if s.owner == OwnerPc::Finished {
            assert_eq!(s.execs, 1, "owner finished without execution: {s:?}");
        }
        let succ = s.successors();
        if s.terminal() {
            terminals += 1;
            assert_eq!(s.execs, 1, "terminal without exactly-once: {s:?}");
            assert_eq!(s.bot, 0, "bot not reclaimed: {s:?}");
            // If the owner inlined it, no thief may have run it and
            // vice versa (already covered by execs == 1).
            continue;
        }
        // No deadlock: some agent can always step in non-terminal
        // states *unless* only spin-states remain, which must be
        // waiting on a thief that can step. Since our spin steps only
        // block when the word cannot change anymore, emptiness of succ
        // in a non-terminal state is a liveness bug.
        assert!(
            !succ.is_empty(),
            "stuck non-terminal state (deadlock): {s:?}"
        );
        stack.extend(succ);
    }
    (seen.len(), terminals)
}

#[test]
fn one_thief_exhaustive() {
    let (states, terminals) = explore(State::initial(1, false));
    assert!(states > 10, "model too trivial: {states} states");
    assert!(terminals >= 2, "need both inlined and stolen outcomes");
}

#[test]
fn two_thieves_exhaustive() {
    let (states, terminals) = explore(State::initial(2, false));
    assert!(states > 50, "{states} states");
    assert!(terminals >= 2);
}

#[test]
fn stale_thief_exhaustive() {
    // One thief holding a stale bot snapshot (the §III-A ABA setup)
    // plus one fresh thief.
    let (states, terminals) = explore(State::initial(2, true));
    assert!(states > 50, "{states} states");
    assert!(terminals >= 2);
}

#[test]
fn three_thieves_exhaustive() {
    let (states, _terminals) = explore(State::initial(3, false));
    assert!(states > 200, "{states} states");
}

/// Demonstrates that the back-off rule is load-bearing: without the
/// bot re-validation, the model reaches a double-execution. We flip the
/// CheckBot step to "always proceed" and confirm the invariant breaks
/// in the stale-thief configuration — i.e. the model is strong enough
/// to catch the bug the paper's rule prevents.
#[test]
fn model_catches_missing_backoff() {
    // A hand-built bad trace: the stale thief CASes the *reincarnated*
    // task while bot has moved on. In the real protocol CheckBot
    // catches it; here we replay the trace with the check skipped and
    // watch the execs counter pass 1.
    //
    // owner inlines the task (execs = 1), re-spawns into the same slot
    // (modeled by resetting word to Task), stale thief CASes and — with
    // no re-validation — executes: execs = 2.
    let mut word = Word::Task;
    let mut execs = 0;

    // Owner: swap -> Task -> inline execute.
    let got = std::mem::replace(&mut word, Word::Empty);
    assert_eq!(got, Word::Task);
    execs += 1;
    // Owner: spawns a fresh task into the reused descriptor.
    word = Word::Task;

    // Stale thief (seen_bot = 0 from long ago): CAS succeeds...
    let got = std::mem::replace(&mut word, Word::Empty);
    assert_eq!(got, Word::Task);
    // ...and with NO CheckBot it executes the second incarnation, which
    // in the real system would be a task the owner still believes it
    // owns privately:
    execs += 1;

    assert_eq!(execs, 2, "the unguarded protocol double-executes");
    // (The guarded model above never reaches execs == 2; see the
    // exhaustive tests.)
}
