//! Deterministic exercises of the steal/stolen-join paths that the
//! random workloads only hit probabilistically.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use wool_core::{Pool, PoolConfig, TaskSpecific, WorkerHandle};

/// Forces a steal: the CALL branch spins until the spawned branch has
/// been executed — which can only happen on another worker, so the join
/// *must* take the stolen path (STOLEN wait or DONE).
///
/// Uses the all-public `TaskSpecific` strategy: with private tasks, a
/// worker that never spawns/joins while spinning would also never
/// publish, which is the documented liveness boundary of the trip-wire
/// scheme (§III-B: notifications are checked "on every spawn and join").
#[test]
fn blocked_join_takes_stolen_path() {
    let mut pool: Pool<TaskSpecific> = Pool::new(2);
    let stolen_by = AtomicUsize::new(usize::MAX);
    let started = AtomicBool::new(false);

    pool.run(|h| {
        let ((), ()) = h.fork(
            |_h| {
                // Busy-wait (with a deadline) until the sibling runs.
                let t0 = Instant::now();
                while !started.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                    if t0.elapsed() > Duration::from_secs(20) {
                        panic!("sibling was never stolen");
                    }
                    std::thread::yield_now();
                }
            },
            |h: &mut WorkerHandle<TaskSpecific>| {
                stolen_by.store(h.worker_index(), Ordering::Relaxed);
                started.store(true, Ordering::Release);
            },
        );
    });

    // The spawned branch ran on the thief, not on worker 0.
    assert_ne!(stolen_by.load(Ordering::Relaxed), 0, "task was not stolen");
    let t = pool.last_report().unwrap().total;
    assert_eq!(t.steals, 1, "{t:?}");
    assert_eq!(t.stolen_joins, 1, "{t:?}");
}

/// Steal-child memory behavior (§I): spawning a list of `n` tasks
/// before joining occupies `n` descriptors — the paper's Cilk-vs-Wool
/// space discussion. The overflow counter makes the occupancy
/// observable.
#[test]
fn linear_spawn_occupies_linear_descriptors() {
    // Capacity 64: a 60-element spawn list fits, a 200-element one
    // overflows (and still computes correctly via eager execution).
    let run = |n: usize| -> u64 {
        let cfg = PoolConfig::with_workers(1).stack_capacity(64);
        let mut pool: Pool = Pool::with_config(cfg);
        let out = std::sync::atomic::AtomicU64::new(0);
        pool.run(|h| {
            h.for_each_spawn(n, &|_h, i| {
                out.fetch_add(i as u64, Ordering::Relaxed);
            });
        });
        let overflows = pool.last_report().unwrap().total.overflow_inlines;
        assert_eq!(out.load(Ordering::Relaxed), (n as u64 * (n as u64 - 1)) / 2);
        overflows
    };
    assert_eq!(run(60), 0, "60 pending tasks fit in 64 descriptors");
    assert!(
        run(200) > 0,
        "200 pending tasks must overflow 64 descriptors"
    );
}

/// `worker_index` and `num_workers` are coherent inside tasks.
#[test]
fn worker_identity_in_tasks() {
    let mut pool: Pool = Pool::new(3);
    pool.run(|h| {
        assert_eq!(h.worker_index(), 0, "run caller is worker 0");
        assert_eq!(h.num_workers(), 3);
        h.for_each_spawn(32, &|h, _i| {
            assert!(h.worker_index() < 3);
            assert_eq!(h.num_workers(), 3);
        });
    });
}

/// The trip-wire publication pipeline engages under real stealing:
/// publish requests lead to publications, and some joins still take the
/// no-atomic private path.
#[test]
fn trip_wire_publishes_under_stealing() {
    fn fib(h: &mut WorkerHandle<wool_core::WoolFull>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
        a + b
    }
    let mut pool: Pool = Pool::new(4);
    let mut publishes = 0;
    let mut private = 0;
    let mut steals = 0;
    for _ in 0..40 {
        pool.run(|h| fib(h, 23));
        let t = pool.last_report().unwrap().total;
        publishes += t.publishes;
        private += t.inlined_private;
        steals += t.total_steals();
    }
    if steals > 0 {
        assert!(publishes > 0, "steals happened without any publication");
    }
    assert!(private > 0, "private fast path never used");
}
