//! Property-style tests of the direct task stack scheduler: randomly
//! shaped fork/for-each programs must match a sequential model exactly,
//! on every strategy, across worker counts and tiny stack capacities
//! (exercising the overflow fallback). Programs are generated with a
//! seeded xorshift64* generator so runs are deterministic without an
//! external property testing crate.

use wool_core::{
    LockedBase, Pool, PoolConfig, StealLockTrylock, SyncOnTask, TaskSpecific, WoolFull,
    WorkerHandle,
};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A random program over the fork-join API.
#[derive(Debug, Clone)]
enum Prog {
    Work(u8),
    Fork(Box<Prog>, Box<Prog>),
    Seq(Box<Prog>, Box<Prog>),
    Loop(u8, Box<Prog>),
}

/// Random program of depth at most `depth` (mirrors the old proptest
/// recursive strategy: leaves are `Work`, interior nodes pick among
/// fork / sequence / bounded spawn loop).
fn random_prog(rng: &mut Rng, depth: u32) -> Prog {
    if depth == 0 || rng.next() % 4 == 0 {
        return Prog::Work((rng.next() % 32) as u8);
    }
    match rng.next() % 3 {
        0 => Prog::Fork(
            Box::new(random_prog(rng, depth - 1)),
            Box::new(random_prog(rng, depth - 1)),
        ),
        1 => Prog::Seq(
            Box::new(random_prog(rng, depth - 1)),
            Box::new(random_prog(rng, depth - 1)),
        ),
        _ => Prog::Loop(
            (1 + rng.next() % 5) as u8,
            Box::new(random_prog(rng, depth - 1)),
        ),
    }
}

fn model(p: &Prog) -> u64 {
    match p {
        Prog::Work(v) => (*v as u64).wrapping_mul(0x9E3779B97F4A7C15),
        Prog::Fork(a, b) => model(a).wrapping_add(model(b).rotate_left(9)),
        Prog::Seq(a, b) => model(a) ^ model(b).rotate_left(17),
        Prog::Loop(n, p) => {
            let inner = model(p);
            (0..*n as u64).fold(0u64, |acc, i| acc.wrapping_add(inner.wrapping_mul(i + 1)))
        }
    }
}

fn eval<S: wool_core::Strategy>(h: &mut WorkerHandle<S>, p: &Prog) -> u64 {
    match p {
        Prog::Work(v) => (*v as u64).wrapping_mul(0x9E3779B97F4A7C15),
        Prog::Fork(a, b) => {
            let (x, y) = h.fork(|h| eval(h, a), |h| eval(h, b));
            x.wrapping_add(y.rotate_left(9))
        }
        Prog::Seq(a, b) => {
            let x = eval(h, a);
            let y = eval(h, b);
            x ^ y.rotate_left(17)
        }
        Prog::Loop(n, p) => {
            use std::sync::atomic::{AtomicU64, Ordering};
            let acc = AtomicU64::new(0);
            let inner: Vec<AtomicU64> = (0..*n as usize).map(|_| AtomicU64::new(0)).collect();
            h.for_each_spawn(*n as usize, &|h, i| {
                inner[i].store(eval(h, p), Ordering::Relaxed);
            });
            for (i, v) in inner.iter().enumerate() {
                acc.fetch_add(
                    v.load(Ordering::Relaxed).wrapping_mul(i as u64 + 1),
                    Ordering::Relaxed,
                );
            }
            acc.load(Ordering::Relaxed)
        }
    }
}

fn check<S: wool_core::Strategy>(prog: &Prog, workers: usize, capacity: usize) {
    let cfg = PoolConfig::with_workers(workers).stack_capacity(capacity);
    let mut pool: Pool<S> = Pool::with_config(cfg);
    let got = pool.run(|h| eval(h, prog));
    assert_eq!(got, model(prog), "strategy {}", S::NAME);
}

#[test]
fn wool_matches_model() {
    let mut rng = Rng::new(0xA11CE);
    for case in 0..48 {
        let prog = random_prog(&mut rng, 4);
        let workers = 1 + case % 3;
        check::<WoolFull>(&prog, workers, 8192);
    }
}

#[test]
fn all_strategies_match_model() {
    let mut rng = Rng::new(0x5712A7);
    for _ in 0..24 {
        let prog = random_prog(&mut rng, 4);
        check::<WoolFull>(&prog, 2, 8192);
        check::<TaskSpecific>(&prog, 2, 8192);
        check::<SyncOnTask>(&prog, 2, 8192);
        check::<LockedBase>(&prog, 2, 8192);
        check::<StealLockTrylock>(&prog, 2, 8192);
    }
}

/// Tiny stacks force the eager-overflow path mid-program.
#[test]
fn overflow_fallback_matches_model() {
    let mut rng = Rng::new(0x0F10);
    for _ in 0..48 {
        let prog = random_prog(&mut rng, 4);
        check::<WoolFull>(&prog, 2, 16);
    }
}

/// Statistics identity: joins account for every spawn.
#[test]
fn spawn_join_accounting() {
    let mut rng = Rng::new(0xACC7);
    for case in 0..48 {
        let prog = random_prog(&mut rng, 4);
        let workers = 1 + case % 3;
        let mut pool: Pool<WoolFull> = Pool::new(workers);
        let got = pool.run(|h| eval(h, &prog));
        assert_eq!(got, model(&prog));
        let t = pool.last_report().unwrap().total;
        assert_eq!(
            t.spawns,
            t.inlined_private + t.inlined_public + t.rts_joins,
            "{t:?}"
        );
        assert_eq!(t.total_steals(), t.stolen_joins, "{t:?}");
    }
}
