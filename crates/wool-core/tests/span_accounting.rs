//! Quantitative checks of the online work/span instrumentation against
//! analytically known task DAGs.

use wool_core::{Pool, PoolConfig, WoolFull, WorkerHandle};

/// A busy leaf of roughly fixed duration, returning a checksum.
fn leaf(iters: u64) -> u64 {
    let mut x = iters | 1;
    for _ in 0..iters {
        x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(7);
    }
    std::hint::black_box(x)
}

fn balanced_tree(h: &mut WorkerHandle<WoolFull>, depth: u32, iters: u64) -> u64 {
    if depth == 0 {
        return leaf(iters);
    }
    let (a, b) = h.fork(
        |h| balanced_tree(h, depth - 1, iters),
        |h| balanced_tree(h, depth - 1, iters),
    );
    a.wrapping_add(b)
}

fn run_instrumented(f: impl FnOnce(&mut WorkerHandle<WoolFull>) -> u64 + Send) -> (u64, u64, u64) {
    let cfg = PoolConfig::with_workers(1).instrument_span(true);
    let mut pool: Pool = Pool::with_config(cfg);
    pool.run(f);
    let r = pool.last_report().unwrap();
    (r.work, r.span0, r.span_c)
}

/// A balanced binary tree of 2^d equal leaves has ideal parallelism
/// close to 2^d (up to instrumentation overhead on the spine).
///
/// On a shared/oversubscribed host a descheduled leaf inflates its
/// measured span (the TSC keeps ticking), so the check retries: it
/// passes if any of a few attempts lands in the expected window.
#[test]
fn balanced_tree_parallelism() {
    const DEPTH: u32 = 6; // 64 leaves
    const ITERS: u64 = 200_000; // leaf >> instrumentation cost
    let ideal = (1u64 << DEPTH) as f64;
    let mut last = 0.0;
    for _ in 0..5 {
        let (work, span0, span_c) = run_instrumented(|h| balanced_tree(h, DEPTH, ITERS));
        assert!(work > 0 && span0 > 0);
        assert!(span_c >= span0);
        let par = work as f64 / span0 as f64;
        last = par;
        if par > ideal * 0.4 && par < ideal * 2.0 {
            return;
        }
    }
    panic!("parallelism {last} never near ideal {ideal} in 5 attempts");
}

/// A purely sequential chain has parallelism ~1 under both models.
#[test]
fn sequential_chain_has_no_parallelism() {
    let (work, span0, span_c) = run_instrumented(|_h| {
        let mut acc = 0u64;
        for _ in 0..64 {
            acc = acc.wrapping_add(leaf(50_000));
        }
        acc
    });
    let par0 = work as f64 / span0 as f64;
    let par_c = work as f64 / span_c as f64;
    // Serial code has span == work exactly (no forks to diverge them).
    assert!((0.99..1.01).contains(&par0), "par0 = {par0}");
    assert!((0.99..1.01).contains(&par_c), "par_c = {par_c}");
}

/// Tiny forked leaves: the realistic (2000-cycle) model should report
/// much less parallelism than the ideal model — the paper's point about
/// fine-grained workloads (cf. Table I, stress leaf 256).
#[test]
fn fine_grain_collapses_under_realistic_model() {
    const DEPTH: u32 = 8; // 256 leaves
    const ITERS: u64 = 150; // few hundred cycles per leaf
    let (work, span0, span_c) = run_instrumented(|h| balanced_tree(h, DEPTH, ITERS));
    let par0 = work as f64 / span0 as f64;
    let par_c = work as f64 / span_c as f64;
    assert!(par_c <= par0 + 1e-9);
    assert!(
        par_c < par0 * 0.8,
        "2000-cycle model should cut fine-grain parallelism: {par0} -> {par_c}"
    );
}

/// Asymmetric trees: the span follows the heavy branch.
#[test]
fn asymmetric_fork_span_tracks_heavy_branch() {
    const HEAVY: u64 = 400_000;
    const LIGHT: u64 = 4_000;
    let (work, span0, _): (u64, u64, u64) = run_instrumented(|h| {
        let (a, b) = h.fork(|_| leaf(HEAVY), |_| leaf(LIGHT));
        a.wrapping_add(b)
    });
    // work ≈ heavy + light, span ≈ heavy  =>  par ≈ (H+L)/H ≈ 1.01.
    // Wide tolerance: host preemption can inflate either branch.
    let par = work as f64 / span0 as f64;
    let expect = (HEAVY + LIGHT) as f64 / HEAVY as f64;
    assert!(
        par >= 0.99 && par < expect * 1.5,
        "par {par}, expected about {expect}"
    );
}
