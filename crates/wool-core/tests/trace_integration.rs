//! End-to-end checks of the `trace` feature: a traced run produces a
//! per-worker event log whose contents are consistent with the
//! aggregate `Stats` counters the scheduler already maintains.
//!
//! Compiled only with `--features trace` (see `Cargo.toml`).

use wool_core::wool_trace::EventKind;
use wool_core::{Pool, PoolConfig, TaskSpecific, WoolFull, WorkerHandle};
use wool_core::{StealLockBase, Strategy};

fn fib<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
    a + b
}

/// Runs fib(n) on `workers` workers with tracing on and returns the
/// pool for inspection.
fn traced_fib_pool<S: Strategy>(workers: usize, n: u64, capacity: usize) -> Pool<S> {
    let cfg = PoolConfig::with_workers(workers)
        .instrument_trace(true)
        .trace_capacity(capacity);
    let mut pool: Pool<S> = Pool::with_config(cfg);
    let r = pool.run(|h| fib(h, n));
    let expected = {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..n {
            (a, b) = (b, a + b);
        }
        a
    };
    assert_eq!(r, expected, "fib({n}) must still be correct under tracing");
    pool
}

#[test]
fn untraced_pool_has_no_trace() {
    let mut pool: Pool<WoolFull> = Pool::new(2);
    pool.run(|h| fib(h, 10));
    assert!(pool.last_trace().is_none());
}

#[test]
fn traced_run_matches_stats() {
    let pool = traced_fib_pool::<WoolFull>(4, 20, 1 << 20);
    let report = pool.last_report().unwrap().clone();
    let trace = pool.last_trace().expect("tracing was configured");

    assert_eq!(trace.workers.len(), 4);
    assert_eq!(
        trace.dropped(),
        0,
        "capacity must hold the whole run for exact count checks"
    );

    // Every counter with a 1:1 event has to agree exactly.
    let t = &report.total;
    assert_eq!(trace.count(EventKind::Spawn), t.spawns);
    assert_eq!(
        trace.count(EventKind::StealSuccess),
        t.total_steals(),
        "steal events must equal Stats.steals + Stats.leap_steals"
    );
    assert_eq!(trace.count(EventKind::JoinFastPrivate), t.inlined_private);
    assert_eq!(trace.count(EventKind::JoinFastPublic), t.inlined_public);
    assert_eq!(trace.count(EventKind::Backoff), t.backoffs);
    assert_eq!(trace.count(EventKind::JoinSlow), t.stolen_joins);

    // The analysis pass aggregates the same events.
    let analysis = trace.analyze();
    assert_eq!(analysis.steals, t.total_steals());
    let edge_total: u64 = analysis.steal_graph.iter().map(|e| e.count).sum();
    assert_eq!(edge_total, t.total_steals());
}

#[test]
fn steal_events_point_at_real_workers() {
    let pool = traced_fib_pool::<WoolFull>(3, 20, 1 << 20);
    let trace = pool.last_trace().unwrap();
    for w in &trace.workers {
        for e in &w.events {
            if matches!(
                e.kind,
                EventKind::StealAttempt | EventKind::StealSuccess | EventKind::StealFail
            ) {
                assert!((e.arg as usize) < 3, "victim index out of range");
                assert_ne!(e.arg as usize, w.worker, "no self-steals");
            }
        }
    }
}

#[test]
fn wraparound_drops_are_reported() {
    // A tiny ring cannot hold fib(20)'s ~10k spawn events.
    let pool = traced_fib_pool::<WoolFull>(2, 20, 64);
    let trace = pool.last_trace().unwrap();
    assert!(trace.dropped() > 0);
    // Retained events are still the newest, per worker, in seq order.
    for w in &trace.workers {
        assert!(w.events.len() <= 64);
        assert!(w.events.windows(2).all(|p| p[0].seq < p[1].seq));
    }
}

#[test]
fn rings_reset_between_runs() {
    let cfg = PoolConfig::with_workers(2)
        .instrument_trace(true)
        .trace_capacity(1 << 16);
    let mut pool: Pool<WoolFull> = Pool::with_config(cfg);
    pool.run(|h| fib(h, 18));
    let first = pool.last_trace().unwrap().len();
    assert!(first > 0);
    pool.run(|h| fib(h, 10));
    let second = pool.last_trace().unwrap();
    // A much smaller run after a big one must not carry stale events.
    assert!(second.len() < first);
    assert_eq!(second.count(EventKind::Spawn), {
        let t = pool.last_report().unwrap();
        t.total.spawns
    });
}

#[test]
fn locked_strategies_trace_too() {
    let pool = traced_fib_pool::<StealLockBase>(3, 20, 1 << 20);
    let report = pool.last_report().unwrap().clone();
    let trace = pool.last_trace().unwrap();
    assert_eq!(
        trace.count(EventKind::StealSuccess),
        report.total.total_steals()
    );
}

#[test]
fn chrome_export_of_real_run_parses() {
    let pool = traced_fib_pool::<TaskSpecific>(2, 15, 1 << 18);
    let trace = pool.last_trace().unwrap();
    let doc = trace.to_chrome_json();
    let text = doc.compact();
    let back =
        wool_core::wool_trace::minijson::parse(&text).expect("exporter must emit valid JSON");
    let events = back
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
}
