//! Compile-time scheduler strategy selection.
//!
//! The paper evaluates the direct task stack as a *ladder* of
//! implementation techniques (Table II for the join side, Figure 4 for
//! the steal side). Each rung is expressed here as a zero-sized type
//! implementing [`Strategy`]; the pool, spawn, join and steal code is
//! generic over the strategy, so every variant is fully monomorphized
//! and pays no runtime dispatch — exactly like recompiling the C run
//! time system with different options, which is what the paper did.

/// How thieves synchronize with the victim when stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StealSync {
    /// The direct task stack: CAS on the task descriptor's state word,
    /// no lock, `bot` re-checked after acquisition (thief back-off).
    NoLock,
    /// Take the victim's per-worker lock immediately (§IV-C *base*).
    LockBase,
    /// Read the task descriptor first; lock only if it looks like a
    /// stealable task (§IV-C *peek*).
    LockPeek,
    /// Peek, then `try_lock`; abort the attempt on contention
    /// (§IV-C *trylock*).
    LockTrylock,
}

/// A compile-time configuration of the scheduler.
///
/// The five knobs correspond one-to-one to the implementation techniques
/// §III and §IV-B/C of the paper ablate.
pub trait Strategy: 'static + Send + Sync {
    /// Table II *base*: `top` is a shared atomic compared against `bot`
    /// to detect steals, instead of the state word in the descriptor.
    const SHARED_TOP: bool;

    /// Table II *base*: every join takes the worker's lock.
    const JOIN_LOCK: bool;

    /// Which steal-side synchronization the thieves use (Figure 4).
    const STEAL_SYNC: StealSync;

    /// §III-A: the inlined join calls the task body directly
    /// (monomorphized, optimizer-visible) instead of through the wrapper
    /// function pointer.
    const TASK_SPECIFIC_JOIN: bool;

    /// §III-B: the private-task optimization with the trip-wire
    /// publication scheme.
    const PRIVATE_TASKS: bool;

    /// Name used in reports (matches the paper's row/series labels).
    const NAME: &'static str;

    /// Whether a blocked join leap-frogs (steals from its thief) while
    /// waiting, or just spins. The paper observes (Figure 6 analysis)
    /// that "the LA part is small enough that one would say that simply
    /// waiting would be adequate" — this knob lets the ablation bench
    /// test that claim.
    const LEAPFROG: bool = true;
}

/// The full Wool system: direct task stack + task-specific join +
/// private tasks. Row "Private tasks" in Table II, series "Wool"
/// everywhere else.
#[derive(Debug, Clone, Copy, Default)]
pub struct WoolFull;

impl Strategy for WoolFull {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::NoLock;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = true;
    const NAME: &'static str = "wool";
}

/// Direct task stack with task-specific join but *all tasks public*
/// (Table II row "Task specific join"; Figure 4 series "nolock").
#[derive(Debug, Clone, Copy, Default)]
pub struct TaskSpecific;

impl Strategy for TaskSpecific {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::NoLock;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "task-specific";
}

/// Synchronize on the task descriptor, but join through the generic
/// wrapper function (Table II row "Synchronize on task").
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncOnTask;

impl Strategy for SyncOnTask {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::NoLock;
    const TASK_SPECIFIC_JOIN: bool = false;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "sync-on-task";
}

/// Table II row "Base": per-worker lock taken at every join, shared
/// `top`/`bot` comparison for steal detection, everything in the RTS.
#[derive(Debug, Clone, Copy, Default)]
pub struct LockedBase;

impl Strategy for LockedBase {
    const SHARED_TOP: bool = true;
    const JOIN_LOCK: bool = true;
    const STEAL_SYNC: StealSync = StealSync::LockBase;
    const TASK_SPECIFIC_JOIN: bool = false;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "base";
}

/// Figure 4 "base": join side as `TaskSpecific`, steal side locks the
/// victim immediately.
#[derive(Debug, Clone, Copy, Default)]
pub struct StealLockBase;

impl Strategy for StealLockBase {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::LockBase;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "steal-lock-base";
}

/// Figure 4 "peek": thieves read the descriptor before locking.
#[derive(Debug, Clone, Copy, Default)]
pub struct StealLockPeek;

impl Strategy for StealLockPeek {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::LockPeek;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "steal-lock-peek";
}

/// Figure 4 "trylock": peek plus non-blocking lock acquisition.
#[derive(Debug, Clone, Copy, Default)]
pub struct StealLockTrylock;

impl Strategy for StealLockTrylock {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::LockTrylock;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = false;
    const NAME: &'static str = "steal-lock-trylock";
}

/// The full Wool system but with plain waiting instead of
/// leap-frogging at blocked joins (ablation of the paper's Figure 6
/// observation that leap-frogged work is usually negligible).
#[derive(Debug, Clone, Copy, Default)]
pub struct WoolNoLeap;

impl Strategy for WoolNoLeap {
    const SHARED_TOP: bool = false;
    const JOIN_LOCK: bool = false;
    const STEAL_SYNC: StealSync = StealSync::NoLock;
    const TASK_SPECIFIC_JOIN: bool = true;
    const PRIVATE_TASKS: bool = true;
    const NAME: &'static str = "wool-no-leapfrog";
    const LEAPFROG: bool = false;
}

#[cfg(test)]
#[allow(clippy::assertions_on_constants)] // the strategy constants ARE the subject
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ordered() {
        // The Table II ladder strictly adds techniques top to bottom.
        assert!(LockedBase::JOIN_LOCK && LockedBase::SHARED_TOP);
        assert!(!SyncOnTask::JOIN_LOCK && !SyncOnTask::TASK_SPECIFIC_JOIN);
        assert!(TaskSpecific::TASK_SPECIFIC_JOIN && !TaskSpecific::PRIVATE_TASKS);
        assert!(WoolFull::TASK_SPECIFIC_JOIN && WoolFull::PRIVATE_TASKS);
    }

    #[test]
    fn fig4_variants_only_differ_in_steal_sync() {
        assert_eq!(StealLockBase::STEAL_SYNC, StealSync::LockBase);
        assert_eq!(StealLockPeek::STEAL_SYNC, StealSync::LockPeek);
        assert_eq!(StealLockTrylock::STEAL_SYNC, StealSync::LockTrylock);
        assert_eq!(TaskSpecific::STEAL_SYNC, StealSync::NoLock);
        assert!(StealLockBase::TASK_SPECIFIC_JOIN);
        assert!(StealLockPeek::TASK_SPECIFIC_JOIN);
        assert!(StealLockTrylock::TASK_SPECIFIC_JOIN);
    }
}
