//! Serve mode: a persistent worker fleet fed by the global injector.
//!
//! The batch [`Pool`](crate::Pool) is strictly fork-join: one root task
//! at a time, launched from the owning thread. The engine here removes
//! both restrictions for service workloads: **all** workers are
//! background threads, and root jobs arrive through the bounded MPMC
//! [`Injector`] from any thread, at any time, concurrently.
//!
//! The scheduling order per worker is deliberate:
//!
//! 1. **steal sweep** — finish in-flight jobs first (intra-job
//!    parallelism through the untouched §III-A/B fast path);
//! 2. **injector poll** — only an empty-handed thief starts a new root
//!    job, so accepting traffic never slows the direct task stack;
//! 3. **escalation** — spin → yield → park, with an injector-aware
//!    wakeup: submitters unpark a sleeping worker eagerly instead of
//!    relying on the park timeout.
//!
//! This module is the engine only — type-erased jobs in, completed jobs
//! out. The user-facing API (`ServePool`, `JobHandle` futures, graceful
//! drain, panic propagation) lives in the `wool-serve` crate, which
//! monomorphizes submissions down to [`Runnable`]s.

use crate::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use crate::sync::atomic::{fence, AtomicBool, AtomicU64};
use crate::sync::thread::{JoinHandle, Thread};
use std::marker::PhantomData;
use std::sync::{Arc, Mutex};

use crate::config::PoolConfig;
use crate::exec::WorkerHandle;
use crate::injector::{Injector, Runnable};
use crate::pad::CachePadded;
use crate::pool::PoolInner;
use crate::stats::Stats;
use crate::strategy::{Strategy, WoolFull};
use crate::timebreak::Category;
use crate::worker::WorkerReport;

/// Submission-side coordination state, shared with every worker.
pub(crate) struct ServeShared {
    /// The global injector queue.
    pub injector: Injector,
    /// Per-worker "I am parked (or about to park)" flags; SeqCst against
    /// the queue state, see the wakeup protocol below.
    parked: Box<[CachePadded<AtomicBool>]>,
    /// Worker thread handles for unparking, registered by each worker
    /// before its first park. Only touched on the (cold) wake path.
    threads: Box<[Mutex<Option<Thread>>]>,
    /// Root jobs completed, across all workers.
    jobs: AtomicU64,
}

impl ServeShared {
    fn new(workers: usize, injector_capacity: usize) -> Self {
        ServeShared {
            injector: Injector::with_capacity(injector_capacity),
            parked: (0..workers)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            threads: (0..workers).map(|_| Mutex::new(None)).collect(),
            jobs: AtomicU64::new(0),
        }
    }

    /// Wakes one parked worker, if any. Claiming the flag with a swap
    /// means concurrent submitters wake *different* workers.
    fn wake_one(&self) {
        for (i, p) in self.parked.iter().enumerate() {
            if p.load(Relaxed) && p.swap(false, SeqCst) {
                if let Some(t) = self.threads[i].lock().unwrap().as_ref() {
                    t.unpark();
                }
                return;
            }
        }
    }

    /// Wakes every worker (shutdown).
    fn wake_all(&self) {
        for (i, p) in self.parked.iter().enumerate() {
            p.store(false, SeqCst);
            if let Some(t) = self.threads[i].lock().unwrap().as_ref() {
                t.unpark();
            }
        }
    }
}

/// Everything measured over the lifetime of a serve engine, returned by
/// [`ServeEngine::stop`].
#[derive(Debug)]
pub struct ServeReport {
    /// Number of workers the engine ran.
    pub workers: usize,
    /// Root jobs executed to completion.
    pub jobs: u64,
    /// Per-worker scheduler statistics for the whole serve session.
    pub per_worker: Vec<Stats>,
    /// Sum of `per_worker`.
    pub total: Stats,
    /// The merged event trace of the session, when the engine was
    /// configured with `instrument_trace`.
    #[cfg(feature = "trace")]
    pub trace: Option<wool_trace::Trace>,
}

/// The serve-mode execution engine: `cfg.workers` persistent background
/// workers, a global injector, and nothing else. See the module docs.
pub struct ServeEngine<S: Strategy = WoolFull> {
    inner: Arc<PoolInner>,
    shared: Arc<ServeShared>,
    threads: Vec<JoinHandle<()>>,
    _strategy: PhantomData<S>,
}

impl<S: Strategy> ServeEngine<S> {
    /// Starts the engine.
    ///
    /// # Panics
    /// Panics when `cfg.workers == 0` (see [`PoolConfig::validated`]).
    pub fn start(cfg: PoolConfig) -> Self {
        let inner = PoolInner::build(cfg.validated());
        let p = inner.cfg.workers;
        let shared = Arc::new(ServeShared::new(p, inner.cfg.injector_capacity));
        let threads = (0..p)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let shared = Arc::clone(&shared);
                crate::sync::thread::Builder::new()
                    .name(format!("wool-serve-{}-{}", S::NAME, i))
                    .spawn(move || serve_loop::<S>(inner, shared, i))
                    .expect("failed to spawn serve worker thread")
            })
            .collect();
        ServeEngine {
            inner,
            shared,
            threads,
            _strategy: PhantomData,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Capacity of the injector queue (after power-of-two rounding).
    pub fn injector_capacity(&self) -> usize {
        self.shared.injector.capacity()
    }

    /// Jobs currently waiting in the injector (approximate).
    pub fn queued(&self) -> usize {
        self.shared.injector.len()
    }

    /// Root jobs completed so far.
    pub fn jobs_done(&self) -> u64 {
        self.shared.jobs.load(Relaxed)
    }

    /// The strategy name (paper series label).
    pub fn strategy_name(&self) -> &'static str {
        S::NAME
    }

    /// Enqueues a type-erased job and wakes a parked worker. Returns
    /// the job back when the injector is full (the caller decides
    /// whether to back off and retry or shed load).
    ///
    /// Safe to call from any thread, concurrently.
    pub fn submit(&self, job: Runnable) -> Result<(), Runnable> {
        self.shared.injector.push(job)?;
        // Wakeup protocol (pairs with the park sequence in serve_loop):
        // the push above is Release on the cell; the fence orders it
        // before the `parked` reads in wake_one, so either the parking
        // worker's final is_empty() check sees our job, or we see its
        // parked flag and unpark it.
        fence(SeqCst);
        self.shared.wake_one();
        Ok(())
    }

    /// Stops the engine: workers finish their current job, drain the
    /// injector, and exit; their statistics (and trace, if configured)
    /// are collected into the returned report.
    ///
    /// Jobs still queued at this point are *executed*, not dropped —
    /// graceful-drain policy (reject-then-drain) is the caller's job,
    /// which is why there is no way to stop without draining short of
    /// dropping the whole engine mid-flight.
    pub fn stop(mut self) -> ServeReport {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> ServeReport {
        self.inner.shutdown.store(true, SeqCst);
        self.shared.wake_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        let p = self.inner.workers.len();
        let mut per_worker = Vec::with_capacity(p);
        #[cfg(feature = "trace")]
        let mut trace_snaps = Vec::new();
        for (i, w) in self.inner.workers.iter().enumerate() {
            // SAFETY: every worker thread has been joined; this thread
            // has exclusive access to the report and owner cells.
            let report: WorkerReport = unsafe { *w.report.get() };
            per_worker.push(report.stats);
            #[cfg(feature = "trace")]
            if self.inner.cfg.instrument_trace {
                trace_snaps.push(unsafe { (*w.own.get()).trace.snapshot(i) });
            }
            let _ = i;
        }
        let total: Stats = per_worker.iter().copied().sum();
        ServeReport {
            workers: p,
            jobs: self.shared.jobs.load(Relaxed),
            per_worker,
            total,
            #[cfg(feature = "trace")]
            trace: self
                .inner
                .cfg
                .instrument_trace
                .then(|| wool_trace::Trace::new(trace_snaps, crate::cycles::ticks_per_ns())),
        }
    }
}

impl<S: Strategy> Drop for ServeEngine<S> {
    fn drop(&mut self) {
        if !self.threads.is_empty() {
            let _ = self.stop_inner();
        }
    }
}

/// Main loop of a serve worker.
fn serve_loop<S: Strategy>(inner: Arc<PoolInner>, shared: Arc<ServeShared>, idx: usize) {
    // SAFETY: the engine (via Arc) outlives the loop; this thread is
    // the unique owner of worker `idx`.
    let mut handle = unsafe { WorkerHandle::<S>::new(&inner, idx) };
    let cfg = &inner.cfg;
    let wkr = &inner.workers[idx];

    // Register for injector-aware wakeups before the first park.
    *shared.threads[idx].lock().unwrap() = Some(crate::sync::thread::current());

    // SAFETY: owner-only state, this is the owning thread.
    unsafe {
        let own = handle.own();
        own.stats = Stats::default();
        own.span.reset(false, cfg.span_overhead);
        own.tb.reset(false, Category::St);
        #[cfg(feature = "trace")]
        if cfg.instrument_trace {
            own.trace.clear();
            own.trace.set_enabled(true);
        }
    }

    let mut idle = 0u32;
    loop {
        // 1. Steal sweep: in-flight jobs' forked tasks come first.
        // SAFETY: this thread owns worker `idx`.
        if unsafe { handle.steal_round() } {
            idle = 0;
            continue;
        }

        // 2. Empty-handed: poll the injector for a fresh root job.
        if let Some(job) = shared.injector.pop() {
            // More queued work behind this one? Pass the wakeup on so
            // one submission burst does not drain through one worker.
            if !shared.injector.is_empty() {
                shared.wake_one();
            }
            #[cfg(feature = "trace")]
            let tag = job.tag();
            #[cfg(feature = "trace")]
            if cfg.instrument_trace {
                // SAFETY: this thread owns worker `idx`. The Inject
                // event is backdated to the submitter's timestamp so
                // queueing latency is visible on the timeline.
                unsafe {
                    let own = handle.own();
                    if own.trace.is_enabled() {
                        let submit_ts = job.submit_ts();
                        own.trace
                            .record(wool_trace::EventKind::Inject, submit_ts, tag);
                        own.trace
                            .record(wool_trace::EventKind::Dequeue, crate::cycles::now(), tag);
                    }
                }
            }
            // SAFETY: the submitting side (wool-serve) monomorphized
            // this job for strategy `S`; `handle` is a live worker of
            // that pool on its owning thread.
            unsafe { job.run(&mut handle as *mut WorkerHandle<S> as *mut ()) };
            shared.jobs.fetch_add(1, Relaxed);
            #[cfg(feature = "trace")]
            {
                // SAFETY: this thread owns worker `idx`.
                unsafe { trace_ev!(handle, JobDone, tag) }
            }
            idle = 0;
            continue;
        }

        if inner.shutdown.load(Acquire) && shared.injector.is_empty() {
            break;
        }

        // 3. Nothing anywhere: escalate spin → yield → park.
        #[cfg(feature = "trace")]
        if idle == 0 {
            // SAFETY: this thread owns worker `idx`.
            unsafe { trace_ev!(handle, Idle, 0) }
        }
        idle += 1;
        if idle < cfg.steal_spin {
            crate::sync::hint::spin_loop();
        } else if idle < cfg.idle_yield {
            crate::sync::thread::yield_now();
        } else {
            // Park with an injector-aware wakeup: set the flag, then
            // re-check the queue (and shutdown). A submitter does the
            // mirror image — push, fence, read flags — so one side
            // always observes the other (both sequences are SeqCst);
            // the park timeout is only a safety net, e.g. for steal
            // targets appearing without a submission.
            shared.parked[idx].store(true, SeqCst);
            fence(SeqCst);
            if !shared.injector.is_empty() || inner.shutdown.load(SeqCst) {
                shared.parked[idx].store(false, Relaxed);
                // Work (or shutdown) appeared between the last poll and
                // the flag store. Restart the idle escalation rather
                // than re-entering the park sequence in a tight loop:
                // the queue can be non-empty with the job not yet
                // poppable (a submitter between its slot reservation and
                // its publish), and the escalation's spin phase is where
                // waiting for that publish belongs.
                idle = 0;
                continue;
            }
            #[cfg(feature = "trace")]
            {
                // SAFETY: this thread owns worker `idx`.
                unsafe { trace_ev!(handle, Park, 0) }
            }
            crate::sync::thread::park_timeout(std::time::Duration::from_micros(
                cfg.park_timeout_us,
            ));
            shared.parked[idx].store(false, Relaxed);
            #[cfg(feature = "trace")]
            {
                // SAFETY: this thread owns worker `idx`.
                unsafe { trace_ev!(handle, Unpark, 0) }
            }
        }
    }

    // Publish this worker's statistics for the engine to collect after
    // joining the thread.
    // SAFETY: owner-only state; the engine reads `report` (and the
    // trace ring) only after `JoinHandle::join` returns, which
    // synchronizes with everything this thread ever wrote.
    unsafe {
        let own = handle.own();
        #[cfg(feature = "trace")]
        own.trace.set_enabled(false);
        *wkr.report.get() = WorkerReport {
            stats: own.stats,
            work: 0,
            breakdown: own.tb.finish(),
        };
    }
    wkr.report_epoch.store(u64::MAX, Release);
}
