//! # wool-core — the direct task stack work stealer
//!
//! A from-scratch Rust reproduction of the scheduler described in
//! Karl-Filip Faxén, *Efficient Work Stealing for Fine Grained
//! Parallelism* (ICPP 2010) — the **Wool** runtime and its **direct
//! task stack** algorithm.
//!
//! The library provides:
//!
//! * [`Pool`] — a work-stealing pool whose per-worker task pools are
//!   arrays of fixed-size task descriptors managed with strict stack
//!   discipline; thief/victim synchronization happens on the descriptor
//!   state word, not on the deque pointers (§III-A of the paper).
//! * [`WorkerHandle::fork`] — the `SPAWN/CALL/JOIN` primitive with a
//!   task-specific (monomorphized) join whose inlined fast path costs a
//!   handful of cycles; with private tasks (§III-B) most joins execute
//!   no atomic instruction at all.
//! * Leap-frogging for joins whose task was stolen.
//! * The complete ablation ladder of the paper as compile-time
//!   [`strategy`] types (Table II join variants, Figure 4 steal
//!   variants), all fully monomorphized.
//! * Instrumentation: scheduler event counters ([`Stats`]), online
//!   work/span measurement with the paper's 0-cycle and 2000-cycle
//!   overhead models ([`span`]), and the Figure 6 CPU-time breakdown
//!   ([`timebreak`]).
//!
//! ## Quick start
//!
//! ```
//! use wool_core::{Pool, WorkerHandle, WoolFull};
//!
//! fn fib(h: &mut WorkerHandle<WoolFull>, n: u64) -> u64 {
//!     if n < 2 {
//!         return n;
//!     }
//!     let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
//!     a + b
//! }
//!
//! let mut pool: Pool = Pool::new(2);
//! let r = pool.run(|h| fib(h, 20));
//! assert_eq!(r, 6765);
//! ```

#![warn(missing_docs)]

/// Records a scheduler event into the calling worker's trace ring.
///
/// `$h` is anything with an `own()` accessor to the worker's
/// [`worker::OwnerState`] (in practice a `WorkerHandle`). Expands to
/// nothing without the `trace` cargo feature, so instrumented hot paths
/// compile to exactly the uninstrumented code. With the feature on but
/// tracing not enabled for the run, the cost is one branch — the
/// timestamp is only read when the ring is live.
///
/// Callers must satisfy the `own()` contract (owner thread, short-lived
/// borrow); every use site is inside code already operating under it.
#[cfg(feature = "trace")]
macro_rules! trace_ev {
    ($h:expr, $kind:ident, $arg:expr) => {{
        let own = $h.own();
        if own.trace.is_enabled() {
            let ts = $crate::cycles::now();
            own.trace
                .record(::wool_trace::EventKind::$kind, ts, ($arg) as u32);
        }
    }};
}

#[cfg(not(feature = "trace"))]
macro_rules! trace_ev {
    ($h:expr, $kind:ident, $arg:expr) => {};
}

pub mod api;
pub mod config;
pub mod cycles;
mod exec;
pub mod injector;
pub mod pad;
mod pool;
pub mod scope;
pub mod serve;
pub mod slot;
pub mod span;
pub mod spinlock;
pub mod stats;
pub mod strategy;
pub mod sync;
pub mod timebreak;
mod worker;

#[cfg(feature = "trace")]
pub use wool_trace;

pub use api::{Executor, Fork, Job};
pub use config::PoolConfig;
pub use exec::WorkerHandle;
pub use injector::{Injector, Runnable};
pub use pool::{Pool, RunReport};
pub use scope::Scope;
pub use serve::{ServeEngine, ServeReport};
pub use stats::Stats;
pub use strategy::{
    LockedBase, StealLockBase, StealLockPeek, StealLockTrylock, Strategy, SyncOnTask, TaskSpecific,
    WoolFull, WoolNoLeap,
};

#[cfg(test)]
mod tests {
    use super::*;

    fn fib_ref(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_ref(n - 1) + fib_ref(n - 2)
        }
    }

    fn fib<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = h.fork(|h| fib(h, n - 1), |h| fib(h, n - 2));
        a + b
    }

    fn check_fib<S: Strategy>(workers: usize, n: u64) {
        let mut pool: Pool<S> = Pool::new(workers);
        let r = pool.run(|h| fib(h, n));
        assert_eq!(r, fib_ref(n), "strategy {} x{}", S::NAME, workers);
    }

    #[test]
    fn fib_single_worker_all_strategies() {
        check_fib::<WoolFull>(1, 18);
        check_fib::<TaskSpecific>(1, 18);
        check_fib::<SyncOnTask>(1, 18);
        check_fib::<LockedBase>(1, 18);
        check_fib::<StealLockBase>(1, 18);
        check_fib::<StealLockPeek>(1, 18);
        check_fib::<StealLockTrylock>(1, 18);
    }

    #[test]
    fn fib_multi_worker_all_strategies() {
        check_fib::<WoolFull>(4, 20);
        check_fib::<TaskSpecific>(4, 20);
        check_fib::<SyncOnTask>(4, 20);
        check_fib::<LockedBase>(4, 20);
        check_fib::<StealLockBase>(4, 20);
        check_fib::<StealLockPeek>(4, 20);
        check_fib::<StealLockTrylock>(4, 20);
    }

    #[test]
    fn repeated_regions_reuse_pool() {
        let mut pool: Pool = Pool::new(3);
        for rep in 0..50 {
            let r = pool.run(|h| fib(h, 12));
            assert_eq!(r, 144, "rep {rep}");
        }
    }

    #[test]
    fn for_each_spawn_covers_every_index() {
        use crate::sync::atomic::{AtomicU64, Ordering};
        let mut pool: Pool = Pool::new(4);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(|h| {
            h.for_each_spawn(100, &|_h, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        for (i, hit) in hits.iter().enumerate() {
            assert_eq!(hit.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn stats_count_spawns() {
        let mut pool: Pool = Pool::new(1);
        pool.run(|h| fib(h, 15));
        let report = pool.last_report().unwrap();
        // fib(15) spawns one task per internal call-tree node.
        assert!(
            report.total.spawns > 500,
            "spawns = {}",
            report.total.spawns
        );
        // Single worker: every join is inlined, never stolen.
        assert_eq!(report.total.steals, 0);
        assert_eq!(report.total.stolen_joins, 0);
    }

    #[test]
    fn private_tasks_dominate_on_single_worker() {
        let mut pool: Pool<WoolFull> = Pool::new(1);
        pool.run(|h| fib(h, 15));
        let report = pool.last_report().unwrap();
        // With no thieves, nothing is ever published: all joins private.
        assert_eq!(report.total.inlined_public, 0);
        assert!(report.total.inlined_private > 500);
    }

    #[test]
    fn force_publish_all_uses_public_joins() {
        let cfg = PoolConfig::with_workers(1).force_publish_all(true);
        let mut pool: Pool<WoolFull> = Pool::with_config(cfg);
        pool.run(|h| fib(h, 15));
        let report = pool.last_report().unwrap();
        assert_eq!(report.total.inlined_private, 0);
        assert!(report.total.inlined_public > 500);
    }

    #[test]
    fn multi_worker_sees_steals() {
        // Deterministic even on a uniprocessor: the CALL branch keeps
        // doing task work (so the owner services trip-wire publication
        // requests) until the spawned branch has been executed — which
        // can only happen on a thief.
        use crate::sync::atomic::{AtomicBool, Ordering};
        use std::time::{Duration, Instant};
        let mut pool: Pool = Pool::new(4);
        let started = AtomicBool::new(false);
        pool.run(|h| {
            let ((), ()) = h.fork(
                |h| {
                    let t0 = Instant::now();
                    while !started.load(Ordering::Acquire) {
                        // Keep spawning/joining: every operation checks
                        // the publish-request flag (§III-B).
                        std::hint::black_box(fib(h, 8));
                        if t0.elapsed() > Duration::from_secs(30) {
                            panic!("spawned branch was never stolen");
                        }
                        crate::sync::thread::yield_now();
                    }
                },
                |_| started.store(true, Ordering::Release),
            );
        });
        let t = pool.last_report().unwrap().total;
        assert!(t.total_steals() >= 1, "{t:?}");
        assert!(
            t.publishes >= 1,
            "steal must have required publication: {t:?}"
        );
    }

    #[test]
    fn span_instrumentation_measures_parallelism() {
        let cfg = PoolConfig::with_workers(2).instrument_span(true);
        let mut pool: Pool = Pool::with_config(cfg);
        pool.run(|h| fib(h, 20));
        let report = pool.last_report().unwrap();
        assert!(report.work > 0);
        assert!(report.span0 > 0);
        assert!(report.span0 <= report.span_c, "c-model span is larger");
        let par = report.parallelism0();
        assert!(par > 1.5, "fib(20) should show parallelism, got {par}");
    }

    #[test]
    fn panic_in_inline_task_propagates() {
        let mut pool: Pool = Pool::new(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|h| {
                let ((), ()) = h.fork(|_| {}, |_| panic!("task panic"));
            })
        }));
        assert!(r.is_err());
        // Pool remains usable afterwards.
        let v = pool.run(|h| fib(h, 10));
        assert_eq!(v, 55);
    }

    #[test]
    fn panic_in_call_branch_joins_pending_task() {
        use crate::sync::atomic::{AtomicBool, Ordering};
        let ran = AtomicBool::new(false);
        let mut pool: Pool = Pool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|h| {
                let ((), ()) = h.fork(
                    |_| panic!("call branch panics"),
                    |_| {
                        ran.store(true, Ordering::Relaxed);
                    },
                );
            })
        }));
        assert!(r.is_err());
        // The spawned task was joined (and therefore ran) before unwind.
        assert!(ran.load(Ordering::Relaxed));
        assert_eq!(pool.run(|h| fib(h, 10)), 55);
    }

    #[test]
    fn overflow_falls_back_to_eager_execution() {
        let cfg = PoolConfig::with_workers(1).stack_capacity(16);
        let mut pool: Pool = Pool::with_config(cfg);
        // Recursion depth far beyond 16 pending tasks.
        let r = pool.run(|h| fib(h, 22));
        assert_eq!(r, fib_ref(22));
        let report = pool.last_report().unwrap();
        assert!(report.total.overflow_inlines > 0);
    }

    #[test]
    fn deep_linear_spawn_chain() {
        // A right-leaning chain: each fork's spawned branch is trivial.
        fn chain<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let (rest, one) = h.fork(|h| chain(h, n - 1), |_| 1u64);
            rest + one
        }
        let mut pool: Pool = Pool::new(2);
        let r = pool.run(|h| chain(h, 2000));
        assert_eq!(r, 2000);
    }

    #[test]
    fn results_larger_than_inline_storage() {
        // Results bigger than the 64-byte inline area use the boxed path.
        let mut pool: Pool = Pool::new(2);
        let (a, b) = pool.run(|h| h.fork(|_| [1u64; 16], |_| [2u64; 16]));
        assert_eq!(a, [1u64; 16]);
        assert_eq!(b, [2u64; 16]);
    }

    #[test]
    fn nested_for_each() {
        use crate::sync::atomic::{AtomicU64, Ordering};
        let mut pool: Pool = Pool::new(3);
        let grid: Vec<Vec<AtomicU64>> = (0..8)
            .map(|_| (0..8).map(|_| AtomicU64::new(0)).collect())
            .collect();
        pool.run(|h| {
            h.for_each_spawn(8, &|h, i| {
                h.for_each_spawn(8, &|_h, j| {
                    grid[i][j].fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        for row in &grid {
            for cell in row {
                assert_eq!(cell.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn executor_trait_runs_jobs() {
        struct FibJob(u64);
        impl Job<u64> for FibJob {
            fn call<C: Fork>(self, ctx: &mut C) -> u64 {
                fn go<C: Fork>(c: &mut C, n: u64) -> u64 {
                    if n < 2 {
                        return n;
                    }
                    let (a, b) = c.fork(|c| go(c, n - 1), |c| go(c, n - 2));
                    a + b
                }
                go(ctx, self.0)
            }
        }
        let mut pool: Pool = Pool::new(2);
        assert_eq!(pool.run_job(FibJob(17)), 1597);
        assert_eq!(Executor::workers(&pool), 2);
        assert!(Executor::name(&pool).contains("wool"));
    }

    #[test]
    fn backoff_ratio_stays_low() {
        let mut pool: Pool<TaskSpecific> = Pool::new(4);
        for _ in 0..20 {
            pool.run(|h| fib(h, 18));
        }
        let report = pool.last_report().unwrap();
        // §III-A: "These back offs are infrequent, always below 1% of
        // successful steals." Allow slack for tiny steal counts.
        if report.total.total_steals() > 100 {
            assert!(
                report.total.backoff_ratio() < 0.05,
                "backoff ratio {}",
                report.total.backoff_ratio()
            );
        }
    }
}
