//! Cycle-accurate timing.
//!
//! The paper reports all overheads in CPU cycles. On x86_64 we use the
//! time-stamp counter (`rdtsc`), which on every CPU of the last ~15 years
//! ticks at a constant rate close to the base clock frequency. On other
//! architectures we fall back to `std::time::Instant` and convert
//! nanoseconds into "cycles" using a calibrated rate, so all reported
//! numbers stay in the same unit.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Reads the cycle counter.
#[inline(always)]
pub fn now() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `rdtsc` is always available on x86_64.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Fallback: monotonic nanoseconds scaled to the calibrated rate.
        let base = base_instant();
        (base.elapsed().as_nanos() as u64).wrapping_mul(3)
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn base_instant() -> &'static Instant {
    static BASE: OnceLock<Instant> = OnceLock::new();
    BASE.get_or_init(Instant::now)
}

/// Returns the measured rate of [`now`] in ticks per nanosecond.
///
/// Calibrated once per process by timing the counter against `Instant`
/// over a ~20 ms window.
pub fn ticks_per_ns() -> f64 {
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        let t0 = Instant::now();
        let c0 = now();
        while t0.elapsed() < Duration::from_millis(20) {
            std::hint::spin_loop();
        }
        let c1 = now();
        let dt = t0.elapsed().as_nanos() as f64;
        (c1.wrapping_sub(c0)) as f64 / dt
    })
}

/// Converts a tick count from [`now`] into nanoseconds.
pub fn ticks_to_ns(ticks: u64) -> f64 {
    ticks as f64 / ticks_per_ns()
}

/// Converts a wall-clock duration into equivalent cycle ticks.
pub fn duration_to_ticks(d: Duration) -> f64 {
    d.as_nanos() as f64 * ticks_per_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_enough() {
        let a = now();
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = now();
        assert!(b > a, "counter must advance: {a} -> {b}");
    }

    #[test]
    fn rate_is_sane() {
        let r = ticks_per_ns();
        // Plausible CPU clock rates: 0.5 .. 6 GHz.
        assert!(r > 0.3 && r < 10.0, "ticks/ns = {r}");
    }

    #[test]
    fn ns_roundtrip() {
        let t0 = now();
        std::thread::sleep(Duration::from_millis(5));
        let dt = now() - t0;
        let ns = ticks_to_ns(dt);
        assert!(ns > 3e6 && ns < 1e9, "5ms measured as {ns}ns");
    }
}
