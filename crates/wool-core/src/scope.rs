//! A dynamic spawn scope: arbitrarily many heterogeneous tasks, all
//! joined before the scope returns.
//!
//! [`WorkerHandle::fork`] and `for_each_spawn` cover the paper's
//! benchmark shapes (binary fork and flat homogeneous loops). Some
//! programs — the paper's `cholesky` ancestor in Cilk spawned varying
//! numbers of heterogeneous tasks per region — want the classic
//! `spawn ...; spawn ...; sync;` shape with *different* closures. This
//! module provides it.
//!
//! Because each spawned closure has its own type, the descriptors store
//! a boxed `dyn FnOnce` — one heap allocation per spawn, unlike the
//! inline fast path. That is the honest trade: `scope` is for tasks
//! coarse enough that an allocation does not matter; for fine-grained
//! work use `fork`/`for_each_spawn`, which stay allocation-free. (The
//! boxed closure is still *scheduled* through the direct task stack:
//! descriptor reuse, state-word synchronization, leap-frogging all
//! apply.) Scope tasks return `()`; span instrumentation treats them as
//! part of the enclosing serial segment rather than as parallel
//! branches.

use std::marker::PhantomData;

use crate::exec::WorkerHandle;
use crate::strategy::Strategy;

/// The boxed task type every scope spawn erases to (uniform type, so
/// the stack's typed LIFO join applies).
type BoxedTask<'scope, S> = Box<dyn FnOnce(&mut WorkerHandle<S>) + Send + 'scope>;

/// A spawn scope; see the module docs.
///
/// Created by [`WorkerHandle::scope`]; tasks spawned on it may borrow
/// anything that outlives `'scope` and are all complete when `scope`
/// returns.
pub struct Scope<'scope, S: Strategy> {
    /// Count of tasks pushed and not yet joined.
    pending: usize,
    _marker: PhantomData<(&'scope (), S)>,
}

impl<'scope, S: Strategy> Scope<'scope, S> {
    fn new() -> Self {
        Scope {
            pending: 0,
            _marker: PhantomData,
        }
    }
}

impl<S: Strategy> WorkerHandle<S> {
    /// Runs `f` with a [`Scope`] on which any number of tasks can be
    /// spawned; all of them are joined (in LIFO order, as the stack
    /// discipline requires) before `scope` returns.
    ///
    /// ```
    /// use wool_core::Pool;
    ///
    /// let mut pool: Pool = Pool::new(2);
    /// let mut evens = 0u64;
    /// let mut odds = 0u64;
    /// pool.run(|h| {
    ///     h.scope(|h, s| {
    ///         s.spawn(h, |_| evens = (0..100).filter(|x| x % 2 == 0).sum());
    ///         s.spawn(h, |_| odds = (0..100).filter(|x| x % 2 == 1).sum());
    ///     });
    /// });
    /// assert_eq!(evens + odds, 4950);
    /// ```
    pub fn scope<'scope, R>(
        &mut self,
        f: impl FnOnce(&mut WorkerHandle<S>, &mut Scope<'scope, S>) -> R,
    ) -> R {
        let mut scope = Scope::new();
        // Drop guard: if `f` unwinds, join everything spawned so far
        // before the borrowed environment dies.
        struct Finish<'scope, S: Strategy> {
            h: *mut WorkerHandle<S>,
            scope: *mut Scope<'scope, S>,
        }
        impl<'scope, S: Strategy> Drop for Finish<'scope, S> {
            fn drop(&mut self) {
                // SAFETY: handle and scope outlive the guard (same
                // frame); every pending task is a BoxedTask.
                unsafe {
                    let scope = &mut *self.scope;
                    while scope.pending > 0 {
                        scope.pending -= 1;
                        (*self.h).join_scope_task::<BoxedTask<'scope, S>>();
                    }
                }
            }
        }
        let guard = Finish {
            h: self as *mut Self,
            scope: &mut scope as *mut Scope<'scope, S>,
        };
        let r = f(self, &mut scope);
        drop(guard); // joins all pending tasks (normal path and unwind share it)
        r
    }
}

impl<'scope, S: Strategy> Scope<'scope, S> {
    /// Spawns `f` onto the worker's task stack (boxed; see module docs).
    /// The task may run on any worker; it is joined by the enclosing
    /// [`WorkerHandle::scope`] call.
    pub fn spawn<F>(&mut self, h: &mut WorkerHandle<S>, f: F)
    where
        F: FnOnce(&mut WorkerHandle<S>) + Send + 'scope,
    {
        let boxed: BoxedTask<'scope, S> = Box::new(f);
        // SAFETY: the scope's drop guard joins this task before any
        // `'scope` borrow can expire, and the pushed type is exactly
        // the `BoxedTask` the guard joins with.
        unsafe {
            if h.push_boxed(boxed) {
                self.pending += 1;
            }
            // On overflow `push_boxed` ran the task eagerly; nothing to
            // join later.
        }
    }

    /// Number of tasks spawned and not yet joined.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::{Pool, PoolConfig};

    #[test]
    fn heterogeneous_spawns_join_before_return() {
        let mut pool: Pool = Pool::new(3);
        let a = AtomicU64::new(0);
        let b = AtomicU64::new(0);
        let c = AtomicU64::new(0);
        pool.run(|h| {
            h.scope(|h, s| {
                s.spawn(h, |_| _ = a.fetch_add(1, Ordering::Relaxed));
                s.spawn(h, |_| _ = b.fetch_add(10, Ordering::Relaxed));
                s.spawn(h, |_| _ = c.fetch_add(100, Ordering::Relaxed));
                assert_eq!(s.pending(), 3);
            });
            // All joined here.
            assert_eq!(a.load(Ordering::Relaxed), 1);
            assert_eq!(b.load(Ordering::Relaxed), 10);
            assert_eq!(c.load(Ordering::Relaxed), 100);
        });
    }

    #[test]
    fn scope_returns_value_and_borrows_stack() {
        let mut pool: Pool = Pool::new(2);
        let data = [1u64, 2, 3, 4];
        let sum = pool.run(|h| {
            let partial = AtomicU64::new(0);
            let r = h.scope(|h, s| {
                let (lo, hi) = data.split_at(2);
                s.spawn(h, |_| {
                    _ = partial.fetch_add(lo.iter().sum::<u64>(), Ordering::Relaxed)
                });
                s.spawn(h, |_| {
                    _ = partial.fetch_add(hi.iter().sum::<u64>(), Ordering::Relaxed)
                });
                42u64
            });
            assert_eq!(r, 42);
            partial.load(Ordering::Relaxed)
        });
        assert_eq!(sum, 10);
    }

    #[test]
    fn nested_scopes_and_forks() {
        let mut pool: Pool = Pool::new(3);
        let total = AtomicU64::new(0);
        let total_ref = &total;
        pool.run(|h| {
            h.scope(|h, s| {
                for i in 0..8u64 {
                    s.spawn(h, move |h| {
                        let (x, y) = h.fork(|_| i, |_| i * 2);
                        total_ref.fetch_add(x + y, Ordering::Relaxed);
                    });
                }
            });
        });
        assert_eq!(
            total.load(Ordering::Relaxed),
            (0..8).map(|i| 3 * i).sum::<u64>()
        );
    }

    #[test]
    fn scope_survives_overflow() {
        let cfg = PoolConfig::with_workers(1).stack_capacity(16);
        let mut pool: Pool = Pool::with_config(cfg);
        let n = AtomicU64::new(0);
        pool.run(|h| {
            h.scope(|h, s| {
                for _ in 0..100 {
                    s.spawn(h, |_| _ = n.fetch_add(1, Ordering::Relaxed));
                }
            });
        });
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panic_in_scope_body_joins_pending() {
        let mut pool: Pool = Pool::new(2);
        let ran = AtomicU64::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(|h| {
                h.scope(|h, s| {
                    s.spawn(h, |_| _ = ran.fetch_add(1, Ordering::Relaxed));
                    panic!("scope body panics");
                });
            })
        }));
        assert!(r.is_err());
        // The pending task was joined (hence ran) during unwind.
        assert_eq!(ran.load(Ordering::Relaxed), 1);
        // The pool stays usable.
        assert_eq!(pool.run(|h| h.fork(|_| 2u64, |_| 3u64)), (2, 3));
    }

    #[test]
    fn empty_scope_is_fine() {
        let mut pool: Pool = Pool::new(1);
        let r = pool.run(|h| h.scope(|_h, s| s.pending()));
        assert_eq!(r, 0);
    }
}
