//! Synchronization facade: the one place wool touches `std::sync::atomic`
//! and `std::thread`.
//!
//! Every crate in the scheduler's trusted core (`wool-core`,
//! `wool-serve`, `wool-verify`) imports its atomics, spin hints, and
//! thread primitives from here instead of `std`. Normally the facade is
//! a zero-cost re-export of the std items; under `RUSTFLAGS="--cfg
//! loom"` it swaps in the `wool-loom` model-checked equivalents, so the
//! *production* protocol code — slot state machine, injector, spinlock,
//! serve wakeup — runs unchanged inside exhaustive interleaving models
//! (see `crates/wool-verify` and `docs/VERIFICATION.md`).
//!
//! The `xtask lint` static pass enforces the discipline: any direct
//! `std::sync::atomic` / `std::thread` use outside this file fails the
//! build unless annotated with a `// lint-ok:` justification.
//!
//! Note for `cfg(loom)` builds: `std::sync::Mutex`/`Condvar` remain the
//! std types and must not be held across a facade operation inside a
//! model (the model thread would block the scheduler token). Current
//! call sites (brief handle storage in `serve.rs`) respect this.

/// Atomic integers, flags, fences and `Ordering`.
#[cfg(not(loom))]
pub mod atomic {
    pub use std::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Atomic integers, flags, fences and `Ordering` (model-checked).
#[cfg(loom)]
pub mod atomic {
    pub use wool_loom::sync::atomic::{
        fence, AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering,
    };
}

/// Spin-wait hint. Facade contract: only call from loops that re-check
/// shared state every iteration (the model scheduler relies on it).
#[cfg(not(loom))]
pub mod hint {
    pub use std::hint::spin_loop;
}

/// Spin-wait hint (model-checked).
#[cfg(loom)]
pub mod hint {
    pub use wool_loom::hint::spin_loop;
}

/// The `std::thread` surface wool uses: spawning, parking, yielding.
#[cfg(not(loom))]
pub mod thread {
    pub use std::thread::{
        available_parallelism, current, park, park_timeout, sleep, spawn, yield_now, Builder,
        JoinHandle, Result, Thread,
    };
}

/// The thread surface (model-checked: `park_timeout` never times out in
/// model time, so lost wakeups become detectable deadlocks).
#[cfg(loom)]
pub mod thread {
    pub use wool_loom::thread::{
        available_parallelism, current, park, park_timeout, sleep, spawn, yield_now, Builder,
        JoinHandle, Result, Thread,
    };
}
