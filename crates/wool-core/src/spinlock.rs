//! A minimal test-and-test-and-set spinlock.
//!
//! The lock-based strategy variants of Table II and Figure 4 need a
//! per-worker lock with predictable, small cost. We use our own TATAS
//! lock rather than an OS mutex so the measured overhead is the locking
//! protocol itself, as in the paper's run-time-system experiments.

use crate::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spinlock.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (with escalating pauses) until free.
    #[inline]
    pub fn lock(&self) {
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Test-and-test-and-set: spin on a plain load to avoid
            // hammering the cache line with RMWs.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    crate::sync::hint::spin_loop();
                } else {
                    // Uniprocessor-friendly: let the holder run.
                    crate::sync::thread::yield_now();
                }
            }
        }
    }

    /// Attempts to acquire the lock without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }

    /// Releases the lock.
    ///
    /// Calling this without holding the lock is a logic error (it will
    /// unlock someone else's critical section) but not UB; the scheduler
    /// code pairs every `unlock` with a `lock`/`try_lock` above it.
    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Runs `f` with the lock held.
    ///
    /// Unlike `std::sync::Mutex` there is no poisoning: if `f` panics
    /// the lock is released on unwind and stays usable — the scheduler's
    /// critical sections only move indices, never leave partial state.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        struct Guard<'a>(&'a SpinLock);
        impl Drop for Guard<'_> {
            fn drop(&mut self) {
                self.0.unlock();
            }
        }
        self.lock();
        let _g = Guard(self);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let l = SpinLock::new();
        l.lock();
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn with_runs_closure() {
        let l = SpinLock::new();
        assert_eq!(l.with(|| 42), 42);
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    #[allow(clippy::arc_with_non_send_sync)] // wrapped in a Send newtype below
    fn mutual_exclusion() {
        const THREADS: usize = 4;
        const PER: usize = 50_000;
        let lock = Arc::new(SpinLock::new());
        // Deliberately non-atomic counter protected by the lock.
        let counter = Arc::new(std::cell::UnsafeCell::new(0usize));
        struct Shared(Arc<std::cell::UnsafeCell<usize>>);
        // SAFETY: all accesses are under `lock`.
        unsafe impl Send for Shared {}

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let c = Shared(Arc::clone(&counter));
                crate::sync::thread::spawn(move || {
                    // Capture the whole wrapper (edition-2021 disjoint
                    // field capture would otherwise grab the raw Arc).
                    let c = c;
                    for _ in 0..PER {
                        lock.lock();
                        // SAFETY: protected by `lock`.
                        unsafe { *c.0.get() += 1 };
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined.
        assert_eq!(unsafe { *counter.get() }, THREADS * PER);
    }

    #[test]
    fn contended_try_lock_admits_one_holder() {
        use crate::sync::atomic::{AtomicBool, AtomicUsize};
        const THREADS: usize = 4;
        const ATTEMPTS: usize = 20_000;
        let lock = Arc::new(SpinLock::new());
        let inside = Arc::new(AtomicBool::new(false));
        let acquired = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                let acquired = Arc::clone(&acquired);
                crate::sync::thread::spawn(move || {
                    for _ in 0..ATTEMPTS {
                        if lock.try_lock() {
                            assert!(
                                !inside.swap(true, Ordering::Acquire),
                                "two holders inside the critical section"
                            );
                            acquired.fetch_add(1, Ordering::Relaxed);
                            inside.store(false, Ordering::Release);
                            lock.unlock();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // At least the uncontended attempts of one thread must succeed.
        assert!(acquired.load(Ordering::Relaxed) > 0);
        assert!(lock.try_lock(), "lock left held after the storm");
        lock.unlock();
    }

    #[test]
    fn with_releases_on_panic_no_poisoning() {
        let l = SpinLock::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            l.with(|| panic!("boom in critical section"))
        }));
        assert!(r.is_err());
        // No poisoning: the unwind released the lock and it stays usable.
        assert!(l.try_lock(), "lock stayed held across the panic");
        l.unlock();
        assert_eq!(l.with(|| 7), 7);
    }

    #[test]
    // SpinLock deliberately has no Drop impl (no poison state); these
    // explicit drops are the property under test, not dead code.
    #[allow(clippy::drop_non_drop)]
    fn drop_after_panic_is_clean() {
        // Dropping a lock that saw a panicking critical section (or is
        // even still held) must not itself panic — there is no poison
        // state to trip over.
        let l = SpinLock::new();
        let _ =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| l.with(|| panic!("boom"))));
        drop(l);
        let held = SpinLock::new();
        held.lock();
        drop(held);
    }
}
