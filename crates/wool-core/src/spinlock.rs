//! A minimal test-and-test-and-set spinlock.
//!
//! The lock-based strategy variants of Table II and Figure 4 need a
//! per-worker lock with predictable, small cost. We use our own TATAS
//! lock rather than an OS mutex so the measured overhead is the locking
//! protocol itself, as in the paper's run-time-system experiments.

use std::sync::atomic::{AtomicBool, Ordering};

/// A test-and-test-and-set spinlock.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (with escalating pauses) until free.
    #[inline]
    pub fn lock(&self) {
        let mut spins = 0u32;
        loop {
            if !self.locked.swap(true, Ordering::Acquire) {
                return;
            }
            // Test-and-test-and-set: spin on a plain load to avoid
            // hammering the cache line with RMWs.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    // Uniprocessor-friendly: let the holder run.
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Attempts to acquire the lock without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        !self.locked.load(Ordering::Relaxed) && !self.locked.swap(true, Ordering::Acquire)
    }

    /// Releases the lock.
    ///
    /// Calling this without holding the lock is a logic error (it will
    /// unlock someone else's critical section) but not UB; the scheduler
    /// code pairs every `unlock` with a `lock`/`try_lock` above it.
    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Runs `f` with the lock held.
    #[inline]
    pub fn with<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock();
        let r = f();
        self.unlock();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let l = SpinLock::new();
        l.lock();
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn with_runs_closure() {
        let l = SpinLock::new();
        assert_eq!(l.with(|| 42), 42);
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    #[allow(clippy::arc_with_non_send_sync)] // wrapped in a Send newtype below
    fn mutual_exclusion() {
        const THREADS: usize = 4;
        const PER: usize = 50_000;
        let lock = Arc::new(SpinLock::new());
        // Deliberately non-atomic counter protected by the lock.
        let counter = Arc::new(std::cell::UnsafeCell::new(0usize));
        struct Shared(Arc<std::cell::UnsafeCell<usize>>);
        // SAFETY: all accesses are under `lock`.
        unsafe impl Send for Shared {}

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let c = Shared(Arc::clone(&counter));
                std::thread::spawn(move || {
                    // Capture the whole wrapper (edition-2021 disjoint
                    // field capture would otherwise grab the raw Arc).
                    let c = c;
                    for _ in 0..PER {
                        lock.lock();
                        // SAFETY: protected by `lock`.
                        unsafe { *c.0.get() += 1 };
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all threads joined.
        assert_eq!(unsafe { *counter.get() }, THREADS * PER);
    }
}
