//! Executor-agnostic fork-join interface.
//!
//! The paper compares four systems (Wool, Cilk++, TBB, OpenMP) running
//! *the same* benchmark programs. To reproduce that, the workloads in
//! the `workloads` crate are written once, generically, against the
//! [`Fork`] trait; each scheduler (every Wool strategy, the baseline
//! pools in `ws-baseline`, and a serial executor) provides an
//! implementation. The [`Executor`]/[`Job`] pair launches a root task on
//! a scheduler without naming its concrete context type.

use crate::exec::WorkerHandle;
use crate::pool::Pool;
use crate::strategy::Strategy;

/// A fork-join execution context: the capability task code uses to
/// express parallelism.
pub trait Fork: Sized {
    /// Runs `a` and `b`, potentially in parallel (the paper's
    /// `SPAWN b; CALL a; JOIN b`).
    fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send;

    /// Spawns `body(i)` for each `i` in `0..n` as `n - 1` tasks plus one
    /// direct call, then joins them all — the paper's flat loop
    /// parallelization (one task per outer-loop iteration).
    fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync;

    /// Index of the executing worker (0 on serial executors).
    fn worker_index(&self) -> usize {
        0
    }

    /// Degree of parallelism of the executor (1 on serial executors).
    fn num_workers(&self) -> usize {
        1
    }

    /// The executor's configured minimum data-parallel leaf grain
    /// (`wool-par`'s splitting floor; see `PoolConfig::min_grain`).
    /// Executors without the knob report 1 (no floor).
    fn min_grain(&self) -> usize {
        1
    }

    /// Scheduler hint from a data-parallel splitter: a range of `len`
    /// items is about to be forked in half. Tracing executors record
    /// it; the default is a no-op.
    fn note_split(&mut self, len: usize) {
        let _ = len;
    }
}

impl<S: Strategy> Fork for WorkerHandle<S> {
    #[inline(always)]
    fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        WorkerHandle::fork(self, a, b)
    }

    #[inline(always)]
    fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync,
    {
        WorkerHandle::for_each_spawn(self, n, body)
    }

    fn worker_index(&self) -> usize {
        WorkerHandle::worker_index(self)
    }

    fn num_workers(&self) -> usize {
        WorkerHandle::num_workers(self)
    }

    fn min_grain(&self) -> usize {
        WorkerHandle::min_grain(self)
    }

    #[inline(always)]
    fn note_split(&mut self, len: usize) {
        WorkerHandle::note_split(self, len)
    }
}

/// A root task, written against any [`Fork`] context.
///
/// This indirection (instead of a closure) sidesteps higher-ranked
/// trait-bound inference: a job is a plain struct whose `call` is
/// generic over the context, so the same job value can be handed to any
/// executor.
pub trait Job<R>: Send {
    /// Runs the job.
    fn call<C: Fork>(self, ctx: &mut C) -> R;
}

/// Anything that can run a [`Job`] to completion.
pub trait Executor {
    /// Runs `job` as the root of a parallel region.
    fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R;

    /// Number of workers.
    fn workers(&self) -> usize;

    /// Display name (paper series label).
    fn name(&self) -> String;
}

impl<S: Strategy> Executor for Pool<S> {
    fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R {
        self.run(move |h| job.call(h))
    }

    fn workers(&self) -> usize {
        Pool::workers(self)
    }

    fn name(&self) -> String {
        format!("wool[{}]", S::NAME)
    }
}
