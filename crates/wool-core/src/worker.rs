//! Per-worker state: the direct task stack and its pointers.
//!
//! Each worker owns an array of [`TaskSlot`]s managed with strict stack
//! discipline (§III-A). Two indices delimit the live region:
//!
//! * `top` — the next slot the owner will spawn into. **Private to the
//!   owner** in the direct task stack (one of the paper's key points);
//!   only the Table II *base* strategy maintains the shared mirror
//!   `top_shared`.
//! * `bot` — the oldest unstolen task; thieves steal at `bot` and it is
//!   "implicitly owned by the worker that has stolen (or joined with)
//!   the task bot points to" (§III-A) — there is no lock on it in the
//!   direct task stack.
//!
//! The private-task machinery (§III-B) adds `n_public`: slots with index
//! `< n_public` are public (stealable, joined with an atomic swap);
//! slots `>= n_public` are private (joined with plain loads/stores).
//! We maintain the invariant `bot <= n_public <= top`, which under stack
//! discipline is equivalent to the paper's per-descriptor flag: the
//! public region is always a contiguous prefix of the live stack.

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
use std::cell::UnsafeCell;

use crate::pad::CachePadded;

use crate::slot::TaskSlot;
use crate::span::SpanState;
use crate::spinlock::SpinLock;
use crate::stats::Stats;
use crate::timebreak::{TimeBreak, TimeBreakdown};

/// State touched only by the worker's own thread.
#[derive(Debug)]
pub(crate) struct OwnerState {
    /// Next slot to spawn into (the paper's private `top`).
    pub top: usize,
    /// xorshift64 state for victim selection.
    pub rng: u64,
    /// Event counters.
    pub stats: Stats,
    /// Work/span instrumentation.
    pub span: SpanState,
    /// CPU-time breakdown instrumentation.
    pub tb: TimeBreak,
    /// Region epoch this worker has most recently initialized for.
    pub seen_epoch: u64,
    /// Event trace ring (owner-writes-only; see `wool-trace`). Sized by
    /// the pool at construction when tracing is configured.
    #[cfg(feature = "trace")]
    pub trace: wool_trace::TraceRing,
}

impl OwnerState {
    fn new(seed: u64) -> Self {
        OwnerState {
            top: 0,
            rng: seed | 1,
            stats: Stats::default(),
            span: SpanState::default(),
            tb: TimeBreak::default(),
            seen_epoch: 0,
            // Minimal placeholder; the pool installs a ring of the
            // configured capacity before any thread starts.
            #[cfg(feature = "trace")]
            trace: wool_trace::TraceRing::new(1),
        }
    }

    /// Next pseudo-random value (xorshift64*).
    #[inline]
    pub fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Results a worker publishes at the end of a region.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct WorkerReport {
    pub stats: Stats,
    pub work: u64,
    pub breakdown: TimeBreakdown,
}

/// One worker: shared coordination fields plus owner-only state.
pub(crate) struct Worker {
    /// Index of the oldest unstolen task; thieves steal here.
    pub bot: CachePadded<AtomicUsize>,
    /// Exclusive upper bound of the public (stealable) region.
    pub n_public: AtomicUsize,
    /// Set by thieves to ask the owner to publish more tasks (§III-B
    /// trip wire notification).
    pub publish_request: AtomicBool,
    /// Mirror of `top` maintained only by the Table II *base* strategy.
    pub top_shared: AtomicUsize,
    /// Per-worker lock used by the lock-based strategies.
    pub lock: SpinLock,
    /// The direct task stack itself.
    pub slots: Box<[TaskSlot]>,
    /// Owner-only state; see the `Sync` safety comment.
    pub own: UnsafeCell<OwnerState>,
    /// End-of-region report mailbox, published by the owner and read by
    /// the coordinating thread after `report_epoch` is advanced.
    pub report: UnsafeCell<WorkerReport>,
    /// Epoch whose report has been published (Release/Acquire pair with
    /// reads of `report`).
    pub report_epoch: AtomicU64,
}

// SAFETY: `own` and `report` are interior-mutable but accessed under a
// strict protocol: `own` only ever by the thread currently acting as
// this worker (there is exactly one — background workers are pinned, and
// worker 0 is driven by the single thread inside `Pool::run`, which
// holds `&mut Pool`); `report` is written by that thread and read by the
// coordinator only after it Acquire-reads a matching `report_epoch`
// value, which the owner Release-writes after the report. The one
// exception for `own` is the trace ring (feature `trace`): the
// coordinator reads `own.trace` of other workers, but only after the
// same `report_epoch` acquire — the owner disables the ring and stops
// writing it strictly before the Release publish, so those reads race
// with nothing. All other fields are atomics, the lock, or `TaskSlot`s
// with their own protocol.
unsafe impl Sync for Worker {}
unsafe impl Send for Worker {}

impl Worker {
    pub fn new(index: usize, capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| TaskSlot::default())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Worker {
            bot: CachePadded::new(AtomicUsize::new(0)),
            n_public: AtomicUsize::new(0),
            publish_request: AtomicBool::new(false),
            top_shared: AtomicUsize::new(0),
            lock: SpinLock::new(),
            slots,
            own: UnsafeCell::new(OwnerState::new(
                0x9E3779B97F4A7C15u64.wrapping_mul(index as u64 + 1),
            )),
            report: UnsafeCell::new(WorkerReport::default()),
            report_epoch: AtomicU64::new(0),
        }
    }

    /// The slot at stack index `i`.
    #[inline(always)]
    pub fn slot(&self, i: usize) -> &TaskSlot {
        &self.slots[i]
    }

    /// Task-pool capacity.
    #[inline(always)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::Ordering;

    #[test]
    fn new_worker_is_quiescent() {
        let w = Worker::new(0, 64);
        assert_eq!(w.bot.load(Ordering::Relaxed), 0);
        assert_eq!(w.n_public.load(Ordering::Relaxed), 0);
        assert!(!w.publish_request.load(Ordering::Relaxed));
        assert_eq!(w.capacity(), 64);
    }

    #[test]
    fn rng_streams_differ_between_workers() {
        let a = Worker::new(0, 16);
        let b = Worker::new(1, 16);
        // SAFETY: exclusive access in test.
        let (ra, rb) = unsafe { ((*a.own.get()).next_rand(), (*b.own.get()).next_rand()) };
        assert_ne!(ra, rb);
    }

    #[test]
    fn rng_is_not_constant() {
        let w = Worker::new(3, 16);
        // SAFETY: exclusive access in test.
        let own = unsafe { &mut *w.own.get() };
        let vals: Vec<u64> = (0..8).map(|_| own.next_rand()).collect();
        let first = vals[0];
        assert!(vals.iter().any(|&v| v != first));
    }
}
