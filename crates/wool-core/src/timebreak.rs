//! CPU-time breakdown instrumentation (Figure 6).
//!
//! The paper classifies every cycle of every worker into:
//!
//! * **TR** — startup and shutdown (time outside parallel regions),
//! * **NA** — "other application code" (normal useful work),
//! * **LA** — application code acquired through leap frogging,
//! * **ST** — stealing (searching for and acquiring work),
//! * **LF** — leap frogging overhead (waiting at a blocked join and
//!   searching the thief's pool).
//!
//! Each worker keeps a tiny state machine: a current category and the
//! cycle stamp of the last transition. Transitions happen only at
//! scheduler events (entering/leaving the steal loop, blocking at a
//! join, running a stolen task), so the instrumentation does not touch
//! the per-spawn fast path.

use crate::cycles;

/// The five CPU-time categories of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// Startup/shutdown: outside any parallel region.
    Tr = 0,
    /// Normal application code.
    Na = 1,
    /// Application code acquired through leap frogging.
    La = 2,
    /// Steal search and acquisition.
    St = 3,
    /// Leap-frog wait/search overhead.
    Lf = 4,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 5] = [
        Category::Tr,
        Category::Na,
        Category::La,
        Category::St,
        Category::Lf,
    ];

    /// The paper's two-letter label.
    pub fn label(self) -> &'static str {
        match self {
            Category::Tr => "TR",
            Category::Na => "NA",
            Category::La => "LA",
            Category::St => "ST",
            Category::Lf => "LF",
        }
    }
}

/// Accumulated cycles per category.
#[derive(Debug, Default, Clone, Copy)]
pub struct TimeBreakdown {
    acc: [u64; 5],
}

impl TimeBreakdown {
    /// Cycles accumulated in `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        self.acc[cat as usize]
    }

    /// Total cycles across categories.
    pub fn total(&self) -> u64 {
        self.acc.iter().sum()
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, o: &TimeBreakdown) {
        for i in 0..5 {
            self.acc[i] += o.acc[i];
        }
    }
}

/// Per-worker time-breakdown state machine.
#[derive(Debug)]
pub struct TimeBreak {
    /// Whether breakdown tracking is active for this run.
    pub enabled: bool,
    current: Category,
    since: u64,
    totals: TimeBreakdown,
    /// Depth of nested leap-frog joins; while positive, stolen work
    /// executed by this worker is classified LA rather than NA.
    pub leap_depth: u32,
}

impl Default for TimeBreak {
    fn default() -> Self {
        TimeBreak {
            enabled: false,
            current: Category::Tr,
            since: 0,
            totals: TimeBreakdown::default(),
            leap_depth: 0,
        }
    }
}

impl TimeBreak {
    /// Resets and (de)activates tracking; the worker starts in `cat`.
    pub fn reset(&mut self, enabled: bool, cat: Category) {
        self.enabled = enabled;
        self.current = cat;
        self.since = cycles::now();
        self.totals = TimeBreakdown::default();
        self.leap_depth = 0;
    }

    /// Switches to `cat`, attributing elapsed time to the previous one.
    /// Returns the previous category so callers can restore it.
    #[inline]
    pub fn switch(&mut self, cat: Category) -> Category {
        let prev = self.current;
        if self.enabled {
            let now = cycles::now();
            self.totals.acc[prev as usize] += now.wrapping_sub(self.since);
            self.since = now;
            self.current = cat;
        }
        prev
    }

    /// Closes the current interval and returns the totals.
    pub fn finish(&mut self) -> TimeBreakdown {
        if self.enabled {
            let now = cycles::now();
            self.totals.acc[self.current as usize] += now.wrapping_sub(self.since);
            self.since = now;
        }
        self.totals
    }

    /// The category stolen work should run under on this worker:
    /// LA while inside a leap-frog join, NA otherwise.
    #[inline]
    pub fn app_category(&self) -> Category {
        if self.leap_depth > 0 {
            Category::La
        } else {
            Category::Na
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy(n: u64) {
        let mut x = 0u64;
        for i in 0..n {
            x = x.wrapping_add(i).rotate_left(3);
        }
        std::hint::black_box(x);
    }

    #[test]
    fn disabled_costs_nothing_and_accumulates_nothing() {
        let mut tb = TimeBreak::default();
        tb.reset(false, Category::Na);
        busy(10_000);
        tb.switch(Category::St);
        busy(10_000);
        let t = tb.finish();
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn attributes_time_to_current_category() {
        let mut tb = TimeBreak::default();
        tb.reset(true, Category::Na);
        busy(200_000);
        tb.switch(Category::St);
        busy(200_000);
        let t = tb.finish();
        assert!(t.get(Category::Na) > 0);
        assert!(t.get(Category::St) > 0);
        assert_eq!(t.get(Category::Lf), 0);
        assert_eq!(t.total(), t.get(Category::Na) + t.get(Category::St));
    }

    #[test]
    fn leap_depth_selects_la() {
        let mut tb = TimeBreak::default();
        tb.reset(true, Category::Na);
        assert_eq!(tb.app_category(), Category::Na);
        tb.leap_depth += 1;
        assert_eq!(tb.app_category(), Category::La);
        tb.leap_depth -= 1;
        assert_eq!(tb.app_category(), Category::Na);
    }

    #[test]
    fn merge_sums() {
        let mut a = TimeBreakdown::default();
        a.acc[Category::Na as usize] = 10;
        let mut b = TimeBreakdown::default();
        b.acc[Category::Na as usize] = 5;
        b.acc[Category::St as usize] = 7;
        a.merge(&b);
        assert_eq!(a.get(Category::Na), 15);
        assert_eq!(a.get(Category::St), 7);
        assert_eq!(a.total(), 22);
    }

    /// Deterministic xorshift64*; same generator as the protocol tests.
    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn random_breakdown(seed: &mut u64) -> TimeBreakdown {
        let mut t = TimeBreakdown::default();
        for c in Category::ALL {
            t.acc[c as usize] = rng(seed) >> 32;
        }
        t
    }

    #[test]
    fn merge_is_commutative_and_lossless() {
        let mut seed = 0x0123_4567_89AB_CDEFu64;
        for _ in 0..100 {
            let (a, b) = (random_breakdown(&mut seed), random_breakdown(&mut seed));
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            for c in Category::ALL {
                // Commutative and lossless in every category: no cycle
                // is dropped or double-counted when worker breakdowns
                // are aggregated.
                assert_eq!(ab.get(c), ba.get(c));
                assert_eq!(ab.get(c), a.get(c) + b.get(c));
            }
            assert_eq!(ab.total(), a.total() + b.total());
        }
    }

    #[test]
    fn default_is_merge_identity() {
        let mut seed = 7u64;
        let a = random_breakdown(&mut seed);
        let mut x = a;
        x.merge(&TimeBreakdown::default());
        let mut y = TimeBreakdown::default();
        y.merge(&a);
        for c in Category::ALL {
            assert_eq!(x.get(c), a.get(c));
            assert_eq!(y.get(c), a.get(c));
        }
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<_> = Category::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["TR", "NA", "LA", "ST", "LF"]);
    }
}
