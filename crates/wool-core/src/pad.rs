//! Cache-line padding, replacing the `crossbeam_utils::CachePadded`
//! the workspace used before going dependency-free.
//!
//! 128-byte alignment covers both the common 64-byte line size and the
//! 128-byte prefetch granularity of recent x86 (adjacent-line prefetch)
//! and Apple/ARM big cores — the same choice crossbeam makes.

/// Pads and aligns a value to 128 bytes so that writes to it never
/// false-share a cache line with a neighbouring field.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    #[inline(always)]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    #[inline(always)]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_and_padded() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // Larger-than-line payloads round up to the alignment.
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 130]>>(), 256);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(7u32);
        *p += 1;
        assert_eq!(*p, 8);
        assert_eq!(p.into_inner(), 8);
    }
}
