//! Per-worker scheduler statistics.
//!
//! The paper's evaluation is driven by counters of exactly these events:
//! spawns (`N_T` for task granularity `G_T = T_S / N_T`), steals (`N_M`
//! for load-balancing granularity `G_L = T_S / N_M`), leap-frog steals,
//! and the thief back-offs §III-A promises stay below 1% of successful
//! steals. Counters live in owner-only state and are incremented with
//! plain adds, so the hot spawn/join paths pay one `add` instruction at
//! most.

use std::ops::AddAssign;

/// Event counters for one worker (or an aggregate over workers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Tasks spawned (the paper's `N_T`).
    pub spawns: u64,
    /// Joins that found the task private and used the plain-load path.
    pub inlined_private: u64,
    /// Joins that acquired the task with the atomic swap.
    pub inlined_public: u64,
    /// Joins that entered the slow path (`RTS_join`).
    pub rts_joins: u64,
    /// Joins that found their task stolen and had to wait.
    pub stolen_joins: u64,
    /// Successful steals (the paper's `N_M`).
    pub steals: u64,
    /// Successful steals performed while leap-frogging.
    pub leap_steals: u64,
    /// Steal attempts that found no stealable task.
    pub failed_steals: u64,
    /// Steal attempts that lost the CAS race to another thief or owner.
    pub lost_races: u64,
    /// Steals aborted by the `bot` re-check (§III-A back-off).
    pub backoffs: u64,
    /// Times the owner raised the public boundary (§III-B publications).
    pub publishes: u64,
    /// Steal attempts that found only private tasks and requested
    /// publication.
    pub publish_requests: u64,
    /// Spawns that overflowed the task pool and ran eagerly inline.
    pub overflow_inlines: u64,
}

impl Stats {
    /// Total successful steals including leap-frog steals.
    pub fn total_steals(&self) -> u64 {
        self.steals + self.leap_steals
    }

    /// Back-offs as a fraction of successful steals (the paper reports
    /// "always below 1%").
    pub fn backoff_ratio(&self) -> f64 {
        let s = self.total_steals();
        if s == 0 {
            0.0
        } else {
            self.backoffs as f64 / s as f64
        }
    }

    /// Joins resolved without any atomic instruction, as a fraction of
    /// all joins.
    pub fn private_join_ratio(&self) -> f64 {
        let total = self.inlined_private + self.inlined_public + self.rts_joins;
        if total == 0 {
            0.0
        } else {
            self.inlined_private as f64 / total as f64
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, o: Self) {
        self.spawns += o.spawns;
        self.inlined_private += o.inlined_private;
        self.inlined_public += o.inlined_public;
        self.rts_joins += o.rts_joins;
        self.stolen_joins += o.stolen_joins;
        self.steals += o.steals;
        self.leap_steals += o.leap_steals;
        self.failed_steals += o.failed_steals;
        self.lost_races += o.lost_races;
        self.backoffs += o.backoffs;
        self.publishes += o.publishes;
        self.publish_requests += o.publish_requests;
        self.overflow_inlines += o.overflow_inlines;
    }
}

impl std::iter::Sum for Stats {
    fn sum<I: Iterator<Item = Stats>>(iter: I) -> Stats {
        let mut acc = Stats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_aggregates_fields() {
        let a = Stats {
            spawns: 10,
            steals: 2,
            backoffs: 1,
            ..Default::default()
        };
        let b = Stats {
            spawns: 5,
            leap_steals: 3,
            ..Default::default()
        };
        let t: Stats = [a, b].into_iter().sum();
        assert_eq!(t.spawns, 15);
        assert_eq!(t.total_steals(), 5);
        assert_eq!(t.backoffs, 1);
    }

    /// Deterministic xorshift64*; same generator as the protocol tests.
    fn rng(seed: &mut u64) -> u64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        seed.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn random_stats(seed: &mut u64) -> Stats {
        Stats {
            spawns: rng(seed) >> 32,
            inlined_private: rng(seed) >> 32,
            inlined_public: rng(seed) >> 32,
            rts_joins: rng(seed) >> 32,
            stolen_joins: rng(seed) >> 32,
            steals: rng(seed) >> 32,
            leap_steals: rng(seed) >> 32,
            failed_steals: rng(seed) >> 32,
            lost_races: rng(seed) >> 32,
            backoffs: rng(seed) >> 32,
            publishes: rng(seed) >> 32,
            publish_requests: rng(seed) >> 32,
            overflow_inlines: rng(seed) >> 32,
        }
    }

    /// Fieldwise view of every counter, so merge tests cannot silently
    /// ignore a newly added field: this match is exhaustive.
    fn fields(s: &Stats) -> [u64; 13] {
        let Stats {
            spawns,
            inlined_private,
            inlined_public,
            rts_joins,
            stolen_joins,
            steals,
            leap_steals,
            failed_steals,
            lost_races,
            backoffs,
            publishes,
            publish_requests,
            overflow_inlines,
        } = *s;
        [
            spawns,
            inlined_private,
            inlined_public,
            rts_joins,
            stolen_joins,
            steals,
            leap_steals,
            failed_steals,
            lost_races,
            backoffs,
            publishes,
            publish_requests,
            overflow_inlines,
        ]
    }

    #[test]
    fn merge_is_commutative() {
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..100 {
            let (a, b) = (random_stats(&mut seed), random_stats(&mut seed));
            let mut ab = a;
            ab += b;
            let mut ba = b;
            ba += a;
            assert_eq!(ab, ba);
        }
    }

    #[test]
    fn merge_is_lossless_per_field() {
        // Merging must preserve every counter: the aggregate of N
        // worker reports equals the fieldwise sum, no field dropped or
        // double-counted.
        let mut seed = 0xDEAD_BEEF_CAFE_F00Du64;
        for _ in 0..20 {
            let parts: Vec<Stats> = (0..7).map(|_| random_stats(&mut seed)).collect();
            let merged: Stats = parts.iter().copied().sum();
            let mut expect = [0u64; 13];
            for p in &parts {
                for (e, f) in expect.iter_mut().zip(fields(p)) {
                    *e += f;
                }
            }
            assert_eq!(fields(&merged), expect);
        }
    }

    #[test]
    fn merge_is_associative() {
        let mut seed = 1u64;
        let (a, b, c) = (
            random_stats(&mut seed),
            random_stats(&mut seed),
            random_stats(&mut seed),
        );
        let mut left = a;
        left += b;
        left += c;
        let mut bc = b;
        bc += c;
        let mut right = a;
        right += bc;
        assert_eq!(left, right);
    }

    #[test]
    fn default_is_merge_identity() {
        let mut seed = 42u64;
        let a = random_stats(&mut seed);
        let mut x = a;
        x += Stats::default();
        assert_eq!(x, a);
        let mut y = Stats::default();
        y += a;
        assert_eq!(y, a);
    }

    #[test]
    fn ratios_handle_zero() {
        let s = Stats::default();
        assert_eq!(s.backoff_ratio(), 0.0);
        assert_eq!(s.private_join_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = Stats {
            steals: 8,
            leap_steals: 2,
            backoffs: 1,
            inlined_private: 6,
            inlined_public: 2,
            rts_joins: 2,
            ..Default::default()
        };
        assert!((s.backoff_ratio() - 0.1).abs() < 1e-12);
        assert!((s.private_join_ratio() - 0.6).abs() < 1e-12);
    }
}
