//! Per-worker scheduler statistics.
//!
//! The paper's evaluation is driven by counters of exactly these events:
//! spawns (`N_T` for task granularity `G_T = T_S / N_T`), steals (`N_M`
//! for load-balancing granularity `G_L = T_S / N_M`), leap-frog steals,
//! and the thief back-offs §III-A promises stay below 1% of successful
//! steals. Counters live in owner-only state and are incremented with
//! plain adds, so the hot spawn/join paths pay one `add` instruction at
//! most.

use std::ops::AddAssign;

/// Event counters for one worker (or an aggregate over workers).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Tasks spawned (the paper's `N_T`).
    pub spawns: u64,
    /// Joins that found the task private and used the plain-load path.
    pub inlined_private: u64,
    /// Joins that acquired the task with the atomic swap.
    pub inlined_public: u64,
    /// Joins that entered the slow path (`RTS_join`).
    pub rts_joins: u64,
    /// Joins that found their task stolen and had to wait.
    pub stolen_joins: u64,
    /// Successful steals (the paper's `N_M`).
    pub steals: u64,
    /// Successful steals performed while leap-frogging.
    pub leap_steals: u64,
    /// Steal attempts that found no stealable task.
    pub failed_steals: u64,
    /// Steal attempts that lost the CAS race to another thief or owner.
    pub lost_races: u64,
    /// Steals aborted by the `bot` re-check (§III-A back-off).
    pub backoffs: u64,
    /// Times the owner raised the public boundary (§III-B publications).
    pub publishes: u64,
    /// Steal attempts that found only private tasks and requested
    /// publication.
    pub publish_requests: u64,
    /// Spawns that overflowed the task pool and ran eagerly inline.
    pub overflow_inlines: u64,
}

impl Stats {
    /// Total successful steals including leap-frog steals.
    pub fn total_steals(&self) -> u64 {
        self.steals + self.leap_steals
    }

    /// Back-offs as a fraction of successful steals (the paper reports
    /// "always below 1%").
    pub fn backoff_ratio(&self) -> f64 {
        let s = self.total_steals();
        if s == 0 {
            0.0
        } else {
            self.backoffs as f64 / s as f64
        }
    }

    /// Joins resolved without any atomic instruction, as a fraction of
    /// all joins.
    pub fn private_join_ratio(&self) -> f64 {
        let total = self.inlined_private + self.inlined_public + self.rts_joins;
        if total == 0 {
            0.0
        } else {
            self.inlined_private as f64 / total as f64
        }
    }
}

impl AddAssign for Stats {
    fn add_assign(&mut self, o: Self) {
        self.spawns += o.spawns;
        self.inlined_private += o.inlined_private;
        self.inlined_public += o.inlined_public;
        self.rts_joins += o.rts_joins;
        self.stolen_joins += o.stolen_joins;
        self.steals += o.steals;
        self.leap_steals += o.leap_steals;
        self.failed_steals += o.failed_steals;
        self.lost_races += o.lost_races;
        self.backoffs += o.backoffs;
        self.publishes += o.publishes;
        self.publish_requests += o.publish_requests;
        self.overflow_inlines += o.overflow_inlines;
    }
}

impl std::iter::Sum for Stats {
    fn sum<I: Iterator<Item = Stats>>(iter: I) -> Stats {
        let mut acc = Stats::default();
        for s in iter {
            acc += s;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_aggregates_fields() {
        let a = Stats {
            spawns: 10,
            steals: 2,
            backoffs: 1,
            ..Default::default()
        };
        let b = Stats {
            spawns: 5,
            leap_steals: 3,
            ..Default::default()
        };
        let t: Stats = [a, b].into_iter().sum();
        assert_eq!(t.spawns, 15);
        assert_eq!(t.total_steals(), 5);
        assert_eq!(t.backoffs, 1);
    }

    #[test]
    fn ratios_handle_zero() {
        let s = Stats::default();
        assert_eq!(s.backoff_ratio(), 0.0);
        assert_eq!(s.private_join_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = Stats {
            steals: 8,
            leap_steals: 2,
            backoffs: 1,
            inlined_private: 6,
            inlined_public: 2,
            rts_joins: 2,
            ..Default::default()
        };
        assert!((s.backoff_ratio() - 0.1).abs() < 1e-12);
        assert!((s.private_join_ratio() - 0.6).abs() < 1e-12);
    }
}
