//! Pool configuration.

use crate::span::DEFAULT_OVERHEAD_CYCLES;

/// Configuration for a [`crate::Pool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Total number of workers, including the thread that calls
    /// [`crate::Pool::run`]. Must be at least 1.
    pub workers: usize,
    /// Task-pool capacity per worker, in task descriptors. A spawn that
    /// would overflow the pool executes its task eagerly instead
    /// (counted in [`crate::Stats::overflow_inlines`]).
    pub stack_capacity: usize,
    /// §III-B trip wire: when a steal lands within this many descriptors
    /// of the public boundary, the thief requests publication.
    pub trip_distance: usize,
    /// How many additional descriptors the owner publishes per request.
    pub publish_batch: usize,
    /// Force every spawned task public immediately (Table II row
    /// "Private tasks (no private)": the machinery is present but never
    /// leaves a task private).
    pub force_publish_all: bool,
    /// Enable work/span instrumentation for the next runs.
    pub instrument_span: bool,
    /// Enable Figure 6 CPU-time breakdown for the next runs.
    pub instrument_time: bool,
    /// The `C` of the realistic span model, in cycles.
    pub span_overhead: u64,
    /// Enable per-worker event tracing for the next runs. Only takes
    /// effect when the crate is built with the `trace` cargo feature;
    /// without it the field is accepted and ignored (the recording
    /// macro compiles to nothing).
    pub instrument_trace: bool,
    /// Per-worker trace ring capacity, in events. When a run records
    /// more, the oldest events are overwritten (and counted as dropped
    /// in the collected trace).
    pub trace_capacity: usize,
    /// Idle-loop escalation, stage 1: how many consecutive empty-handed
    /// steal rounds a worker spins (`spin_loop` hint) before it starts
    /// yielding the CPU. Applies inside parallel regions and to
    /// serve-mode workers.
    pub steal_spin: u32,
    /// Idle-loop escalation for workers *between* parallel regions:
    /// rounds spent spinning before the first `yield_now`.
    pub idle_spin: u32,
    /// Idle-loop escalation, stage 2: total idle rounds after which a
    /// between-regions (or serve-mode) worker escalates from yielding
    /// to parking.
    pub idle_yield: u32,
    /// How long a parked worker sleeps before re-checking for work, in
    /// microseconds. Serve-mode pools additionally wake parked workers
    /// eagerly on every job submission, so this is only the fallback
    /// poll interval there.
    pub park_timeout_us: u64,
    /// Capacity of the global injector queue of a serve-mode pool
    /// (`wool-serve`), in jobs; rounded up to a power of two. Batch
    /// pools never allocate or touch the injector.
    pub injector_capacity: usize,
    /// Minimum leaf size for data-parallel splitting (`wool-par`), in
    /// items: the adaptive splitter never produces a sequential leaf
    /// smaller than this. This is the pool-wide floor of the paper's
    /// task granularity `G_T = T_S / N_T` — raising it trades potential
    /// parallelism for lower per-task overhead. Must be at least 1
    /// (1 = no floor; the splitter's own worker-count heuristic
    /// dominates).
    pub min_grain: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: default_workers(),
            stack_capacity: 8192,
            trip_distance: 2,
            publish_batch: 4,
            force_publish_all: false,
            instrument_span: false,
            instrument_time: false,
            span_overhead: DEFAULT_OVERHEAD_CYCLES,
            instrument_trace: false,
            trace_capacity: 1 << 20,
            steal_spin: 32,
            idle_spin: 16,
            idle_yield: 64,
            park_timeout_us: 200,
            injector_capacity: 1024,
            min_grain: 1,
        }
    }
}

impl PoolConfig {
    /// A configuration with `workers` workers and defaults otherwise.
    pub fn with_workers(workers: usize) -> Self {
        PoolConfig {
            workers,
            ..Default::default()
        }
    }

    /// Builder-style: sets the task-pool capacity.
    pub fn stack_capacity(mut self, cap: usize) -> Self {
        self.stack_capacity = cap;
        self
    }

    /// Builder-style: enables span instrumentation.
    pub fn instrument_span(mut self, on: bool) -> Self {
        self.instrument_span = on;
        self
    }

    /// Builder-style: enables time-breakdown instrumentation.
    pub fn instrument_time(mut self, on: bool) -> Self {
        self.instrument_time = on;
        self
    }

    /// Builder-style: forces all tasks public.
    pub fn force_publish_all(mut self, on: bool) -> Self {
        self.force_publish_all = on;
        self
    }

    /// Builder-style: enables event tracing (needs the `trace` cargo
    /// feature to record anything).
    pub fn instrument_trace(mut self, on: bool) -> Self {
        self.instrument_trace = on;
        self
    }

    /// Builder-style: sets the per-worker trace ring capacity.
    pub fn trace_capacity(mut self, events: usize) -> Self {
        self.trace_capacity = events;
        self
    }

    /// Builder-style: sets the spin threshold of the steal loop.
    pub fn steal_spin(mut self, rounds: u32) -> Self {
        self.steal_spin = rounds;
        self
    }

    /// Builder-style: sets the between-regions spin threshold.
    pub fn idle_spin(mut self, rounds: u32) -> Self {
        self.idle_spin = rounds;
        self
    }

    /// Builder-style: sets the idle rounds after which a worker parks.
    pub fn idle_yield(mut self, rounds: u32) -> Self {
        self.idle_yield = rounds;
        self
    }

    /// Builder-style: sets the parked-worker poll interval, in µs.
    pub fn park_timeout_us(mut self, us: u64) -> Self {
        self.park_timeout_us = us;
        self
    }

    /// Builder-style: sets the serve-mode injector queue capacity.
    pub fn injector_capacity(mut self, jobs: usize) -> Self {
        self.injector_capacity = jobs;
        self
    }

    /// Builder-style: sets the minimum data-parallel leaf grain.
    pub fn min_grain(mut self, items: usize) -> Self {
        self.min_grain = items;
        self
    }

    /// Validates the configuration, normalizing degenerate values.
    ///
    /// # Panics
    /// Panics when `workers == 0`: a pool needs at least one worker —
    /// there is no thread that could ever run a task. (Both
    /// `Pool::with_config` and `wool-serve`'s `ServePool::start` funnel
    /// through here, so the rejection is uniform.) Likewise panics when
    /// `min_grain == 0`: a zero-item leaf could never terminate the
    /// splitter's recursion.
    pub fn validated(mut self) -> Self {
        assert!(
            self.workers >= 1,
            "invalid PoolConfig: workers == 0, but a pool needs at least one worker \
             (use PoolConfig::with_workers(n) with n >= 1, or default_workers())"
        );
        assert!(
            self.min_grain >= 1,
            "invalid PoolConfig: min_grain == 0, but a data-parallel leaf must hold \
             at least one item (use min_grain(1) for no floor)"
        );
        assert!(
            self.workers <= crate::slot::STOLEN_BASE.max(1 << 16),
            "worker count does not fit the state encoding"
        );
        self.stack_capacity = self.stack_capacity.max(16);
        self.publish_batch = self.publish_batch.max(1);
        self.trip_distance = self.trip_distance.max(1);
        self.trace_capacity = self.trace_capacity.max(1);
        self.injector_capacity = self.injector_capacity.max(2);
        self
    }
}

/// Default worker count: available parallelism, capped for sanity.
pub fn default_workers() -> usize {
    crate::sync::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = PoolConfig::default().validated();
        assert!(c.workers >= 1);
        assert!(c.stack_capacity >= 16);
        assert!(c.publish_batch >= 1);
        assert!(c.trip_distance >= 1);
    }

    #[test]
    fn builder_chains() {
        let c = PoolConfig::with_workers(3)
            .stack_capacity(64)
            .instrument_span(true)
            .instrument_time(true)
            .force_publish_all(true)
            .validated();
        assert_eq!(c.workers, 3);
        assert_eq!(c.stack_capacity, 64);
        assert!(c.instrument_span && c.instrument_time && c.force_publish_all);
    }

    #[test]
    fn trace_builders() {
        let c = PoolConfig::with_workers(1)
            .instrument_trace(true)
            .trace_capacity(0)
            .validated();
        assert!(c.instrument_trace);
        assert_eq!(c.trace_capacity, 1, "degenerate capacity normalized");
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = PoolConfig::with_workers(0).validated();
    }

    #[test]
    fn idle_loop_knobs_default_to_historic_values() {
        let c = PoolConfig::default().validated();
        assert_eq!(c.steal_spin, 32);
        assert_eq!(c.idle_spin, 16);
        assert_eq!(c.idle_yield, 64);
        assert_eq!(c.park_timeout_us, 200);
    }

    #[test]
    fn idle_loop_builders() {
        let c = PoolConfig::with_workers(2)
            .steal_spin(8)
            .idle_spin(4)
            .idle_yield(128)
            .park_timeout_us(1000)
            .injector_capacity(3)
            .validated();
        assert_eq!(c.steal_spin, 8);
        assert_eq!(c.idle_spin, 4);
        assert_eq!(c.idle_yield, 128);
        assert_eq!(c.park_timeout_us, 1000);
        assert_eq!(c.injector_capacity, 3, "rounded later, by the queue");
    }

    #[test]
    fn min_grain_defaults_and_builds() {
        let c = PoolConfig::default().validated();
        assert_eq!(c.min_grain, 1);
        let c = PoolConfig::with_workers(2).min_grain(128).validated();
        assert_eq!(c.min_grain, 128);
    }

    #[test]
    #[should_panic(expected = "min_grain == 0")]
    fn zero_min_grain_rejected() {
        let _ = PoolConfig::with_workers(1).min_grain(0).validated();
    }

    #[test]
    fn degenerate_capacity_normalized() {
        let c = PoolConfig::with_workers(1).stack_capacity(0).validated();
        assert!(c.stack_capacity >= 16);
    }
}
