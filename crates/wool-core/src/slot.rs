//! Task descriptors and the state word of the direct task stack.
//!
//! The task pool of each worker is an array of fixed-size [`TaskSlot`]s
//! (§III-A: "the task pool is made up of fixed size task descriptors
//! (rather than pointers to task descriptors) and memory management is
//! simplified by adhering to a strict stack discipline").
//!
//! Each slot carries:
//!
//! * `state` — the synchronization word thief and victim coordinate on:
//!   `EMPTY`, `TASK`, `STOLEN(i)`, `DONE` (§III-A). The paper packs the
//!   wrapper function pointer into the `TASK` value; Rust does not
//!   guarantee function pointer alignment, so we keep the wrapper in a
//!   dedicated word of the same cache line, which preserves the property
//!   that matters: a single cache-block transfer moves both the signal
//!   and the data needed to run the stolen task.
//! * `wrapper` — the task-specific wrapper function (the paper's
//!   `wrap_f`), used by thieves and by the non-task-specific join.
//! * `data` — 64 bytes of inline storage holding the closure before
//!   execution and the result (or panic payload) after. Tasks whose
//!   closure or result does not fit are transparently boxed; the slot
//!   then holds the box pointer, which mirrors the pointer-queue designs
//!   the paper compares against, but only as a rare fallback.
//! * `span` — the work/span measured for a stolen task by its thief, so
//!   the joining owner can fold it into the critical-path computation
//!   (the paper's span measurement facility behind Table I).

use crate::sync::atomic::{AtomicUsize, Ordering};
use std::cell::UnsafeCell;
use std::mem::{align_of, size_of, ManuallyDrop, MaybeUninit};
use std::panic::AssertUnwindSafe;

/// Inline storage per task descriptor, in 8-byte words.
pub const DATA_WORDS: usize = 8;

/// State word: no task stored (or transiently held by a thief mid-CAS).
pub const EMPTY: usize = 0;
/// State word: a stealable/joinable task is stored.
pub const TASK: usize = 1;
/// State word: a stolen task completed successfully.
pub const DONE: usize = 2;
/// State word: a stolen task panicked (payload stored in the slot).
pub const DONE_PANIC: usize = 3;
/// State word base for `STOLEN(i)`, encoded as `STOLEN_BASE + i`.
pub const STOLEN_BASE: usize = 4;

/// Returns the `STOLEN(i)` encoding for thief index `i`.
#[inline(always)]
pub fn stolen(thief: usize) -> usize {
    STOLEN_BASE + thief
}

/// Decodes a `STOLEN(i)` state word back to the thief index.
#[inline(always)]
pub fn thief_of(state: usize) -> usize {
    debug_assert!(is_stolen(state));
    state - STOLEN_BASE
}

/// True if the state word denotes a stolen, not-yet-completed task.
#[inline(always)]
pub fn is_stolen(state: usize) -> bool {
    state >= STOLEN_BASE
}

/// True if the state word denotes a completed stolen task.
#[inline(always)]
pub fn is_done(state: usize) -> bool {
    state == DONE || state == DONE_PANIC
}

/// The wrapper function stored in a slot: executes the task in place,
/// writing the result (or panic payload) back into the slot. Returns
/// `true` on success, `false` if the task panicked (the caller then
/// publishes `DONE` or `DONE_PANIC` accordingly — the wrapper itself
/// never touches `state`, so the caller can order its own slot writes
/// before the completion signal).
///
/// The second argument is a type-erased pointer to the executing
/// worker's [`crate::WorkerHandle`]; the wrapper knows the
/// concrete strategy type and casts it back.
pub type RawWrapper = unsafe fn(*const TaskSlot, *mut ()) -> bool;

/// One fixed-size task descriptor.
///
/// `#[repr(align(128))]` keeps each descriptor on its own pair of cache
/// lines so thieves polling one worker's `bot` slot do not false-share
/// with the owner pushing at `top`.
#[repr(align(128))]
pub struct TaskSlot {
    /// The synchronization word (see module docs).
    pub state: AtomicUsize,
    /// The task-specific wrapper; written by the owner before the slot
    /// is published, read by whoever acquires the task.
    wrapper: UnsafeCell<MaybeUninit<RawWrapper>>,
    /// Span at the two overhead levels, `(span0, span_c)`, measured by
    /// a thief for a stolen task (work accumulates in the thief's own
    /// counter and needs no hand-off).
    span: UnsafeCell<(u64, u64)>,
    /// Inline closure/result storage.
    data: UnsafeCell<MaybeUninit<[u64; DATA_WORDS]>>,
}

// SAFETY: cross-thread access to `wrapper`, `span` and `data` is
// governed by the `state` word protocol: a thread may touch them only
// while it owns the slot (after winning the CAS/swap that acquires the
// task, or — for the owner — while the slot is above `bot` and private,
// or before publication). All ownership transfers happen through
// Release stores / Acquire loads (or RMWs) on `state`, or through the
// `n_public` publication fence, establishing happens-before for the
// plain accesses.
unsafe impl Sync for TaskSlot {}
unsafe impl Send for TaskSlot {}

impl Default for TaskSlot {
    fn default() -> Self {
        TaskSlot {
            state: AtomicUsize::new(EMPTY),
            wrapper: UnsafeCell::new(MaybeUninit::uninit()),
            span: UnsafeCell::new((0, 0)),
            data: UnsafeCell::new(MaybeUninit::uninit()),
        }
    }
}

impl TaskSlot {
    /// Reads the wrapper function.
    ///
    /// # Safety
    /// Caller must own the slot and the wrapper must have been written.
    #[inline(always)]
    pub unsafe fn wrapper(&self) -> RawWrapper {
        (*self.wrapper.get()).assume_init()
    }

    /// Records the measured `(span0, span_c)` of a stolen task.
    ///
    /// # Safety
    /// Caller must own the slot (be its executing thief).
    #[inline(always)]
    pub unsafe fn set_span(&self, span0: u64, span_c: u64) {
        *self.span.get() = (span0, span_c);
    }

    /// Reads the `(span0, span_c)` recorded by [`set_span`].
    ///
    /// # Safety
    /// Caller must have observed `DONE`/`DONE_PANIC` with Acquire.
    ///
    /// [`set_span`]: TaskSlot::set_span
    #[inline(always)]
    pub unsafe fn span(&self) -> (u64, u64) {
        *self.span.get()
    }

    /// Raw pointer to the data area.
    #[inline(always)]
    fn data_ptr(&self) -> *mut u8 {
        self.data.get() as *mut u8
    }
}

/// Whether a value of type `T` fits the inline data area.
const fn fits_inline<T>() -> bool {
    size_of::<T>() <= DATA_WORDS * 8 && align_of::<T>() <= 8
}

/// Heap representation for oversized tasks: the closure and result share
/// an allocation, freed by whoever consumes the result.
struct BoxedTask<F, R> {
    f: ManuallyDrop<F>,
    r: MaybeUninit<R>,
}

/// Typed access to a slot's storage for a task `F: FnOnce(ctx) -> R`.
///
/// All functions are associated functions of this marker type so that
/// the inline-vs-boxed decision is made once, at compile time, per
/// `(F, R)` pair.
pub struct TaskRepr<F, R>(std::marker::PhantomData<(F, R)>);

impl<F, R> TaskRepr<F, R> {
    /// True if both the closure and the result are stored inline.
    pub const INLINE: bool = fits_inline::<F>() && fits_inline::<R>();

    /// Stores the closure (and `wrapper`) into the slot.
    ///
    /// Does **not** touch `state`; the caller publishes afterwards.
    ///
    /// # Safety
    /// Caller must own the slot (owner thread, slot above `top`).
    #[inline(always)]
    pub unsafe fn store(slot: &TaskSlot, f: F, wrapper: RawWrapper) {
        (*slot.wrapper.get()).write(wrapper);
        if Self::INLINE {
            (slot.data_ptr() as *mut F).write(f);
        } else {
            let boxed = Box::new(BoxedTask::<F, R> {
                f: ManuallyDrop::new(f),
                r: MaybeUninit::uninit(),
            });
            (slot.data_ptr() as *mut *mut BoxedTask<F, R>).write(Box::into_raw(boxed));
        }
    }

    /// Takes the closure back out for direct (task-specific, inlined)
    /// execution. Frees the box in the boxed case.
    ///
    /// # Safety
    /// Caller must have acquired the slot while it held this task.
    #[inline(always)]
    pub unsafe fn take_closure(slot: &TaskSlot) -> F {
        if Self::INLINE {
            (slot.data_ptr() as *const F).read()
        } else {
            let raw = (slot.data_ptr() as *const *mut BoxedTask<F, R>).read();
            let boxed = Box::from_raw(raw);
            ManuallyDrop::into_inner(boxed.f)
        }
    }

    /// Executes the task in place: consumes the closure, runs it with
    /// `ctx`, stores the result (or the panic payload) into the slot.
    ///
    /// Returns `true` on success, `false` if the task panicked (the
    /// payload is then stored and the acquirer must set `DONE_PANIC`).
    ///
    /// # Safety
    /// Caller must own the slot; `run` is responsible for supplying the
    /// execution context the closure needs (it typically captures the
    /// executing worker's handle).
    #[inline]
    pub unsafe fn exec_in_place(slot: &TaskSlot, run: impl FnOnce(F) -> R) -> bool {
        if Self::INLINE {
            let f = (slot.data_ptr() as *const F).read();
            match std::panic::catch_unwind(AssertUnwindSafe(|| run(f))) {
                Ok(r) => {
                    (slot.data_ptr() as *mut R).write(r);
                    true
                }
                Err(payload) => {
                    Self::store_panic(slot, payload);
                    false
                }
            }
        } else {
            let raw = (slot.data_ptr() as *const *mut BoxedTask<F, R>).read();
            let f = ManuallyDrop::take(&mut (*raw).f);
            match std::panic::catch_unwind(AssertUnwindSafe(|| run(f))) {
                Ok(r) => {
                    (*raw).r.write(r);
                    // Re-store the box pointer: when the task runs *in
                    // place* on its owner (non-task-specific join), its
                    // nested spawns reuse this very descriptor and
                    // clobber the data area; `take_result` re-reads the
                    // pointer from the slot afterwards.
                    (slot.data_ptr() as *mut *mut BoxedTask<F, R>).write(raw);
                    true
                }
                Err(payload) => {
                    drop(Box::from_raw(raw));
                    Self::store_panic(slot, payload);
                    false
                }
            }
        }
    }

    /// Reads the result stored by [`exec_in_place`], freeing the box in
    /// the boxed case.
    ///
    /// # Safety
    /// Caller must have observed `DONE` with Acquire ordering (or have
    /// run `exec_in_place` itself).
    ///
    /// [`exec_in_place`]: TaskRepr::exec_in_place
    #[inline(always)]
    pub unsafe fn take_result(slot: &TaskSlot) -> R {
        if Self::INLINE {
            (slot.data_ptr() as *const R).read()
        } else {
            let raw = (slot.data_ptr() as *const *mut BoxedTask<F, R>).read();
            let boxed = Box::from_raw(raw);
            boxed.r.assume_init_read()
        }
    }

    /// Stores a panic payload into the slot's inline area.
    ///
    /// # Safety
    /// Caller must own the slot; any closure/result must be consumed.
    unsafe fn store_panic(slot: &TaskSlot, payload: Box<dyn std::any::Any + Send>) {
        // A boxed `dyn Any` fat pointer is two words; it always fits.
        (slot.data_ptr() as *mut Box<dyn std::any::Any + Send>).write(payload);
    }

    /// Reads a panic payload stored by a panicking execution.
    ///
    /// # Safety
    /// Caller must have observed `DONE_PANIC` with Acquire ordering.
    pub unsafe fn take_panic(slot: &TaskSlot) -> Box<dyn std::any::Any + Send> {
        (slot.data_ptr() as *const Box<dyn std::any::Any + Send>).read()
    }
}

/// Debug/loom-only protocol guard: asserts the state word currently
/// holds a value `legal` accepts, immediately before a transition
/// overwrites it.
///
/// Active under `debug_assertions` **and** under `cfg(loom)` — the
/// model-checking suite (`wool-verify`) runs in release mode, where
/// `debug_assertions` is off, yet these invariants are exactly what the
/// models exist to check. Compiled to nothing in plain release builds.
///
/// The guard load is `Relaxed` deliberately: it checks a *value*, not an
/// ordering, and every call site owns enough of the slot that the set of
/// values any other thread could concurrently write is itself legal
/// (see the site-by-site notes at the call sites in `exec.rs`). A
/// stronger ordering here would mask exactly the fences the models are
/// supposed to validate.
#[inline(always)]
pub fn check_transition(slot: &TaskSlot, legal: impl Fn(usize) -> bool, about: &str) {
    #[cfg(any(debug_assertions, loom))]
    {
        // relaxed-ok: value check only; legality of every concurrently
        // writable value is argued per call site, no ordering is needed.
        let s = slot.state.load(Ordering::Relaxed);
        assert!(
            legal(s),
            "slot protocol violation before {about}: observed state {s}"
        );
    }
    #[cfg(not(any(debug_assertions, loom)))]
    {
        let _ = (slot, legal, about);
    }
}

/// Spin-waits until the slot's state is no longer the transient `EMPTY`
/// left behind by an in-flight steal, returning the next stable value.
///
/// Used by `RTS_join`: the paper's
/// `while (s == EMPTY) s = t->state;` loop.
#[inline]
pub fn spin_while_empty(slot: &TaskSlot) -> usize {
    let mut spins = 0u32;
    loop {
        // Acquire pairs with the thief's Release stores of `TASK` (steal
        // back-off restore) and `DONE`/`DONE_PANIC` (completion): once we
        // see the stable value, the thief's writes to `span`/`data`
        // happen-before our reads of them.
        let s = slot.state.load(Ordering::Acquire);
        if s != EMPTY {
            return s;
        }
        spins += 1;
        if spins < 128 {
            crate::sync::hint::spin_loop();
        } else {
            // The thief mid-steal may be descheduled (uniprocessor or
            // oversubscribed hosts); yield so it can finish.
            crate::sync::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_encoding_roundtrip() {
        for i in [0usize, 1, 7, 63, 1024] {
            let s = stolen(i);
            assert!(is_stolen(s));
            assert_eq!(thief_of(s), i);
            assert!(!is_done(s));
        }
        assert!(!is_stolen(EMPTY));
        assert!(!is_stolen(TASK));
        assert!(!is_stolen(DONE));
        assert!(is_done(DONE));
        assert!(is_done(DONE_PANIC));
        assert!(!is_done(TASK));
    }

    #[test]
    fn slot_is_two_cache_lines() {
        assert_eq!(std::mem::align_of::<TaskSlot>(), 128);
        assert_eq!(std::mem::size_of::<TaskSlot>(), 128);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // the constants ARE the subject
    fn inline_decision() {
        assert!(TaskRepr::<fn() -> u64, u64>::INLINE);
        assert!(TaskRepr::<[u64; 8], u64>::INLINE);
        assert!(!TaskRepr::<[u64; 9], u64>::INLINE);
        assert!(!TaskRepr::<u64, [u64; 9]>::INLINE);
        // Over-aligned types are boxed.
        #[repr(align(64))]
        struct Aligned(#[allow(dead_code)] u8);
        assert!(!TaskRepr::<Aligned, u64>::INLINE);
    }

    fn roundtrip<F, R>(f: F) -> R
    where
        F: FnOnce() -> R,
    {
        unsafe fn wrapper(_: *const TaskSlot, _: *mut ()) -> bool {
            true
        }
        let slot = TaskSlot::default();
        // SAFETY: single-threaded test; we own the slot throughout.
        unsafe {
            TaskRepr::<F, R>::store(&slot, f, wrapper);
            let ok = TaskRepr::<F, R>::exec_in_place(&slot, |f| f());
            assert!(ok);
            TaskRepr::<F, R>::take_result(&slot)
        }
    }

    #[test]
    fn inline_store_exec_take() {
        let x = 5u64;
        let r = roundtrip(move || x * 2);
        assert_eq!(r, 10);
    }

    #[test]
    fn boxed_store_exec_take() {
        let big = [7u64; 32]; // closure too large for inline storage
        let r = roundtrip(move || big.iter().sum::<u64>());
        assert_eq!(r, 7 * 32);
    }

    /// Helper that pins the closure type across store/take.
    unsafe fn store_then_take<F, R>(slot: &TaskSlot, f: F) -> F
    where
        F: FnOnce() -> R,
    {
        unsafe fn wrapper(_: *const TaskSlot, _: *mut ()) -> bool {
            true
        }
        TaskRepr::<F, R>::store(slot, f, wrapper);
        TaskRepr::<F, R>::take_closure(slot)
    }

    #[test]
    fn take_closure_direct_call() {
        let slot = TaskSlot::default();
        let s = String::from("hello");
        // SAFETY: single-threaded test.
        unsafe {
            let g = store_then_take(&slot, move || s.len());
            assert_eq!(g(), 5);
        }
    }

    #[test]
    fn panic_payload_roundtrip() {
        let slot = TaskSlot::default();
        unsafe fn wrapper(_: *const TaskSlot, _: *mut ()) -> bool {
            true
        }
        fn boom() -> u64 {
            panic!("boom-42")
        }
        let f: fn() -> u64 = boom;
        // SAFETY: single-threaded test.
        unsafe {
            TaskRepr::<fn() -> u64, u64>::store(&slot, f, wrapper);
            let ok = TaskRepr::<fn() -> u64, u64>::exec_in_place(&slot, |f| f());
            assert!(!ok);
            let payload = TaskRepr::<fn() -> u64, u64>::take_panic(&slot);
            let msg = payload.downcast_ref::<&str>().unwrap();
            assert_eq!(*msg, "boom-42");
        }
    }

    #[test]
    fn spin_while_empty_returns_stable_state() {
        let slot = TaskSlot::default();
        slot.state.store(TASK, Ordering::Release);
        assert_eq!(spin_while_empty(&slot), TASK);
        slot.state.store(stolen(3), Ordering::Release);
        assert_eq!(spin_while_empty(&slot), stolen(3));
    }

    #[test]
    fn drop_of_unexecuted_boxed_closure_not_leaked_by_take() {
        // take_closure must free the box without running the closure.
        use crate::sync::atomic::AtomicUsize;
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct Tracker([u64; 16]);
        impl Drop for Tracker {
            fn drop(&mut self) {
                // relaxed-ok: single-threaded test counter.
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        let slot = TaskSlot::default();
        let t = Tracker([1; 16]);
        // SAFETY: single-threaded test. (`let t = t;` forces the whole
        // Tracker into the closure; capturing `t.0` alone would copy the
        // Copy array and leave the tracker outside.)
        unsafe {
            let g = store_then_take(&slot, move || {
                let t = t;
                t.0[0]
            });
            drop(g);
        }
        // relaxed-ok: single-threaded test counter.
        assert_eq!(DROPS.load(Ordering::Relaxed), 1);
    }
}
