//! Online work/span (critical path) instrumentation.
//!
//! Reproduces the paper's "span (critical path length) measurement
//! facility in the Wool run time system" that produces the two
//! *Parallelism* columns of Table I:
//!
//! * column "0": parallelism `T_1 / T_inf` in the abstract model where
//!   load balancing costs nothing;
//! * column "2000": a realistic model where "potentially parallel
//!   computations are assumed to be executed sequentially if the savings
//!   from parallel execution are less than 2000 cycles. Otherwise, they
//!   are assumed to be executed in parallel with an extra cost of 2000
//!   cycles added".
//!
//! Both are computed online, during a (single- or multi-worker) run, by
//! the recurrence applied at each join of spans `a` and `b` under cost
//! `C`:
//!
//! ```text
//! span_C(a || b) = min(a + b,  max(a, b) + C)
//! ```
//!
//! which chooses sequential execution exactly when the parallel saving
//! `a + b - max(a, b)` is below `C`. With `C = 0` this degenerates to
//! `max(a, b)`, the classic span. Work (`T_1`) accumulates leaf time.
//!
//! Leaf time is measured with the cycle counter between scheduler
//! events: every fork/join boundary *flushes* the time since the last
//! mark into the running accumulators.

use crate::cycles;

/// The realistic overhead model's per-parallel-computation cost, in
/// cycles (the paper's 2000).
pub const DEFAULT_OVERHEAD_CYCLES: u64 = 2000;

/// Per-worker span instrumentation state.
///
/// Disabled state costs one predictable branch per fork.
#[derive(Debug, Clone)]
pub struct SpanState {
    /// Whether instrumentation is active for the current run.
    pub enabled: bool,
    /// The `C` of the realistic model, in cycles.
    pub overhead: u64,
    /// Total measured work on this worker (cycles of leaf time).
    pub work: u64,
    /// Running span with `C = 0` for the computation currently being
    /// accumulated (since the last reset point).
    pub span0: u64,
    /// Running span with `C = overhead`.
    pub span_c: u64,
    /// Cycle timestamp of the last flush.
    pub mark: u64,
}

impl Default for SpanState {
    fn default() -> Self {
        SpanState {
            enabled: false,
            overhead: DEFAULT_OVERHEAD_CYCLES,
            work: 0,
            span0: 0,
            span_c: 0,
            mark: 0,
        }
    }
}

/// Saved parent accumulators across a fork (lives on the native stack).
#[derive(Debug, Clone, Copy)]
pub struct SpanFrame {
    parent0: u64,
    parent_c: u64,
}

impl SpanState {
    /// Resets the accumulators at the start of an instrumented run.
    pub fn reset(&mut self, enabled: bool, overhead: u64) {
        self.enabled = enabled;
        self.overhead = overhead;
        self.work = 0;
        self.span0 = 0;
        self.span_c = 0;
        self.mark = cycles::now();
    }

    /// Adds the leaf time since the last mark to work and both spans.
    #[inline]
    pub fn flush(&mut self) {
        let now = cycles::now();
        let d = now.wrapping_sub(self.mark);
        self.work += d;
        self.span0 += d;
        self.span_c += d;
        self.mark = now;
    }

    /// Called at a fork, before running the first branch: flushes the
    /// leaf segment, saves the parent's accumulated span and starts a
    /// fresh accumulation for branch `a`.
    #[inline]
    pub fn fork_start(&mut self) -> SpanFrame {
        self.flush();
        let f = SpanFrame {
            parent0: self.span0,
            parent_c: self.span_c,
        };
        self.span0 = 0;
        self.span_c = 0;
        f
    }

    /// Called between the two branches: returns branch `a`'s spans and
    /// restarts accumulation for branch `b`.
    #[inline]
    pub fn fork_mid(&mut self) -> (u64, u64) {
        self.flush();
        let a = (self.span0, self.span_c);
        self.span0 = 0;
        self.span_c = 0;
        a
    }

    /// Ends the current accumulation (for an *inlined* branch `b`) and
    /// returns its spans.
    #[inline]
    pub fn branch_end(&mut self) -> (u64, u64) {
        self.flush();
        (self.span0, self.span_c)
    }

    /// Called at the join: combines the parent span with the two branch
    /// spans under both cost models and resumes the parent accumulation.
    #[inline]
    pub fn fork_join(&mut self, frame: SpanFrame, a: (u64, u64), b: (u64, u64)) {
        self.span0 = frame.parent0 + combine(a.0, b.0, 0);
        self.span_c = frame.parent_c + combine(a.1, b.1, self.overhead);
        self.mark = cycles::now();
    }

    /// Snapshot of `(work, span0, span_c)` after a final flush.
    pub fn finish(&mut self) -> (u64, u64, u64) {
        self.flush();
        (self.work, self.span0, self.span_c)
    }
}

/// The span recurrence: parallel composition of spans `a` and `b` under
/// per-parallel-region cost `c`.
#[inline]
pub fn combine(a: u64, b: u64, c: u64) -> u64 {
    let sequential = a + b;
    let parallel = a.max(b).saturating_add(c);
    sequential.min(parallel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combine_zero_cost_is_max() {
        assert_eq!(combine(10, 20, 0), 20);
        assert_eq!(combine(20, 10, 0), 20);
        assert_eq!(combine(0, 0, 0), 0);
    }

    #[test]
    fn combine_prefers_sequential_for_small_savings() {
        // Savings = a + b - max(a,b) = min(a,b). With min < c, sequential.
        assert_eq!(combine(100, 5, 2000), 105);
        // With min >= c... parallel is max + c when that is smaller.
        assert_eq!(combine(10_000, 9_000, 2000), 12_000);
        // Exactly at the boundary parallel == sequential.
        assert_eq!(combine(4000, 2000, 2000), 6000);
    }

    #[test]
    fn combine_is_commutative() {
        for (a, b, c) in [(5, 9, 3), (0, 7, 100), (1000, 1000, 1)] {
            assert_eq!(combine(a, b, c), combine(b, a, c));
        }
    }

    #[test]
    fn fork_join_accumulates_parent() {
        let mut s = SpanState::default();
        s.reset(true, 2000);
        let frame = s.fork_start();
        // Pretend branch a took 5000 cycles, b took 4000.
        let joined_frame = frame;
        s.fork_join(joined_frame, (5000, 5000), (4000, 4000));
        // span0 = max(5000,4000) = 5000; span_c = 5000 + 2000 = 7000.
        assert!(s.span0 >= 5000);
        assert!(s.span_c >= 7000);
        // Parallelism with zero overhead >= with 2000 overhead.
        assert!(s.span0 <= s.span_c);
    }

    #[test]
    fn measured_serial_loop_gives_positive_work() {
        let mut s = SpanState::default();
        s.reset(true, 2000);
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let (work, span0, span_c) = s.finish();
        assert!(work > 0);
        // A purely serial computation has span == work.
        assert_eq!(work, span0);
        assert_eq!(work, span_c);
    }

    #[test]
    fn nested_balanced_tree_parallelism_grows() {
        // Simulate a balanced binary tree of unit-leaf tasks and verify
        // parallelism T1/Tinf approaches the leaf count with C=0.
        fn tree(s: &mut SpanState, depth: u32, leaf: u64) -> (u64, u64) {
            if depth == 0 {
                s.work += leaf;
                return (leaf, leaf);
            }
            let a = tree(s, depth - 1, leaf);
            let b = tree(s, depth - 1, leaf);
            (combine(a.0, b.0, 0), combine(a.1, b.1, s.overhead))
        }
        let mut s = SpanState::default();
        s.reset(true, 2000);
        s.mark = cycles::now();
        let (span0, span_c) = tree(&mut s, 10, 10_000);
        let work = s.work;
        let par0 = work as f64 / span0 as f64;
        let par_c = work as f64 / span_c as f64;
        assert!((par0 - 1024.0).abs() < 1.0, "ideal parallelism {par0}");
        // The realistic model reports less parallelism.
        assert!(par_c < par0);
        assert!(par_c > 100.0, "still substantially parallel: {par_c}");
    }
}
