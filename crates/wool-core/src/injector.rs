//! The global injector queue: external job submission for serve pools.
//!
//! A batch [`crate::Pool`] has exactly one entry point for work — the
//! root task of `run`, launched by the owning thread. The serve layer
//! (`wool-serve`) instead accepts jobs from *any* thread while the pool
//! is live. Those jobs enter through this queue: a bounded, array-based
//! MPMC ring in the style of Vyukov's bounded queue. Producers and
//! consumers synchronize on per-cell sequence numbers and claim
//! positions with a CAS on the head/tail counters; the fast path of a
//! submission touches no lock and performs **no allocation** (the cells
//! are preallocated; a job is a 48-byte [`Runnable`] moved by value).
//!
//! Deliberately *not* a work-stealing deque: the injector lives outside
//! the direct task stack so that the spawn/join fast path of §III-A is
//! untouched by serve mode. Idle workers poll it only after a failed
//! steal sweep (see `crate::serve`), which keeps intra-job parallelism
//! (stealing) strictly ahead of new root jobs — the same priority order
//! injector-fed runtimes like Tokio and crossbeam's `Injector` use.

use crate::sync::atomic::AtomicUsize;
use crate::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::cell::UnsafeCell;
use std::mem::{ManuallyDrop, MaybeUninit};

use crate::pad::CachePadded;

/// A type-erased root job, ready to run on any worker of the pool that
/// it was built for.
///
/// The `call` function receives the erased payload pointer and a
/// `*mut ()` pointing at the executing worker's
/// [`WorkerHandle`](crate::WorkerHandle) (monomorphized over the pool's
/// strategy by the submitting side, exactly like the task wrappers of
/// the direct task stack). `drop_fn` disposes of a payload that will
/// never run — it must also resolve any completion object attached to
/// the job, so abandoned submissions do not strand their waiters.
pub struct Runnable {
    data: *mut (),
    call: unsafe fn(*mut (), *mut ()),
    drop_fn: unsafe fn(*mut ()),
    submit_ts: u64,
    tag: u32,
}

// SAFETY: a Runnable is a moved-by-value owner of its payload; the
// constructor contract requires the payload (and everything `call`
// touches through it) to be Send.
unsafe impl Send for Runnable {}

impl Runnable {
    /// Wraps a payload for injection.
    ///
    /// # Safety
    /// `data` must be an owning pointer whose payload is `Send`;
    /// `call(data, ctx)` must consume the payload exactly once, with
    /// `ctx` pointing at a `WorkerHandle` of the strategy the caller
    /// monomorphized `call` for; `drop_fn(data)` must likewise consume
    /// it exactly once. The queue guarantees exactly one of the two is
    /// invoked.
    pub unsafe fn new(
        data: *mut (),
        call: unsafe fn(*mut (), *mut ()),
        drop_fn: unsafe fn(*mut ()),
        submit_ts: u64,
        tag: u32,
    ) -> Self {
        Runnable {
            data,
            call,
            drop_fn,
            submit_ts,
            tag,
        }
    }

    /// Cycle timestamp taken by the submitter (for queue-latency
    /// tracing).
    #[inline]
    pub fn submit_ts(&self) -> u64 {
        self.submit_ts
    }

    /// Submitter-assigned job tag (trace correlation).
    #[inline]
    pub fn tag(&self) -> u32 {
        self.tag
    }

    /// Executes the job on the worker behind `ctx`, consuming it.
    ///
    /// # Safety
    /// `ctx` must point at a live `WorkerHandle` of the strategy the
    /// job was monomorphized for, on the thread owning that worker.
    #[inline]
    pub unsafe fn run(self, ctx: *mut ()) {
        let this = ManuallyDrop::new(self);
        (this.call)(this.data, ctx);
    }
}

impl Drop for Runnable {
    fn drop(&mut self) {
        // SAFETY: by the `new` contract `drop_fn` consumes the payload;
        // `run` skips this Drop via ManuallyDrop, so exactly one of the
        // two ever observes `data`.
        unsafe { (self.drop_fn)(self.data) }
    }
}

/// One queue cell: a sequence word plus storage for a job.
struct Cell {
    /// Vyukov sequencing: equals the cell index when empty and ready
    /// for the `index`-th enqueue, `index + 1` when that enqueue has
    /// completed, and grows by the capacity each lap.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<Runnable>>,
}

/// The bounded MPMC injector queue.
///
/// `push` is safe to call from any thread; `pop` from any thread. Both
/// are lock-free in the practical sense (a stalled thread can delay
/// only the cell it claimed, not the whole queue).
pub struct Injector {
    buf: Box<[Cell]>,
    mask: usize,
    /// Enqueue position (next cell a producer will claim).
    head: CachePadded<AtomicUsize>,
    /// Dequeue position (next cell a consumer will claim).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: cells are handed off producer→consumer through the Acquire/
// Release protocol on `seq`; a cell's payload is only touched by the
// thread that claimed its position with a successful CAS.
unsafe impl Send for Injector {}
unsafe impl Sync for Injector {}

impl Injector {
    /// Creates a queue holding at most `capacity` jobs, rounded up to a
    /// power of two (minimum 2).
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let buf = (0..cap)
            .map(|i| Cell {
                seq: AtomicUsize::new(i),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Injector {
            buf,
            mask: cap - 1,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Maximum number of queued jobs.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Enqueues a job; returns it back when the queue is full.
    pub fn push(&self, job: Runnable) -> Result<(), Runnable> {
        // relaxed-ok: position hint only; a stale value is corrected by
        // the seq check or the CAS failure below, never acted on.
        let mut pos = self.head.load(Relaxed);
        loop {
            let cell = &self.buf[pos & self.mask];
            // Acquire pairs with the consumer's Release store of
            // `pos + mask + 1`: seeing the vacancy value proves the
            // previous lap's payload read happened-before our write.
            let seq = cell.seq.load(Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // relaxed-ok: head is a ticket counter; winning the CAS
                // only claims the position. The payload hand-off
                // synchronizes through `seq`, not `head`, so neither the
                // success nor the failure ordering needs to be stronger.
                match self
                    .head
                    .compare_exchange_weak(pos, pos + 1, Relaxed, Relaxed)
                {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of the cell for this lap.
                        unsafe { (*cell.val.get()).write(job) };
                        // Release publishes the payload write above to
                        // the consumer's Acquire load of `seq`.
                        cell.seq.store(pos + 1, Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                // The cell still holds the value from one lap ago: the
                // queue is full.
                return Err(job);
            } else {
                // relaxed-ok: position hint only (see the head load at
                // the top of this function).
                pos = self.head.load(Relaxed);
            }
        }
    }

    /// Dequeues a job, if any.
    pub fn pop(&self) -> Option<Runnable> {
        // relaxed-ok: position hint only; a stale value is corrected by
        // the seq check or the CAS failure below, never acted on.
        let mut pos = self.tail.load(Relaxed);
        loop {
            let cell = &self.buf[pos & self.mask];
            // Acquire pairs with the producer's Release store of
            // `pos + 1`: seeing the filled value makes the payload write
            // happen-before our read of the cell.
            let seq = cell.seq.load(Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                // relaxed-ok: tail is a ticket counter; the hand-off
                // synchronizes through `seq` (see push).
                match self
                    .tail
                    .compare_exchange_weak(pos, pos + 1, Relaxed, Relaxed)
                {
                    Ok(_) => {
                        // SAFETY: the CAS gave this thread exclusive
                        // ownership of the (filled) cell for this lap.
                        let job = unsafe { (*cell.val.get()).assume_init_read() };
                        // Release publishes the payload *read* (and thus
                        // the vacancy) to the next lap's producer, which
                        // may overwrite the cell after its Acquire load.
                        cell.seq.store(pos + self.mask + 1, Release);
                        return Some(job);
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None;
            } else {
                // relaxed-ok: position hint only (see the tail load at
                // the top of this function).
                pos = self.tail.load(Relaxed);
            }
        }
    }

    /// Whether the queue currently appears empty. SeqCst so it can be
    /// used in park/wake protocols (paired with a SeqCst fence on the
    /// submit side).
    pub fn is_empty(&self) -> bool {
        self.tail.load(SeqCst) >= self.head.load(SeqCst)
    }

    /// Approximate number of queued jobs.
    pub fn len(&self) -> usize {
        // relaxed-ok: advisory statistic; the two counters are not read
        // atomically together anyway, so stronger orderings buy nothing.
        self.head
            .load(Relaxed)
            .saturating_sub(self.tail.load(Relaxed))
    }
}

impl Drop for Injector {
    fn drop(&mut self) {
        // Dispose of jobs that never ran; their `drop_fn` resolves any
        // attached completion handles.
        while let Some(job) = self.pop() {
            drop(job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// A payload that counts how it left the queue.
    struct Probe {
        ran: Arc<AtomicU64>,
        dropped: Arc<AtomicU64>,
        value: u64,
    }

    unsafe fn probe_call(data: *mut (), ctx: *mut ()) {
        let p = Box::from_raw(data as *mut Probe);
        // The tests pass a counter cell as the "worker handle".
        let sum = &*(ctx as *const AtomicU64);
        sum.fetch_add(p.value, Ordering::Relaxed);
        p.ran.fetch_add(1, Ordering::Relaxed);
    }

    unsafe fn probe_drop(data: *mut ()) {
        let p = Box::from_raw(data as *mut Probe);
        p.dropped.fetch_add(1, Ordering::Relaxed);
    }

    fn probe(ran: &Arc<AtomicU64>, dropped: &Arc<AtomicU64>, value: u64) -> Runnable {
        let b = Box::new(Probe {
            ran: Arc::clone(ran),
            dropped: Arc::clone(dropped),
            value,
        });
        // SAFETY: box pointer consumed exactly once by call or drop.
        unsafe {
            Runnable::new(
                Box::into_raw(b) as *mut (),
                probe_call,
                probe_drop,
                7,
                value as u32,
            )
        }
    }

    #[test]
    fn fifo_within_capacity() {
        let ran = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let q = Injector::with_capacity(8);
        assert!(q.is_empty());
        for i in 0..5 {
            q.push(probe(&ran, &dropped, i)).ok().unwrap();
        }
        assert!(!q.is_empty());
        assert_eq!(q.len(), 5);
        let sum = AtomicU64::new(0);
        for i in 0..5 {
            let job = q.pop().expect("queued job");
            assert_eq!(job.tag(), i, "FIFO order");
            assert_eq!(job.submit_ts(), 7);
            unsafe { job.run(&sum as *const AtomicU64 as *mut ()) };
        }
        assert!(q.pop().is_none());
        assert_eq!(sum.load(Ordering::Relaxed), 10, "1+2+3+4");
        assert_eq!(ran.load(Ordering::Relaxed), 5);
        assert_eq!(dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn full_queue_returns_job() {
        let ran = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let q = Injector::with_capacity(2);
        assert_eq!(q.capacity(), 2);
        q.push(probe(&ran, &dropped, 0)).ok().unwrap();
        q.push(probe(&ran, &dropped, 1)).ok().unwrap();
        let job = q.push(probe(&ran, &dropped, 2)).expect_err("queue is full");
        drop(job);
        assert_eq!(dropped.load(Ordering::Relaxed), 1);
        // Space reappears after a pop.
        drop(q.pop().unwrap());
        q.push(probe(&ran, &dropped, 3)).ok().unwrap();
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(Injector::with_capacity(0).capacity(), 2);
        assert_eq!(Injector::with_capacity(3).capacity(), 4);
        assert_eq!(Injector::with_capacity(1000).capacity(), 1024);
    }

    #[test]
    fn dropping_queue_disposes_pending_jobs() {
        let ran = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        {
            let q = Injector::with_capacity(8);
            for i in 0..6 {
                q.push(probe(&ran, &dropped, i)).ok().unwrap();
            }
        }
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        assert_eq!(dropped.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 5_000;
        let ran = Arc::new(AtomicU64::new(0));
        let dropped = Arc::new(AtomicU64::new(0));
        let q = Injector::with_capacity(64);
        let sum = AtomicU64::new(0);
        let consumed = AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..PRODUCERS {
                let q = &q;
                let ran = &ran;
                let dropped = &dropped;
                s.spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut job = probe(ran, dropped, p * PER_PRODUCER + i);
                        loop {
                            match q.push(job) {
                                Ok(()) => break,
                                Err(j) => {
                                    job = j;
                                    crate::sync::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            for _ in 0..3 {
                let q = &q;
                let sum = &sum;
                let consumed = &consumed;
                s.spawn(move || loop {
                    if let Some(job) = q.pop() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        unsafe { job.run(sum as *const AtomicU64 as *mut ()) };
                    } else if consumed.load(Ordering::Relaxed) == PRODUCERS * PER_PRODUCER {
                        break;
                    } else {
                        crate::sync::hint::spin_loop();
                    }
                });
            }
        });
        let n = PRODUCERS * PER_PRODUCER;
        assert_eq!(ran.load(Ordering::Relaxed), n);
        assert_eq!(dropped.load(Ordering::Relaxed), 0);
        // Every distinct value arrived exactly once: the sum matches.
        assert_eq!(sum.load(Ordering::Relaxed), n * (n - 1) / 2);
    }
}
