//! The worker pool: thread lifecycle, parallel regions, reports.
//!
//! A [`Pool`] owns `workers - 1` background threads plus the calling
//! thread, which acts as worker 0 inside [`Pool::run`]. This mirrors the
//! paper's benchmark structure: a program is a sequence of parallel
//! regions separated by serial code on worker 0, with the other workers
//! polling for stealable work for the whole duration of the program.
//!
//! After each `run`, a [`RunReport`] is available with the per-worker
//! scheduler statistics, the measured work/span (Table I), and the
//! CPU-time breakdown (Figure 6), depending on which instrumentation the
//! [`PoolConfig`] enabled.

use crate::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use crate::sync::atomic::{AtomicBool, AtomicU64};
use crate::sync::thread::JoinHandle;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

use crate::config::PoolConfig;
use crate::cycles;
use crate::exec::WorkerHandle;
use crate::stats::Stats;
use crate::strategy::{Strategy, WoolFull};
use crate::timebreak::{Category, TimeBreakdown};
use crate::worker::{Worker, WorkerReport};

/// Shared, strategy-independent pool state.
pub(crate) struct PoolInner {
    /// All workers; index 0 is driven by the `run` caller.
    pub workers: Box<[Worker]>,
    /// Immutable configuration.
    pub cfg: PoolConfig,
    /// True while a parallel region is executing.
    pub active: AtomicBool,
    /// Set once at drop; background threads exit.
    pub shutdown: AtomicBool,
    /// Region counter; bumped by every `run`.
    pub epoch: AtomicU64,
    /// Epoch of the most recently *finished* region; tells background
    /// workers which epoch they should publish a report for.
    pub completed: AtomicU64,
}

impl PoolInner {
    /// Builds the shared state for a validated configuration, with
    /// trace rings installed when tracing is configured. Used by both
    /// the batch [`Pool`] and the serve engine (`crate::serve`).
    pub(crate) fn build(cfg: PoolConfig) -> Arc<PoolInner> {
        let p = cfg.workers;
        let workers: Box<[Worker]> = (0..p).map(|i| Worker::new(i, cfg.stack_capacity)).collect();
        let inner = Arc::new(PoolInner {
            workers,
            cfg,
            active: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        });
        #[cfg(feature = "trace")]
        if inner.cfg.instrument_trace {
            for w in inner.workers.iter() {
                // SAFETY: no worker thread exists yet; this thread has
                // exclusive access to every owner cell.
                unsafe {
                    (*w.own.get()).trace = wool_trace::TraceRing::new(inner.cfg.trace_capacity);
                }
            }
        }
        inner
    }
}

/// Everything measured during one [`Pool::run`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of workers in the pool.
    pub workers: usize,
    /// Wall-clock duration of the region, in cycle ticks.
    pub wall_ticks: u64,
    /// Per-worker scheduler statistics (index 0 = the run caller).
    pub per_worker: Vec<Stats>,
    /// Sum of `per_worker`.
    pub total: Stats,
    /// Total measured work `T_1` in cycles (0 unless span-instrumented).
    pub work: u64,
    /// Span with zero scheduling overhead (`T_inf`, Table I column "0").
    pub span0: u64,
    /// Span under the realistic overhead model (Table I column "2000").
    pub span_c: u64,
    /// Merged CPU-time breakdown (zeros unless time-instrumented).
    pub breakdown: TimeBreakdown,
    /// Per-worker CPU-time breakdowns.
    pub per_worker_breakdown: Vec<TimeBreakdown>,
}

impl RunReport {
    /// Parallelism `T_1 / T_inf` in the zero-overhead model.
    pub fn parallelism0(&self) -> f64 {
        if self.span0 == 0 {
            0.0
        } else {
            self.work as f64 / self.span0 as f64
        }
    }

    /// Parallelism under the realistic overhead model.
    pub fn parallelism_c(&self) -> f64 {
        if self.span_c == 0 {
            0.0
        } else {
            self.work as f64 / self.span_c as f64
        }
    }
}

/// A work-stealing pool running the direct task stack scheduler with
/// strategy `S` (default: the full Wool configuration).
pub struct Pool<S: Strategy = WoolFull> {
    inner: Arc<PoolInner>,
    threads: Vec<JoinHandle<()>>,
    last_report: Option<RunReport>,
    #[cfg(feature = "trace")]
    last_trace: Option<wool_trace::Trace>,
    _strategy: PhantomData<S>,
}

impl<S: Strategy> Pool<S> {
    /// Creates a pool with the default configuration.
    pub fn new(workers: usize) -> Self {
        Self::with_config(PoolConfig::with_workers(workers))
    }

    /// Creates a pool from an explicit configuration.
    ///
    /// # Panics
    /// Panics when `cfg.workers == 0` (see [`PoolConfig::validated`]).
    pub fn with_config(cfg: PoolConfig) -> Self {
        let inner = PoolInner::build(cfg.validated());
        let p = inner.cfg.workers;
        let threads = (1..p)
            .map(|i| {
                let inner = Arc::clone(&inner);
                crate::sync::thread::Builder::new()
                    .name(format!("wool-{}-{}", S::NAME, i))
                    .spawn(move || background_loop::<S>(inner, i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Pool {
            inner,
            threads,
            last_report: None,
            #[cfg(feature = "trace")]
            last_trace: None,
            _strategy: PhantomData,
        }
    }

    /// Number of workers (including the `run` caller).
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// The strategy name (paper series label).
    pub fn strategy_name(&self) -> &'static str {
        S::NAME
    }

    /// Runs `f` as the root task of a parallel region. The calling
    /// thread becomes worker 0; background workers steal from it (and
    /// from each other) until the root returns.
    ///
    /// Any panic raised inside the region is propagated after the
    /// region has quiesced.
    pub fn run<R, F>(&mut self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&mut WorkerHandle<S>) -> R + Send,
    {
        let inner = &*self.inner;
        let epoch = inner.epoch.fetch_add(1, Relaxed) + 1;
        let cfg = &inner.cfg;

        // Initialize worker 0 for the region. SAFETY: we hold `&mut
        // self`, so no other `run` is live; background workers never
        // touch worker 0's owner state.
        let w0 = &inner.workers[0];
        unsafe {
            let own = &mut *w0.own.get();
            debug_assert_eq!(own.top, 0, "task stack must be quiescent between runs");
            own.stats = Stats::default();
            own.span.reset(cfg.instrument_span, cfg.span_overhead);
            own.tb.reset(cfg.instrument_time, Category::Na);
            own.seen_epoch = epoch;
            #[cfg(feature = "trace")]
            if cfg.instrument_trace {
                own.trace.clear();
                own.trace.set_enabled(true);
            }
        }
        debug_assert_eq!(w0.bot.load(Relaxed), 0);
        // `n_public` may be left above the (empty) stack when the last
        // public task of the previous region was stolen, or under
        // force-publish; re-arm it for the fresh stack.
        w0.n_public.store(0, Relaxed);
        w0.publish_request.store(false, Relaxed);

        let t0 = cycles::now();
        inner.active.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }

        // SAFETY: the pool outlives the handle; this thread is the
        // unique worker 0 for the duration of the region.
        let mut handle = unsafe { WorkerHandle::<S>::new(inner, 0) };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut handle)));

        inner.active.store(false, Release);
        inner.completed.store(epoch, Release);
        let wall = cycles::now().wrapping_sub(t0);

        // Worker 0's report.
        let (w0_stats, w0_work, w0_span0, w0_span_c, w0_tb) = unsafe {
            let own = &mut *w0.own.get();
            #[cfg(feature = "trace")]
            own.trace.set_enabled(false);
            let (work, span0, span_c) = own.span.finish();
            let tb = own.tb.finish();
            (own.stats, work, span0, span_c, tb)
        };

        // Collect background workers' reports for this epoch.
        let p = inner.workers.len();
        let mut per_worker = Vec::with_capacity(p);
        let mut per_worker_breakdown = Vec::with_capacity(p);
        per_worker.push(w0_stats);
        per_worker_breakdown.push(w0_tb);
        let mut work = w0_work;
        #[cfg(feature = "trace")]
        let mut trace_snaps = if cfg.instrument_trace {
            // SAFETY: this thread is worker 0's owner.
            vec![unsafe { (*w0.own.get()).trace.snapshot(0) }]
        } else {
            Vec::new()
        };
        for i in 1..p {
            let w = &inner.workers[i];
            let mut spins = 0u32;
            while w.report_epoch.load(Acquire) != epoch {
                spins += 1;
                if spins < 256 {
                    crate::sync::hint::spin_loop();
                } else {
                    crate::sync::thread::yield_now();
                }
            }
            // SAFETY: the Acquire above pairs with the worker's Release
            // publish; the worker will not write this epoch's report
            // again.
            let report: WorkerReport = unsafe { *w.report.get() };
            work += report.work;
            per_worker.push(report.stats);
            per_worker_breakdown.push(report.breakdown);
            #[cfg(feature = "trace")]
            if cfg.instrument_trace {
                // SAFETY: covered by the same Acquire edge as `report`:
                // the worker disables its ring strictly before the
                // Release publish and re-enables it only at the next
                // region start, which requires `&mut self`.
                trace_snaps.push(unsafe { (*w.own.get()).trace.snapshot(i) });
            }
        }
        #[cfg(feature = "trace")]
        {
            self.last_trace = cfg
                .instrument_trace
                .then(|| wool_trace::Trace::new(trace_snaps, cycles::ticks_per_ns()));
        }
        let total: Stats = per_worker.iter().copied().sum();
        let mut breakdown = TimeBreakdown::default();
        for b in &per_worker_breakdown {
            breakdown.merge(b);
        }
        self.last_report = Some(RunReport {
            workers: p,
            wall_ticks: wall,
            per_worker,
            total,
            work,
            span0: w0_span0,
            span_c: w0_span_c,
            breakdown,
            per_worker_breakdown,
        });

        match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// The report of the most recent [`run`](Pool::run), if any.
    pub fn last_report(&self) -> Option<&RunReport> {
        self.last_report.as_ref()
    }

    /// The event trace of the most recent [`run`](Pool::run), when the
    /// pool was configured with
    /// [`instrument_trace`](PoolConfig::instrument_trace).
    #[cfg(feature = "trace")]
    pub fn last_trace(&self) -> Option<&wool_trace::Trace> {
        self.last_trace.as_ref()
    }

    /// Takes ownership of the most recent run's event trace.
    #[cfg(feature = "trace")]
    pub fn take_trace(&mut self) -> Option<wool_trace::Trace> {
        self.last_trace.take()
    }
}

impl<S: Strategy> Drop for Pool<S> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Main loop of a background worker.
fn background_loop<S: Strategy>(inner: Arc<PoolInner>, idx: usize) {
    // SAFETY: the pool (via Arc) outlives the loop; this thread is the
    // unique owner of worker `idx`.
    let mut handle = unsafe { WorkerHandle::<S>::new(&inner, idx) };
    let wkr = &inner.workers[idx];
    let cfg = &inner.cfg;
    let mut idle = 0u32;

    loop {
        if inner.shutdown.load(Acquire) {
            break;
        }
        if inner.active.load(Acquire) {
            let epoch = inner.epoch.load(Acquire);
            // SAFETY: owner-only state, this is the owning thread.
            unsafe {
                let own = handle.own();
                if own.seen_epoch != epoch {
                    own.seen_epoch = epoch;
                    own.stats = Stats::default();
                    own.span.reset(cfg.instrument_span, cfg.span_overhead);
                    own.tb.reset(cfg.instrument_time, Category::St);
                    #[cfg(feature = "trace")]
                    if cfg.instrument_trace {
                        own.trace.clear();
                        own.trace.set_enabled(true);
                        own.trace
                            .record(wool_trace::EventKind::Unpark, cycles::now(), 0);
                    }
                }
            }
            // SAFETY: this thread owns worker `idx`.
            let got = unsafe { handle.steal_round() };
            if got {
                idle = 0;
            } else {
                #[cfg(feature = "trace")]
                if idle == 0 {
                    // First empty-handed round after useful work: the
                    // start of an idle span on the exported timeline
                    // (closed by the next steal success).
                    // SAFETY: this thread owns worker `idx`.
                    unsafe { trace_ev!(handle, Idle, 0) }
                }
                idle += 1;
                if idle < cfg.steal_spin {
                    crate::sync::hint::spin_loop();
                } else {
                    #[cfg(feature = "trace")]
                    if idle == cfg.steal_spin {
                        // Escalation from spinning to yielding the CPU.
                        // SAFETY: this thread owns worker `idx`.
                        unsafe { trace_ev!(handle, Park, 0) }
                    }
                    // Crucial on oversubscribed hosts: let victims run.
                    crate::sync::thread::yield_now();
                }
            }
        } else {
            // Publish a report for the most recently finished region.
            // A worker that never noticed a (very short) region still
            // publishes an empty report so the coordinator's collection
            // loop terminates.
            let done = inner.completed.load(Acquire);
            if done != 0 && wkr.report_epoch.load(Relaxed) != done {
                // SAFETY: owner-only state; the coordinator reads
                // `report` only after Acquire-observing a matching
                // `report_epoch`, which we Release-store below.
                unsafe {
                    let own = handle.own();
                    // Stop writing the trace ring before the Release
                    // below: the coordinator reads it after the
                    // matching Acquire.
                    #[cfg(feature = "trace")]
                    own.trace.set_enabled(false);
                    let report = if own.seen_epoch == done {
                        let (work, _, _) = own.span.finish();
                        WorkerReport {
                            stats: own.stats,
                            work,
                            breakdown: own.tb.finish(),
                        }
                    } else {
                        WorkerReport::default()
                    };
                    *wkr.report.get() = report;
                }
                wkr.report_epoch.store(done, Release);
            }
            idle += 1;
            if idle < cfg.idle_spin {
                crate::sync::hint::spin_loop();
            } else if idle < cfg.idle_yield {
                crate::sync::thread::yield_now();
            } else {
                crate::sync::thread::park_timeout(std::time::Duration::from_micros(
                    cfg.park_timeout_us,
                ));
            }
        }
    }
}
