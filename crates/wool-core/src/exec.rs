//! Spawn, join, steal: the direct task stack algorithm (§III-A/B).
//!
//! [`WorkerHandle`] is the capability through which all task code runs.
//! Its [`fork`](WorkerHandle::fork) corresponds to the paper's
//! `SPAWN f; CALL g; JOIN f` idiom: the second closure is spawned onto
//! the direct task stack (made stealable), the first is an ordinary —
//! fully inlinable — call, and the join either pops the spawned task
//! back (the overwhelmingly common case, costing a handful of cycles)
//! or enters the run-time system to resolve a steal.
//!
//! The code is generic over [`Strategy`], which monomorphizes the
//! Table II join ladder and the Figure 4 steal protocols with zero
//! runtime dispatch.
//!
//! # Safety architecture
//!
//! A `WorkerHandle` holds raw pointers to pool-owned state and is only
//! ever constructed by `Pool::run` (for worker 0), by the background
//! worker loops, and by wrappers executing stolen tasks. All of these
//! live strictly within the pool's lifetime, and a handle never escapes
//! the closure it is lent to (`&mut`, `!Send`, not constructible by
//! users). Spawned closures may borrow the caller's stack because every
//! control path out of `fork` — including panics, via [`JoinGuard`] —
//! joins the spawned task first.

use crate::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use std::marker::PhantomData;

use crate::cycles;
use crate::pool::PoolInner;
use crate::slot::{
    check_transition, is_done, is_stolen, spin_while_empty, stolen, thief_of, RawWrapper, TaskRepr,
    TaskSlot, DONE, DONE_PANIC, EMPTY, TASK,
};
use crate::span::combine;
use crate::strategy::{StealSync, Strategy};
use crate::timebreak::Category;
use crate::worker::{OwnerState, Worker};

/// Outcome of one steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StealOutcome {
    /// A task was stolen **and executed to completion**.
    Executed,
    /// No stealable task was observed at the victim.
    Empty,
    /// Lost a race (CAS failure, contended trylock, back-off); worth
    /// retrying soon.
    Retry,
}

/// A unit of work storable in a task descriptor.
///
/// This is the internal, nameable form of "a closure plus its result
/// type"; `fork` wraps user closures in [`ClosureTask`], while
/// `for_each_spawn` uses [`ForEachTask`] so every iteration shares one
/// concrete type (the stack discipline requires the join to know the
/// exact type of the task it pops).
pub(crate) trait TaskBody<S: Strategy>: Send + Sized {
    /// The task's result type.
    type Output: Send;
    /// Runs the task on the given worker.
    fn run(self, h: &mut WorkerHandle<S>) -> Self::Output;
}

/// Adapter: any `FnOnce(&mut WorkerHandle<S>) -> R + Send` is a task.
pub(crate) struct ClosureTask<F>(pub F);

impl<S, F, R> TaskBody<S> for ClosureTask<F>
where
    S: Strategy,
    F: FnOnce(&mut WorkerHandle<S>) -> R + Send,
    R: Send,
{
    type Output = R;
    #[inline(always)]
    fn run(self, h: &mut WorkerHandle<S>) -> R {
        (self.0)(h)
    }
}

/// One iteration of a `for_each_spawn`: a shared body plus an index.
/// 16 bytes — always stored inline in the descriptor.
pub(crate) struct ForEachTask<'a, F> {
    body: &'a F,
    i: usize,
}

impl<'a, S, F> TaskBody<S> for ForEachTask<'a, F>
where
    S: Strategy,
    F: Fn(&mut WorkerHandle<S>, usize) + Sync,
{
    type Output = ();
    #[inline(always)]
    fn run(self, h: &mut WorkerHandle<S>) {
        (self.body)(h, self.i)
    }
}

/// The task-specific wrapper (`wrap_f` in Figure 3), monomorphized per
/// task type and strategy. Executes the task in place; never touches the
/// slot's `state` (the caller publishes completion so it can order the
/// span hand-off first).
///
/// # Safety
/// `slot` must hold a task of exactly type `B`; `ctx` must point to the
/// executing worker's `WorkerHandle<S>`.
unsafe fn task_wrapper<B, S>(slot: *const TaskSlot, ctx: *mut ()) -> bool
where
    B: TaskBody<S>,
    S: Strategy,
{
    let h = &mut *(ctx as *mut WorkerHandle<S>);
    TaskRepr::<B, B::Output>::exec_in_place(&*slot, |b| b.run(h))
}

/// The execution context handed to every task closure.
///
/// Obtain one from [`crate::Pool::run`]; it cannot be constructed,
/// cloned, or sent to another thread from user code.
pub struct WorkerHandle<S: Strategy> {
    pool: *const PoolInner,
    wkr: *const Worker,
    idx: usize,
    /// Cached configuration (hot-path reads).
    trip_distance: usize,
    publish_batch: usize,
    force_publish_all: bool,
    min_grain: usize,
    _strategy: PhantomData<S>,
    _not_send: PhantomData<*mut ()>,
}

impl<S: Strategy> WorkerHandle<S> {
    /// Creates a handle for worker `idx`.
    ///
    /// # Safety
    /// `pool` must outlive every use of the handle, and the calling
    /// thread must be the unique thread acting as worker `idx` for the
    /// handle's entire lifetime.
    pub(crate) unsafe fn new(pool: &PoolInner, idx: usize) -> Self {
        WorkerHandle {
            pool,
            wkr: &pool.workers[idx],
            idx,
            trip_distance: pool.cfg.trip_distance,
            publish_batch: pool.cfg.publish_batch,
            force_publish_all: pool.cfg.force_publish_all,
            min_grain: pool.cfg.min_grain,
            _strategy: PhantomData,
            _not_send: PhantomData,
        }
    }

    /// The pool this handle executes in.
    ///
    /// The returned reference is *not* tied to the `&self` borrow: it
    /// points into pool-owned memory that outlives the handle (see the
    /// constructor contract). This lets the scheduler hold worker/slot
    /// references across re-borrows of `self`.
    #[inline(always)]
    pub(crate) fn pool<'a>(&self) -> &'a PoolInner {
        // SAFETY: guaranteed by the constructor contract.
        unsafe { &*self.pool }
    }

    /// This worker's shared state (lifetime-decoupled, see [`pool`]).
    ///
    /// [`pool`]: WorkerHandle::pool
    #[inline(always)]
    pub(crate) fn wkr<'a>(&self) -> &'a Worker {
        // SAFETY: guaranteed by the constructor contract.
        unsafe { &*self.wkr }
    }

    /// This worker's owner-only state.
    ///
    /// # Safety
    /// The returned borrow must be short-lived: callers must not hold it
    /// across any call into user code or into another `own()` caller
    /// (standard `UnsafeCell` discipline; this thread is the only one
    /// that ever touches the cell).
    #[allow(clippy::mut_from_ref)]
    #[inline(always)]
    pub(crate) unsafe fn own<'a>(&self) -> &'a mut OwnerState {
        &mut *self.wkr().own.get()
    }

    /// Index of this worker within the pool (0 = the `run` caller).
    #[inline(always)]
    pub fn worker_index(&self) -> usize {
        self.idx
    }

    /// Number of workers in the pool.
    #[inline(always)]
    pub fn num_workers(&self) -> usize {
        self.pool().workers.len()
    }

    /// The pool's configured minimum data-parallel leaf grain
    /// ([`crate::PoolConfig::min_grain`]).
    #[inline(always)]
    pub fn min_grain(&self) -> usize {
        self.min_grain
    }

    /// Records a data-parallel split (a range of `_len` items about to
    /// be forked in half) in the worker's trace ring. A no-op without
    /// the `trace` cargo feature.
    #[inline(always)]
    pub fn note_split(&mut self, _len: usize) {
        // SAFETY: `own()` contract — owner thread, short-lived borrow
        // not held across user code.
        #[cfg(feature = "trace")]
        unsafe {
            trace_ev!(self, Split, _len.min(u32::MAX as usize));
        }
    }

    // ------------------------------------------------------------------
    // fork / join
    // ------------------------------------------------------------------

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    ///
    /// `b` is spawned on the direct task stack (the paper's `SPAWN`),
    /// `a` runs as an ordinary call (`CALL`), then `b` is joined
    /// (`JOIN`): popped and run inline if nobody stole it, otherwise
    /// resolved through the run-time system with leap-frogging.
    pub fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // SAFETY: `own` borrows are short-lived and never held across
        // user code; slot accesses follow the state-word protocol; the
        // spawned task is joined on every control path out of this
        // function (JoinGuard covers unwinding out of `a`).
        unsafe {
            if let Err(ClosureTask(b)) = self.try_push(ClosureTask(b)) {
                // Task-pool overflow: execute eagerly, in program order.
                self.own().stats.overflow_inlines += 1;
                let ra = a(self);
                let rb = b(self);
                return (ra, rb);
            }

            let instr = self.own().span.enabled;
            let frame = if instr {
                Some(self.own().span.fork_start())
            } else {
                None
            };

            let guard = JoinGuard::<S, ClosureTask<FB>>::arm(self);
            let ra = a(self);
            guard.disarm();

            let a_span = if instr {
                Some(self.own().span.fork_mid())
            } else {
                None
            };

            let (rb, b_span) = self.join_task::<ClosureTask<FB>>(instr);

            if let Some(frame) = frame {
                self.own().span.fork_join(frame, a_span.unwrap(), b_span);
            }
            (ra, rb)
        }
    }

    /// Spawns `body(i)` for `i` in `1..n` as individual tasks, runs
    /// `body(0)` as the direct call, then joins them all in LIFO order
    /// (as the stack discipline requires).
    ///
    /// This is the paper's loop-parallelization idiom: for `mm` with 64
    /// rows, "63 tasks are spawned each of which will do one iteration
    /// of the outermost loop".
    pub fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        // SAFETY: as in `fork`: short `own` borrows; every spawned
        // iteration is joined before return (ForEachGuard on unwind).
        unsafe {
            let instr = self.own().span.enabled;
            let frame = if instr {
                Some(self.own().span.fork_start())
            } else {
                None
            };

            let mut guard = ForEachGuard::<'_, S, F> {
                h: self as *mut Self,
                remaining: 0,
                _marker: PhantomData,
            };
            for i in 1..n {
                match self.try_push(ForEachTask { body, i }) {
                    Ok(()) => guard.remaining += 1,
                    Err(t) => {
                        // Overflow: run eagerly.
                        self.own().stats.overflow_inlines += 1;
                        t.run(self);
                    }
                }
            }
            body(self, 0);

            // Span of the direct call; each joined task folds into it as
            // a parallel sibling.
            let mut folded = if instr {
                self.own().span.fork_mid()
            } else {
                (0, 0)
            };
            let overhead = self.own().span.overhead;

            while guard.remaining > 0 {
                guard.remaining -= 1;
                let ((), s) = self.join_task::<ForEachTask<'_, F>>(instr);
                folded = (combine(folded.0, s.0, 0), combine(folded.1, s.1, overhead));
            }
            std::mem::forget(guard);

            if let Some(frame) = frame {
                self.own().span.fork_join(frame, folded, (0, 0));
            }
        }
    }

    // ------------------------------------------------------------------
    // scope plumbing (see crate::scope)
    // ------------------------------------------------------------------

    /// Pushes a scope task; on overflow executes it eagerly and returns
    /// false (nothing pending).
    ///
    /// # Safety
    /// The caller (the `Scope` drop guard) must join the task with
    /// [`join_scope_task`] before any of its borrows expire.
    ///
    /// [`join_scope_task`]: WorkerHandle::join_scope_task
    pub(crate) unsafe fn push_boxed<F>(&mut self, f: F) -> bool
    where
        F: FnOnce(&mut Self) + Send,
    {
        match self.try_push(ClosureTask(f)) {
            Ok(()) => true,
            Err(ClosureTask(f)) => {
                self.own().stats.overflow_inlines += 1;
                f(self);
                false
            }
        }
    }

    /// Joins the most recent un-joined scope push of closure type `F`.
    ///
    /// # Safety
    /// `F` must be exactly the type passed to the matching
    /// [`push_boxed`]; LIFO discipline as for all joins.
    ///
    /// [`push_boxed`]: WorkerHandle::push_boxed
    pub(crate) unsafe fn join_scope_task<F>(&mut self)
    where
        F: FnOnce(&mut Self) + Send,
    {
        let _ = self.join_task::<ClosureTask<F>>(false);
    }

    // ------------------------------------------------------------------
    // spawn
    // ------------------------------------------------------------------

    /// Pushes a task onto the direct task stack (`spawn_f` in Figure 3).
    /// Returns the task back on overflow.
    ///
    /// # Safety
    /// The pushed task may borrow the caller's stack; the caller must
    /// join it (possibly via a guard) before those borrows expire.
    unsafe fn try_push<B: TaskBody<S>>(&mut self, b: B) -> Result<(), B> {
        let wkr = self.wkr();
        let own = self.own();
        let k = own.top;
        if k == wkr.capacity() {
            return Err(b);
        }
        let slot = wkr.slot(k);
        // Guard: a descriptor being (re)used for a push may be freshly
        // EMPTY, left DONE/DONE_PANIC by a joined steal, or — rarely —
        // still TASK: a stale thief's back-off can restore TASK *after*
        // the owner consumed the task through the private fast path
        // (the owner's private-path spin waits the thief out first, so
        // the restore is totally ordered before this push). What must
        // never be here is a live STOLEN marker: that descriptor is
        // executing on another worker.
        check_transition(slot, |s| !is_stolen(s), "spawn reuses slot");
        TaskRepr::<B, B::Output>::store(slot, b, task_wrapper::<B, S> as RawWrapper);
        // With private tasks the publication fence is the later Release
        // store to `n_public`; otherwise this store itself publishes the
        // task to thieves. (Either way this compiles to a plain store on
        // x86 — the paper's TSO argument for synchronization-free
        // spawns.)
        if S::PRIVATE_TASKS && !self.force_publish_all {
            // relaxed-ok: the slot is private (above `n_public`); no
            // thief may read it until the later Release store to
            // `n_public` publishes it, and that store orders this one.
            slot.state.store(TASK, Relaxed);
        } else {
            slot.state.store(TASK, Release);
        }
        own.top = k + 1;
        own.stats.spawns += 1;
        if S::SHARED_TOP {
            wkr.top_shared.store(k + 1, Release);
        }
        if S::PRIVATE_TASKS {
            if self.force_publish_all {
                wkr.n_public.store(k + 1, Release);
            // relaxed-ok: advisory trip-wire flag; a missed set only
            // delays publication until the next spawn or steal request.
            } else if wkr.publish_request.load(Relaxed) {
                self.publish();
            }
        }
        trace_ev!(self, Spawn, k + 1);
        Ok(())
    }

    /// §III-B: raises the public boundary in response to a thief's
    /// trip-wire notification.
    #[cold]
    unsafe fn publish(&mut self) {
        let wkr = self.wkr();
        // relaxed-ok: advisory flag reset; losing a concurrent set only
        // delays the next publication, it cannot lose tasks.
        wkr.publish_request.store(false, Relaxed);
        let own = self.own();
        // relaxed-ok: `n_public` is written only by this thread; its own
        // last store is always visible to it.
        let np = wkr.n_public.load(Relaxed);
        let top = own.top;
        if top > np {
            let new = (np + self.publish_batch).min(top);
            // Release: thieves that Acquire-read the new boundary must
            // see the TASK states and closure data written before it.
            wkr.n_public.store(new, Release);
            own.stats.publishes += 1;
            trace_ev!(self, Publish, new - np);
        }
    }

    // ------------------------------------------------------------------
    // join
    // ------------------------------------------------------------------

    /// The task-specific join (`join_f` in Figure 3): pops the youngest
    /// task; the fast path acquires it with one atomic swap (or, for a
    /// private task, with no atomic read-modify-write at all) and calls
    /// it directly.
    ///
    /// Returns the result and, when instrumented, the task's span.
    ///
    /// # Safety
    /// `B` must be exactly the type of the most recent un-joined push
    /// (guaranteed by `fork`/`for_each_spawn` nesting discipline).
    unsafe fn join_task<B: TaskBody<S>>(&mut self, instr: bool) -> (B::Output, (u64, u64)) {
        if S::SHARED_TOP {
            return self.join_task_shared_top::<B>(instr);
        }
        let wkr = self.wkr();
        let own = self.own();
        own.top -= 1;
        let k = own.top;
        let slot = wkr.slot(k);

        // relaxed-ok: `n_public` is written only by this thread.
        if S::PRIVATE_TASKS && k >= wkr.n_public.load(Relaxed) {
            // Private fast path: no atomic RMW, no fence — the ~3-cycle
            // row of Table II.
            own.stats.inlined_private += 1;
            // relaxed-ok (both loads below): the closure data was written
            // by this thread; a transient thief writes only the state
            // word (its CAS), never the data, so there is nothing to
            // acquire — we wait for the *value* TASK only.
            if slot.state.load(Relaxed) != TASK {
                // A stale thief transiently CASed this slot; because the
                // slot is private its post-CAS validation must fail, so
                // it will restore TASK. Extremely rare.
                while slot.state.load(Relaxed) != TASK {
                    crate::sync::hint::spin_loop();
                }
            }
            // Guard: we just observed TASK, but a stale thief may CAS
            // TASK→EMPTY between that observation and this store (its
            // back-off will restore TASK; harmless either way since we
            // overwrite with EMPTY). Anything else is a protocol bug.
            check_transition(slot, |s| s == TASK || s == EMPTY, "private pop");
            // relaxed-ok: un-publishes a slot only this thread may touch
            // (transient thieves excepted, see the guard above).
            slot.state.store(EMPTY, Relaxed);
            trace_ev!(self, JoinFastPrivate, k);
            return self.call_inline::<B>(slot, instr);
        }

        // Public fast path: one atomic exchange (§III-A).
        let s = slot.state.swap(EMPTY, AcqRel);
        if s == TASK {
            own.stats.inlined_public += 1;
            if S::PRIVATE_TASKS && !self.force_publish_all {
                // We inlined a public task — the situation private tasks
                // are designed to exploit (§III-B): privatize down to
                // the new top. Safe because the swap above acquired the
                // only descriptor between the old boundary and `top`.
                // relaxed-ok: `n_public` is written only by this thread.
                if wkr.n_public.load(Relaxed) > k {
                    wkr.n_public.store(k, Release);
                }
            }
            trace_ev!(self, JoinFastPublic, k);
            return self.call_inline::<B>(slot, instr);
        }
        self.rts_join::<B>(slot, k, s, instr)
    }

    /// Table II *base*: join under the per-worker lock, steal detection
    /// by comparing the shared `top` with `bot`.
    unsafe fn join_task_shared_top<B: TaskBody<S>>(
        &mut self,
        instr: bool,
    ) -> (B::Output, (u64, u64)) {
        let wkr = self.wkr();
        let own = self.own();
        own.top -= 1;
        let k = own.top;
        let slot = wkr.slot(k);

        wkr.lock.lock();
        // relaxed-ok (store and load): both words are read and written
        // under the per-worker lock in this strategy; the lock's own
        // Acquire/Release edges order them.
        wkr.top_shared.store(k, Relaxed);
        let was_stolen = wkr.bot.load(Relaxed) > k;
        wkr.lock.unlock();

        if !was_stolen {
            own.stats.inlined_public += 1;
            trace_ev!(self, JoinFastPublic, k);
            return self.call_inline::<B>(slot, instr);
        }
        own.stats.rts_joins += 1;
        own.stats.stolen_joins += 1;
        let s = slot.state.load(Acquire);
        debug_assert!(is_stolen(s) || is_done(s));
        trace_ev!(
            self,
            JoinSlow,
            if is_stolen(s) {
                thief_of(s)
            } else {
                // The thief already completed the task; its identity is
                // gone from the state word.
                u32::MAX as usize
            }
        );
        let s = if is_stolen(s) {
            self.leap_wait(slot, thief_of(s))
        } else {
            s
        };
        // The victim takes the lock when joining with a stolen task
        // (§IV-C), protecting the `bot` decrement.
        wkr.lock.lock();
        // relaxed-ok: `bot` is lock-protected in this strategy.
        wkr.bot.store(k, Relaxed);
        // Leap-frogged executions spawn on this stack while we waited:
        // their pushes raised `top_shared` and their joins lowered it
        // only back to `k + 1` (the lowest nested slot). Left there,
        // `bot = k < top_shared` would re-expose the consumed slot `k`
        // as stealable. Re-lower it with `bot`, under the same lock.
        // relaxed-ok: `top_shared` is read under this lock in this
        // strategy; the lock's edges order the store.
        wkr.top_shared.store(k, Relaxed);
        wkr.lock.unlock();
        self.finish_stolen::<B>(slot, s, instr)
    }

    /// The inlined call: direct (task-specific) or through the wrapper.
    unsafe fn call_inline<B: TaskBody<S>>(
        &mut self,
        slot: &TaskSlot,
        instr: bool,
    ) -> (B::Output, (u64, u64)) {
        if S::TASK_SPECIFIC_JOIN {
            // Direct call, visible to the optimizer — the paper's
            // task-specific join. Panics propagate naturally.
            let b = TaskRepr::<B, B::Output>::take_closure(slot);
            let r = b.run(self);
            let b_span = if instr {
                let span = &mut self.own().span;
                let s = span.branch_end();
                span.span0 = 0;
                span.span_c = 0;
                s
            } else {
                (0, 0)
            };
            (r, b_span)
        } else {
            self.call_via_wrapper::<B>(slot, instr)
        }
    }

    /// Generic (non-task-specific) inlined call through the wrapper
    /// function pointer; used by the `SyncOnTask` and `LockedBase` rungs
    /// and by the re-acquisition path of `RTS_join`.
    unsafe fn call_via_wrapper<B: TaskBody<S>>(
        &mut self,
        slot: &TaskSlot,
        instr: bool,
    ) -> (B::Output, (u64, u64)) {
        let wrapper = slot.wrapper();
        let ok = wrapper(slot as *const TaskSlot, self as *mut Self as *mut ());
        let b_span = if instr {
            let span = &mut self.own().span;
            let s = span.branch_end();
            span.span0 = 0;
            span.span_c = 0;
            s
        } else {
            (0, 0)
        };
        if !ok {
            let payload = TaskRepr::<B, B::Output>::take_panic(slot);
            std::panic::resume_unwind(payload);
        }
        (TaskRepr::<B, B::Output>::take_result(slot), b_span)
    }

    /// `RTS_join` (Figure 3): the join found the slot not simply
    /// poppable — a thief holds it transiently, stole it, or already
    /// completed it.
    #[cold]
    unsafe fn rts_join<B: TaskBody<S>>(
        &mut self,
        slot: &TaskSlot,
        k: usize,
        mut s: usize,
        instr: bool,
    ) -> (B::Output, (u64, u64)) {
        self.own().stats.rts_joins += 1;
        #[cfg(feature = "trace")]
        let mut join_thief = u32::MAX as usize;
        loop {
            if s == EMPTY {
                // Transient: a thief is between its CAS and either its
                // back-off restore or its STOLEN announcement.
                s = spin_while_empty(slot);
            }
            if s == TASK {
                // The thief backed off and restored the task; race for
                // it again with the swap.
                s = slot.state.swap(EMPTY, AcqRel);
                if s == TASK {
                    return self.call_via_wrapper::<B>(slot, instr);
                }
                continue;
            }
            if is_stolen(s) {
                #[cfg(feature = "trace")]
                {
                    join_thief = thief_of(s);
                }
                s = self.leap_wait(slot, thief_of(s));
            }
            debug_assert!(is_done(s), "unexpected task state {s}");
            // Reached iff the task was stolen (whether or not we had to
            // wait for it); count it here so `stolen_joins` matches the
            // thieves' steal counters exactly.
            self.own().stats.stolen_joins += 1;
            trace_ev!(self, JoinSlow, join_thief);
            // Maintain `n_public <= top`: the stolen task may have been
            // the last public descriptor; everything above `k` is dead.
            {
                let wkr = self.wkr();
                // relaxed-ok: `n_public` is written only by this thread.
                if S::PRIVATE_TASKS && wkr.n_public.load(Relaxed) > k {
                    wkr.n_public.store(k, Release);
                }
            }
            // The task was stolen and is complete: the thief advanced
            // `bot` past it; having synchronized on DONE we own `bot`
            // and move it back down (the paper's trailing `bot--`).
            let wkr = self.wkr();
            if steal_uses_lock::<S>() {
                wkr.lock.lock();
                // relaxed-ok: `bot` is lock-protected in this strategy.
                wkr.bot.store(k, Relaxed);
                wkr.lock.unlock();
            } else {
                // relaxed-ok: the thief's Release store of DONE (which we
                // Acquire-loaded to get here) ordered its `bot` store
                // before our load; no thief can move `bot` past the
                // youngest public descriptor — ours.
                debug_assert_eq!(wkr.bot.load(Relaxed), k + 1);
                wkr.bot.store(k, Release);
            }
            return self.finish_stolen::<B>(slot, s, instr);
        }
    }

    /// Reads the result (or re-raises the panic) of a completed stolen
    /// task and harvests its measured span.
    unsafe fn finish_stolen<B: TaskBody<S>>(
        &mut self,
        slot: &TaskSlot,
        s: usize,
        instr: bool,
    ) -> (B::Output, (u64, u64)) {
        let b_span = if instr { slot.span() } else { (0, 0) };
        if instr {
            // Do not charge the wait to the parent's span: restart the
            // leaf mark now that the join has resolved.
            self.own().span.mark = cycles::now();
        }
        if s == DONE_PANIC {
            let payload = TaskRepr::<B, B::Output>::take_panic(slot);
            std::panic::resume_unwind(payload);
        }
        (TaskRepr::<B, B::Output>::take_result(slot), b_span)
    }

    /// Leap-frogging (§I, Wagner & Calder): while our task is away,
    /// steal only from the thief that took it. Returns the final state.
    unsafe fn leap_wait(&mut self, slot: &TaskSlot, thief: usize) -> usize {
        let prev = {
            let own = self.own();
            own.tb.leap_depth += 1;
            // The joined descriptor sits at `top` (the join already
            // popped it); leap-frogged executions spawn on *this* stack,
            // so bump `top` past the awaited descriptor or the nested
            // spawns would overwrite its state word and result.
            own.top += 1;
            own.tb.switch(Category::Lf)
        };
        trace_ev!(self, Leapfrog, thief);
        let mut idle = 0u32;
        let s = loop {
            let s = slot.state.load(Acquire);
            if is_done(s) {
                break s;
            }
            let outcome = if S::LEAPFROG || idle > 100_000 {
                // Without leap-frogging, chains of blocked joins can form
                // a wait-for cycle among workers (the reason Wagner &
                // Calder's leap-frogging exists); after a long quiet wait
                // the non-leapfrog ablation falls back to stealing from
                // the thief as a progress guarantee, which keeps its
                // measured LA time near zero without risking livelock.
                self.try_steal_from(thief, true)
            } else {
                // Plain waiting (ablation): no stealing while blocked.
                StealOutcome::Empty
            };
            match outcome {
                StealOutcome::Executed => idle = 0,
                StealOutcome::Retry => {
                    idle += 1;
                    crate::sync::hint::spin_loop();
                }
                StealOutcome::Empty => {
                    idle += 1;
                    if idle < 64 {
                        crate::sync::hint::spin_loop();
                    } else {
                        // The thief may be descheduled (oversubscribed
                        // host); let it run.
                        crate::sync::thread::yield_now();
                    }
                }
            }
        };
        let own = self.own();
        own.tb.leap_depth -= 1;
        own.top -= 1;
        own.tb.switch(prev);
        s
    }

    // ------------------------------------------------------------------
    // steal
    // ------------------------------------------------------------------

    /// One steal attempt against `victim_idx`; on success the stolen
    /// task is executed to completion on this worker before returning.
    ///
    /// # Safety
    /// Must run on the thread owning this handle's worker.
    pub(crate) unsafe fn try_steal_from(&mut self, victim_idx: usize, leap: bool) -> StealOutcome {
        debug_assert_ne!(victim_idx, self.idx);
        let victim: &Worker = &self.pool().workers[victim_idx];
        trace_ev!(self, StealAttempt, victim_idx);

        let out = if S::SHARED_TOP {
            self.steal_shared_top(victim, victim_idx, leap)
        } else {
            match S::STEAL_SYNC {
                StealSync::NoLock => self.steal_nolock(victim, victim_idx, leap),
                StealSync::LockBase => {
                    self.steal_locked(victim, victim_idx, leap, LockMode::Always)
                }
                StealSync::LockPeek => self.steal_locked(victim, victim_idx, leap, LockMode::Peek),
                StealSync::LockTrylock => {
                    self.steal_locked(victim, victim_idx, leap, LockMode::Trylock)
                }
            }
        };
        if !matches!(out, StealOutcome::Executed) {
            trace_ev!(self, StealFail, victim_idx);
        }
        out
    }

    /// The direct task stack steal (`RTS_steal` in Figure 3).
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    unsafe fn steal_nolock(
        &mut self,
        victim: &Worker,
        victim_idx: usize,
        leap: bool,
    ) -> StealOutcome {
        // Acquire pairs with the previous thief's Release store of
        // `bot = b` (or the owner's restore): it orders that steal's
        // slot writes before our reads of slot `b`.
        let b = victim.bot.load(Acquire);
        if S::PRIVATE_TASKS {
            // Acquire pairs with the owner's Release publication store:
            // observing `np > b` makes the TASK state and closure data
            // of every slot below `np` visible.
            let np = victim.n_public.load(Acquire);
            if b >= np {
                // Nothing public. There may be private work; ask the
                // owner to publish (the trip-wire notification channel
                // also bootstraps publication on a fresh stack).
                // relaxed-ok: advisory trip-wire flag (see try_push).
                victim.publish_request.store(true, Relaxed);
                let own = self.own();
                own.stats.failed_steals += 1;
                own.stats.publish_requests += 1;
                trace_ev!(self, PublishRequest, victim_idx);
                return StealOutcome::Empty;
            }
        }
        if b >= victim.capacity() {
            self.own().stats.failed_steals += 1;
            return StealOutcome::Empty;
        }
        let slot = victim.slot(b);
        let s1 = slot.state.load(Acquire);
        if s1 != TASK {
            self.own().stats.failed_steals += 1;
            return StealOutcome::Empty;
        }
        // relaxed-ok: the failure ordering — a failed CAS acquires
        // nothing and we immediately retry from scratch. The AcqRel
        // success edge pairs with the owner's publication store (task
        // data) and orders our later writes after the acquisition.
        if slot
            .state
            .compare_exchange(TASK, EMPTY, AcqRel, Relaxed)
            .is_err()
        {
            self.own().stats.lost_races += 1;
            return StealOutcome::Retry;
        }
        // §III-A back-off: we may be a delayed thief that acquired a
        // *reincarnation* of the descriptor; validate that `bot` still
        // points here (and, with private tasks, that the descriptor is
        // still public). Both loads are Acquire so the validation
        // observes values at least as fresh as our winning CAS.
        if victim.bot.load(Acquire) != b || (S::PRIVATE_TASKS && victim.n_public.load(Acquire) <= b)
        {
            // Guard: between our CAS and this restore we hold the slot —
            // the only concurrent write is the owner's public-path swap
            // (or private-path store) of EMPTY, which does not change
            // the value we observe.
            check_transition(slot, |s| s == EMPTY, "back-off restore");
            // "Writing back the old value of state is appropriate since
            // the transient value (EMPTY) only makes thieves abort and
            // the joining owner wait." (§III-A)
            slot.state.store(TASK, Release);
            self.own().stats.backoffs += 1;
            trace_ev!(self, Backoff, victim_idx);
            return StealOutcome::Retry;
        }
        // Guard: same exclusive-hold argument as the back-off restore.
        check_transition(slot, |s| s == EMPTY, "STOLEN announcement");
        slot.state.store(stolen(self.idx), Release);
        // Release pairs with the next thief's Acquire load of `bot`,
        // ordering our STOLEN announcement before its probe of slot b+1.
        victim.bot.store(b + 1, Release);
        if S::PRIVATE_TASKS {
            // Trip wire: stealing within `trip_distance` of the public
            // boundary asks the owner for more public tasks.
            // relaxed-ok: heuristic distance check + advisory flag; a
            // stale `n_public` can only mistime the publication request.
            let np = victim.n_public.load(Relaxed);
            if np.saturating_sub(b + 1) < self.trip_distance {
                victim.publish_request.store(true, Relaxed);
                trace_ev!(self, PublishRequest, victim_idx);
            }
        }
        trace_ev!(self, StealSuccess, victim_idx);
        self.execute_stolen(slot, leap);
        StealOutcome::Executed
    }

    /// §IV-C lock-based steal protocols (Figure 4's base/peek/trylock).
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    unsafe fn steal_locked(
        &mut self,
        victim: &Worker,
        victim_idx: usize,
        leap: bool,
        mode: LockMode,
    ) -> StealOutcome {
        if matches!(mode, LockMode::Peek | LockMode::Trylock) {
            // Peek before locking: read the descriptor `bot` points to
            // and lock only when it holds a stealable task.
            let b = victim.bot.load(Acquire);
            if b >= victim.capacity() || victim.slot(b).state.load(Acquire) != TASK {
                self.own().stats.failed_steals += 1;
                return StealOutcome::Empty;
            }
        }
        match mode {
            LockMode::Trylock => {
                if !victim.lock.try_lock() {
                    self.own().stats.lost_races += 1;
                    return StealOutcome::Retry;
                }
            }
            _ => victim.lock.lock(),
        }
        // `bot` is protected by the lock: thieves never back off (§IV-C).
        // relaxed-ok: lock-protected word.
        let b = victim.bot.load(Relaxed);
        if b >= victim.capacity() {
            victim.lock.unlock();
            self.own().stats.failed_steals += 1;
            return StealOutcome::Empty;
        }
        let slot = victim.slot(b);
        if slot.state.load(Acquire) != TASK {
            victim.lock.unlock();
            self.own().stats.failed_steals += 1;
            return StealOutcome::Empty;
        }
        // The owner's join fast path still races with us on the state
        // word (it does not take the lock), so acquire with a CAS.
        // relaxed-ok: failure ordering — a failed CAS acquires nothing.
        if slot
            .state
            .compare_exchange(TASK, EMPTY, AcqRel, Relaxed)
            .is_err()
        {
            victim.lock.unlock();
            self.own().stats.lost_races += 1;
            return StealOutcome::Retry;
        }
        // Guard: we hold the slot (winning CAS) *and* the victim lock.
        check_transition(slot, |s| s == EMPTY, "locked STOLEN announcement");
        slot.state.store(stolen(self.idx), Release);
        // relaxed-ok: lock-protected word.
        victim.bot.store(b + 1, Relaxed);
        victim.lock.unlock();
        trace_ev!(self, StealSuccess, victim_idx);
        self.execute_stolen(slot, leap);
        StealOutcome::Executed
    }

    /// Table II *base* steal: everything under the victim lock, validity
    /// decided by the `top`/`bot` comparison; the state word is only a
    /// completion signal.
    #[cfg_attr(not(feature = "trace"), allow(unused_variables))]
    unsafe fn steal_shared_top(
        &mut self,
        victim: &Worker,
        victim_idx: usize,
        leap: bool,
    ) -> StealOutcome {
        victim.lock.lock();
        // relaxed-ok: lock-protected word.
        let b = victim.bot.load(Relaxed);
        let t = victim.top_shared.load(Acquire);
        if b >= t {
            victim.lock.unlock();
            self.own().stats.failed_steals += 1;
            return StealOutcome::Empty;
        }
        let slot = victim.slot(b);
        // Under the lock the steal end is exclusively ours: mark and go.
        // (The owner observes `bot > k` only under the same lock, by
        // which time STOLEN below is visible.)
        // Guard: in this strategy the state word is only a completion
        // signal — a live slot below the shared `top` must read TASK
        // (every push stores it, and no join path clears it here).
        check_transition(slot, |s| s == TASK, "shared-top STOLEN mark");
        slot.state.store(stolen(self.idx), Release);
        // relaxed-ok: lock-protected word.
        victim.bot.store(b + 1, Relaxed);
        victim.lock.unlock();
        trace_ev!(self, StealSuccess, victim_idx);
        self.execute_stolen(slot, leap);
        StealOutcome::Executed
    }

    /// Runs a freshly stolen task and publishes its completion.
    unsafe fn execute_stolen(&mut self, slot: &TaskSlot, leap: bool) {
        let (prev_cat, saved_span) = {
            let own = self.own();
            if leap {
                own.stats.leap_steals += 1;
            } else {
                own.stats.steals += 1;
            }
            let prev_cat = own.tb.switch(own.tb.app_category());
            let saved_span = if own.span.enabled {
                let s = (own.span.span0, own.span.span_c);
                own.span.span0 = 0;
                own.span.span_c = 0;
                own.span.mark = cycles::now();
                Some(s)
            } else {
                None
            };
            (prev_cat, saved_span)
        };

        let wrapper: RawWrapper = slot.wrapper();
        let ok = wrapper(slot as *const TaskSlot, self as *mut Self as *mut ());

        {
            let own = self.own();
            if let Some((s0, sc)) = saved_span {
                own.span.flush();
                slot.set_span(own.span.span0, own.span.span_c);
                own.span.span0 = s0;
                own.span.span_c = sc;
                own.span.mark = cycles::now();
            }
        }
        // Guard: between our STOLEN announcement and this completion
        // store the only other writer is the joining owner's public-path
        // swap, which consumes our STOLEN marker (leaving EMPTY) and then
        // waits for this store in spin_while_empty / leap_wait. Other
        // thieves' CASes expect TASK and cannot touch the slot. (The
        // EMPTY case was found by the wool-verify slot model: the
        // original guard demanded STOLEN(me) only.)
        let me = stolen(self.idx);
        check_transition(slot, move |s| s == me || s == EMPTY, "completion publish");
        // Publish completion *after* the result and span writes.
        slot.state
            .store(if ok { DONE } else { DONE_PANIC }, Release);
        self.own().tb.switch(prev_cat);
    }

    /// One round of random-victim stealing for an idle worker; returns
    /// true if a task was stolen and executed.
    ///
    /// # Safety
    /// Must run on the thread owning this handle's worker.
    pub(crate) unsafe fn steal_round(&mut self) -> bool {
        let p = self.num_workers();
        if p <= 1 {
            return false;
        }
        let r = self.own().next_rand();
        let mut victim = (r % (p as u64 - 1)) as usize;
        if victim >= self.idx {
            victim += 1;
        }
        matches!(self.try_steal_from(victim, false), StealOutcome::Executed)
    }
}

/// Lock acquisition mode for the §IV-C protocols.
#[derive(Debug, Clone, Copy)]
enum LockMode {
    Always,
    Peek,
    Trylock,
}

/// Whether joins with stolen tasks must protect `bot` with the victim
/// lock under strategy `S`.
#[inline(always)]
fn steal_uses_lock<S: Strategy>() -> bool {
    !matches!(S::STEAL_SYNC, StealSync::NoLock)
}

/// Panic guard: joins (and discards) the pending spawned task if the
/// inline branch of a `fork` unwinds, so the spawned closure's borrows
/// of the unwinding frame are not left live in a thief.
struct JoinGuard<S: Strategy, B: TaskBody<S>> {
    h: *mut WorkerHandle<S>,
    _marker: PhantomData<fn() -> B>,
}

impl<S: Strategy, B: TaskBody<S>> JoinGuard<S, B> {
    fn arm(h: &mut WorkerHandle<S>) -> Self {
        JoinGuard {
            h,
            _marker: PhantomData,
        }
    }

    fn disarm(self) {
        std::mem::forget(self);
    }
}

impl<S: Strategy, B: TaskBody<S>> Drop for JoinGuard<S, B> {
    fn drop(&mut self) {
        // SAFETY: the handle outlives the guard (same stack frame); the
        // pending task is exactly of type `B` (pushed immediately before
        // arming). If the join itself panics we are already unwinding
        // and the process aborts (double panic) — documented behavior.
        unsafe {
            let h = &mut *self.h;
            let _ = h.join_task::<B>(false);
        }
    }
}

/// Panic guard for `for_each_spawn`: joins all still-pending iterations.
struct ForEachGuard<'a, S, F>
where
    S: Strategy,
    F: Fn(&mut WorkerHandle<S>, usize) + Sync,
{
    h: *mut WorkerHandle<S>,
    remaining: usize,
    _marker: PhantomData<&'a F>,
}

impl<'a, S, F> Drop for ForEachGuard<'a, S, F>
where
    S: Strategy,
    F: Fn(&mut WorkerHandle<S>, usize) + Sync,
{
    fn drop(&mut self) {
        // SAFETY: as for JoinGuard; each pending task is a
        // `ForEachTask<'a, F>`.
        unsafe {
            let h = &mut *self.h;
            while self.remaining > 0 {
                self.remaining -= 1;
                let _ = h.join_task::<ForEachTask<'a, F>>(false);
            }
        }
    }
}
