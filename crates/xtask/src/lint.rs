//! The sync-facade lint.
//!
//! Two rules over the scheduler crates (`wool-core`, `wool-serve`,
//! `wool-par`, `wool-verify`):
//!
//! 1. **Facade rule** — `std::sync::atomic` and `std::thread` may appear
//!    only in `sync.rs` (the facade itself). Everything else must go
//!    through `crate::sync` / `wool_core::sync` so that `--cfg loom`
//!    reroutes every synchronization operation into the model checker; a
//!    single stray `std` atomic would silently escape exploration.
//! 2. **Relaxed rule** — in the protocol files (`slot.rs`,
//!    `injector.rs`, `exec.rs`) every `Ordering::Relaxed` must carry a
//!    written justification: a `relaxed-ok` annotation on the same line
//!    or within the ten preceding lines. Relaxed on a protocol word is
//!    where fences quietly go missing; the annotation forces the
//!    happens-before argument to live next to the code.
//!
//! Escapes: lines after a `#[cfg(test)]` marker are exempt (tests may
//! spawn real threads and poke counters), comment lines are exempt, and
//! `// lint-ok: <reason>` on the line silences rule 1.
//!
//! The rules are pure functions over `(file name, content)` — see the
//! unit tests — and `run` is a thin filesystem walk around them.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose `src/` trees are subject to the lint. `wool-loom` is
/// deliberately absent: it *is* the `--cfg loom` backend and implements
/// the facade with real `std` primitives.
const LINTED_CRATES: &[&str] = &["wool-core", "wool-serve", "wool-par", "wool-verify"];

/// Files where every `Relaxed` needs a `relaxed-ok` justification.
const RELAXED_AUDITED_FILES: &[&str] = &["slot.rs", "injector.rs", "exec.rs"];

/// How far above a `Relaxed` use its `relaxed-ok` justification may sit.
const RELAXED_JUSTIFICATION_WINDOW: usize = 10;

#[derive(Debug, PartialEq, Eq)]
pub struct Finding {
    pub line: usize,
    pub message: String,
}

/// Rule 1: raw `std::sync::atomic` / `std::thread` outside the facade.
/// `file_name` is the bare file name (`exec.rs`), used to exempt the
/// facade itself.
pub fn check_facade(file_name: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if file_name == "sync.rs" {
        return findings;
    }
    let mut in_tests = false;
    for (idx, line) in content.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests || trimmed.starts_with("//") || line.contains("lint-ok") {
            continue;
        }
        for needle in ["std::sync::atomic", "std::thread"] {
            if line.contains(needle) {
                findings.push(Finding {
                    line: idx + 1,
                    message: format!(
                        "raw `{needle}` outside the sync facade; use `crate::sync` \
                         (or annotate `// lint-ok: <reason>`)"
                    ),
                });
            }
        }
    }
    findings
}

/// Rule 2: `Relaxed` in a protocol file without a nearby `relaxed-ok`
/// justification.
pub fn check_relaxed(file_name: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    if !RELAXED_AUDITED_FILES.contains(&file_name) {
        return findings;
    }
    let lines: Vec<&str> = content.lines().collect();
    let mut in_tests = false;
    for (idx, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests || trimmed.starts_with("//") || trimmed.starts_with("use ") {
            continue;
        }
        if !line.contains("Relaxed") {
            continue;
        }
        let window_start = idx.saturating_sub(RELAXED_JUSTIFICATION_WINDOW);
        let justified = lines[window_start..=idx]
            .iter()
            .any(|l| l.contains("relaxed-ok"));
        if !justified {
            findings.push(Finding {
                line: idx + 1,
                message: format!(
                    "`Relaxed` on a protocol word without a `relaxed-ok` justification \
                     within {RELAXED_JUSTIFICATION_WINDOW} lines"
                ),
            });
        }
    }
    findings
}

/// Applies both rules to one file.
pub fn check_file(file_name: &str, content: &str) -> Vec<Finding> {
    let mut f = check_facade(file_name, content);
    f.extend(check_relaxed(file_name, content));
    f.sort_by_key(|x| x.line);
    f
}

fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

pub fn run() -> ExitCode {
    let root = workspace_root();
    let mut total = 0usize;
    let mut files = 0usize;
    for krate in LINTED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut paths = Vec::new();
        if let Err(e) = rs_files_under(&src, &mut paths) {
            eprintln!("xtask lint: cannot walk {}: {e}", src.display());
            return ExitCode::FAILURE;
        }
        paths.sort();
        for path in paths {
            let content = match std::fs::read_to_string(&path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("xtask lint: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            files += 1;
            for f in check_file(&name, &content) {
                eprintln!("{}:{}: {}", path.display(), f.line, f.message);
                total += 1;
            }
        }
    }
    if total > 0 {
        eprintln!("xtask lint: {total} finding(s)");
        ExitCode::FAILURE
    } else {
        eprintln!("xtask lint: clean ({files} files)");
        ExitCode::SUCCESS
    }
}

/// The workspace root: parent of this crate's manifest dir, two levels up
/// (`crates/xtask`). Works both under `cargo xtask` and a direct binary
/// invocation from anywhere in the tree.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xtask lives at <root>/crates/xtask")
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_flags_raw_atomic_import() {
        let src = "use std::sync::atomic::AtomicUsize;\nfn f() {}\n";
        let f = check_facade("exec.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn facade_flags_raw_thread_spawn() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(check_facade("pool.rs", src).len(), 1);
    }

    #[test]
    fn facade_exempts_sync_rs_comments_tests_and_lint_ok() {
        let in_sync = "pub use std::sync::atomic::AtomicUsize;\n";
        assert!(check_facade("sync.rs", in_sync).is_empty());
        let comment = "// mirrors std::thread::JoinHandle\n/// like std::sync::atomic\n";
        assert!(check_facade("handle.rs", comment).is_empty());
        let tests = "#[cfg(test)]\nmod tests {\n  use std::thread;\n  fn t() { std::thread::scope(|_| {}); }\n}\n";
        assert!(check_facade("injector.rs", tests).is_empty());
        let ok =
            "let t = std::thread::available_parallelism(); // lint-ok: capacity probe, not sync\n";
        assert!(check_facade("config.rs", ok).is_empty());
    }

    #[test]
    fn relaxed_needs_nearby_justification() {
        let bare = "fn f(a: &A) { a.x.load(Ordering::Relaxed); }\n";
        assert_eq!(check_relaxed("slot.rs", bare).len(), 1);
        let justified =
            "// relaxed-ok: advisory statistic\nfn f(a: &A) { a.x.load(Ordering::Relaxed); }\n";
        assert!(check_relaxed("slot.rs", justified).is_empty());
        let inline = "a.x.load(Ordering::Relaxed); // relaxed-ok: value re-checked under lock\n";
        assert!(check_relaxed("injector.rs", inline).is_empty());
    }

    #[test]
    fn relaxed_window_is_bounded() {
        let far = format!(
            "// relaxed-ok: too far away\n{}a.x.load(Ordering::Relaxed);\n",
            "\n".repeat(RELAXED_JUSTIFICATION_WINDOW + 1)
        );
        assert_eq!(check_relaxed("exec.rs", &far).len(), 1);
    }

    #[test]
    fn relaxed_rule_scoped_to_protocol_files() {
        let bare = "a.x.load(Ordering::Relaxed);\n";
        assert!(check_relaxed("stats.rs", bare).is_empty());
        let uses = "use std::sync::atomic::Ordering::Relaxed;\n";
        assert!(check_relaxed("slot.rs", uses).is_empty());
        let tests = "#[cfg(test)]\nmod tests { fn t(a: &A) { a.x.load(Ordering::Relaxed); } }\n";
        assert!(check_relaxed("slot.rs", tests).is_empty());
    }
}
