//! Repo automation (`cargo xtask <command>`).
//!
//! * `lint` — the sync-facade lint: fails the build when scheduler code
//!   bypasses `wool_core::sync` or uses an unjustified `Relaxed`
//!   ordering on a protocol word. Pure text analysis, no nightly needed.
//! * `loom`— runs the exhaustive model suite
//!   (`RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`).
//! * `miri` — runs the curated Miri subset (needs a nightly toolchain
//!   with the `miri` component; prints how to get one if absent).
//! * `tsan` — builds and runs the curated test subset under
//!   ThreadSanitizer (needs nightly + `rust-src`).
//!
//! See `docs/VERIFICATION.md` for what each layer proves.

mod lint;

use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint::run(),
        Some("loom") => run_loom(),
        Some("miri") => run_miri(),
        Some("tsan") => run_tsan(),
        other => {
            eprintln!("usage: cargo xtask <lint|loom|miri|tsan>");
            if let Some(cmd) = other {
                eprintln!("unknown command: {cmd}");
            }
            ExitCode::FAILURE
        }
    }
}

/// Runs `cmd`, inheriting stdio; maps spawn failure and non-zero exit to
/// a failing exit code.
fn exec(mut cmd: Command) -> ExitCode {
    eprintln!("xtask: running {cmd:?}");
    match cmd.status() {
        Ok(st) if st.success() => ExitCode::SUCCESS,
        Ok(st) => {
            eprintln!("xtask: command failed with {st}");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("xtask: failed to spawn {cmd:?}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// True when `cargo <args>` exits successfully with output suppressed —
/// used to probe for optional toolchain pieces before committing to a run.
fn cargo_probe(args: &[&str]) -> bool {
    Command::new("cargo")
        .args(args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

fn run_loom() -> ExitCode {
    let mut cmd = Command::new("cargo");
    cmd.args(["test", "-p", "wool-verify", "--release"]);
    // Append to any ambient RUSTFLAGS rather than clobbering them.
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !flags.contains("--cfg loom") {
        if !flags.is_empty() {
            flags.push(' ');
        }
        flags.push_str("--cfg loom");
    }
    cmd.env("RUSTFLAGS", flags);
    exec(cmd)
}

/// The Miri subset: single- and dual-thread protocol unit tests plus the
/// wool-verify sequential models. Excludes the stress tests (thousands
/// of iterations are impractical under the interpreter).
fn run_miri() -> ExitCode {
    if !cargo_probe(&["+nightly", "miri", "--version"]) {
        eprintln!(
            "xtask: Miri is unavailable. It needs a nightly toolchain with the\n\
             `miri` component:  rustup toolchain install nightly --component miri\n\
             The CI `miri` job runs this automatically; locally this exits with\n\
             an error rather than silently passing."
        );
        return ExitCode::FAILURE;
    }
    let mut cmd = Command::new("cargo");
    cmd.args([
        "+nightly",
        "miri",
        "test",
        "-p",
        "wool-core",
        "--lib",
        "--",
        "slot::",
        "injector::",
        "spinlock::",
        "--skip",
        "concurrent_producers_and_consumers_lose_nothing",
        "--skip",
        "contended_try_lock_admits_one_holder",
    ]);
    let first = exec(cmd);
    if first != ExitCode::SUCCESS {
        return first;
    }
    let mut cmd = Command::new("cargo");
    cmd.args(["+nightly", "miri", "test", "-p", "wool-verify", "--lib"]);
    exec(cmd)
}

/// The ThreadSanitizer subset: the genuinely concurrent protocol tests,
/// built with `-Zbuild-std` so std itself is instrumented.
fn run_tsan() -> ExitCode {
    if !cargo_probe(&["+nightly", "--version"]) {
        eprintln!(
            "xtask: no nightly toolchain; ThreadSanitizer needs one:\n\
             rustup toolchain install nightly --component rust-src"
        );
        return ExitCode::FAILURE;
    }
    let target = host_target();
    let mut cmd = Command::new("cargo");
    cmd.args([
        "+nightly",
        "test",
        "-Zbuild-std",
        "--target",
        &target,
        "-p",
        "wool-core",
        "--lib",
        "--release",
        "--",
        "slot::",
        "injector::",
        "spinlock::",
    ]);
    let mut flags = std::env::var("RUSTFLAGS").unwrap_or_default();
    if !flags.is_empty() {
        flags.push(' ');
    }
    flags.push_str("-Zsanitizer=thread");
    cmd.env("RUSTFLAGS", flags);
    exec(cmd)
}

/// Host triple from `rustc -vV` (TSan requires an explicit `--target` so
/// that RUSTFLAGS do not leak into build scripts).
fn host_target() -> String {
    let out = Command::new("rustc")
        .args(["-vV"])
        .output()
        .expect("rustc -vV");
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
        .expect("host line in rustc -vV")
}
