//! Model-aware drop-ins for `std::sync::atomic`.
//!
//! Inside a [`crate::model`] every operation is a scheduling point; the
//! checker serializes operations through its token hand-off, so the
//! plain `UnsafeCell` accesses below are data-race-free. `Ordering`
//! arguments are accepted for source compatibility but the model checks
//! the sequentially consistent semantics regardless (see the crate docs
//! for why that is the deliberate trade-off). Outside a model the types
//! degrade to direct single-threaded cell access.

/// Atomic shims plus [`fence`]; mirrors `std::sync::atomic`.
pub mod atomic {
    use crate::rt;
    use std::cell::UnsafeCell;

    pub use std::sync::atomic::Ordering;

    /// A scheduling point with no data effect: under the model's
    /// sequentially consistent semantics a fence adds no extra ordering,
    /// but it still participates in schedule exploration.
    pub fn fence(_order: Ordering) {
        rt::op(false, || ());
    }

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            /// Model-checked counterpart of the std atomic of the same
            /// name. Operations are scheduling points inside a model.
            #[derive(Default)]
            pub struct $name {
                v: UnsafeCell<$ty>,
            }

            // SAFETY: inside a model, accesses are serialized by the
            // scheduler token (one runnable thread at a time, hand-off
            // through a mutex); outside a model the type is only used
            // single-threaded.
            unsafe impl Send for $name {}
            unsafe impl Sync for $name {}

            impl $name {
                /// Creates a new atomic (const, like std's).
                pub const fn new(v: $ty) -> Self {
                    $name {
                        v: UnsafeCell::new(v),
                    }
                }

                /// Model-checked load (a scheduling point inside a model).
                pub fn load(&self, _o: Ordering) -> $ty {
                    rt::op(false, || unsafe { *self.v.get() })
                }

                /// Model-checked store (a write-class scheduling point).
                pub fn store(&self, val: $ty, _o: Ordering) {
                    rt::op(true, || unsafe { *self.v.get() = val })
                }

                /// Model-checked swap.
                pub fn swap(&self, val: $ty, _o: Ordering) -> $ty {
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        std::mem::replace(&mut *p, val)
                    })
                }

                /// Model-checked compare-and-exchange; an RMW is a write-class
                /// scheduling point even on failure.
                pub fn compare_exchange(
                    &self,
                    expect: $ty,
                    new: $ty,
                    _ok: Ordering,
                    _err: Ordering,
                ) -> Result<$ty, $ty> {
                    // An RMW is write-class even when it fails: treating
                    // it so only wakes spinners early, never misses.
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        if *p == expect {
                            *p = new;
                            Ok(expect)
                        } else {
                            Err(*p)
                        }
                    })
                }

                /// Modeled as the strong variant: the model never injects
                /// spurious failures (documented limitation).
                pub fn compare_exchange_weak(
                    &self,
                    expect: $ty,
                    new: $ty,
                    ok: Ordering,
                    err: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(expect, new, ok, err)
                }

                /// Model-checked fetch-add (wrapping).
                pub fn fetch_add(&self, val: $ty, _o: Ordering) -> $ty {
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        let old = *p;
                        *p = old.wrapping_add(val);
                        old
                    })
                }

                /// Model-checked fetch-sub (wrapping).
                pub fn fetch_sub(&self, val: $ty, _o: Ordering) -> $ty {
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        let old = *p;
                        *p = old.wrapping_sub(val);
                        old
                    })
                }

                /// Model-checked fetch-or.
                pub fn fetch_or(&self, val: $ty, _o: Ordering) -> $ty {
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        let old = *p;
                        *p = old | val;
                        old
                    })
                }

                /// Model-checked fetch-and.
                pub fn fetch_and(&self, val: $ty, _o: Ordering) -> $ty {
                    rt::op(true, || unsafe {
                        let p = self.v.get();
                        let old = *p;
                        *p = old & val;
                        old
                    })
                }

                /// Non-atomic read through exclusive access (like std's).
                pub fn get_mut(&mut self) -> &mut $ty {
                    self.v.get_mut()
                }

                /// Consumes the atomic, returning the value.
                pub fn into_inner(self) -> $ty {
                    self.v.into_inner()
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    // Debug formatting must not perturb the schedule:
                    // read the cell directly.
                    write!(f, "{:?}", unsafe { *self.v.get() })
                }
            }
        };
    }

    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicU32, u32);
    int_atomic!(AtomicU8, u8);
    int_atomic!(AtomicI64, i64);

    /// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
    #[derive(Default)]
    pub struct AtomicBool {
        v: UnsafeCell<bool>,
    }

    // SAFETY: as for the integer atomics above.
    unsafe impl Send for AtomicBool {}
    unsafe impl Sync for AtomicBool {}

    impl AtomicBool {
        /// Creates a new atomic flag (const, like std's).
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                v: UnsafeCell::new(v),
            }
        }

        /// Model-checked load (a scheduling point inside a model).
        pub fn load(&self, _o: Ordering) -> bool {
            rt::op(false, || unsafe { *self.v.get() })
        }

        /// Model-checked store (a write-class scheduling point).
        pub fn store(&self, val: bool, _o: Ordering) {
            rt::op(true, || unsafe { *self.v.get() = val })
        }

        /// Model-checked swap.
        pub fn swap(&self, val: bool, _o: Ordering) -> bool {
            rt::op(true, || unsafe {
                let p = self.v.get();
                std::mem::replace(&mut *p, val)
            })
        }

        /// Model-checked compare-and-exchange; an RMW is a write-class
        /// scheduling point even on failure.
        pub fn compare_exchange(
            &self,
            expect: bool,
            new: bool,
            _ok: Ordering,
            _err: Ordering,
        ) -> Result<bool, bool> {
            rt::op(true, || unsafe {
                let p = self.v.get();
                if *p == expect {
                    *p = new;
                    Ok(expect)
                } else {
                    Err(*p)
                }
            })
        }

        /// Modeled as the strong variant (no spurious failures).
        pub fn compare_exchange_weak(
            &self,
            expect: bool,
            new: bool,
            ok: Ordering,
            err: Ordering,
        ) -> Result<bool, bool> {
            self.compare_exchange(expect, new, ok, err)
        }

        /// Model-checked fetch-or.
        pub fn fetch_or(&self, val: bool, _o: Ordering) -> bool {
            rt::op(true, || unsafe {
                let p = self.v.get();
                let old = *p;
                *p = old | val;
                old
            })
        }

        /// Model-checked fetch-and.
        pub fn fetch_and(&self, val: bool, _o: Ordering) -> bool {
            rt::op(true, || unsafe {
                let p = self.v.get();
                let old = *p;
                *p = old & val;
                old
            })
        }

        /// Non-atomic read through exclusive access (like std's).
        pub fn get_mut(&mut self) -> &mut bool {
            self.v.get_mut()
        }

        /// Consumes the atomic, returning the value.
        pub fn into_inner(self) -> bool {
            self.v.into_inner()
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{:?}", unsafe { *self.v.get() })
        }
    }
}
