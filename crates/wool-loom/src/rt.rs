//! The exploration runtime: a cooperative scheduler over real OS threads
//! that enumerates every interleaving of model operations.
//!
//! # How it works
//!
//! A model execution runs the user closure plus any threads it spawns as
//! ordinary OS threads, but only **one of them is ever runnable at a
//! time**: a token (the `cur` field) names the thread allowed to make
//! progress, everyone else blocks on a condvar. Every shared-memory
//! operation (atomic load/store/RMW, fence, spawn, park, unpark, join,
//! yield) ends with a call to [`Rt::switch`], which picks the thread that
//! performs the *next* operation. Each such scheduling decision with more
//! than one enabled thread is a branch point; the explorer re-runs the
//! closure once per path through the resulting decision tree (depth-first
//! with replay), so every interleaving of model operations is visited
//! exactly once.
//!
//! Because operations are totally ordered by the token hand-off, the
//! model checks the **sequentially consistent** semantics of the program:
//! it explores all interleavings but not weaker-memory reorderings. That
//! is the useful half of what loom proves; see `docs/VERIFICATION.md` for
//! what this does and does not cover.
//!
//! # Spin loops
//!
//! A thread that calls [`crate::hint::spin_loop`] or
//! [`crate::thread::yield_now`] declares "I re-checked shared state and
//! cannot progress". If nothing has been written since the thread's last
//! operation, re-running it would read the same values and land on the
//! same spin — an identical global state — so the scheduler parks it as
//! `Spinning` and does not consider it again until some thread performs a
//! write. This prunes the otherwise-infinite schedules in which a spinner
//! re-checks an unchanged condition, and it is what makes models with
//! spin-wait loops (the slot join, the spinlock) terminate. The contract:
//! facade users only call `spin_loop`/`yield_now` from condition re-check
//! loops, which holds for every call site in wool-core and wool-serve.
//!
//! # Failure detection
//!
//! * assertion failure in any model thread — reported with the schedule;
//! * deadlock — every live thread is parked or joining;
//! * lost wakeup — `park` with no pending unpark never returns, so a
//!   missed notification becomes a detectable deadlock (`park_timeout`
//!   is modeled as `park`: the model pretends the timeout never fires);
//! * livelock — every live thread is spinning on state no one can
//!   change, or a single execution exceeds `max_steps` operations.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Exploration limits. The default is exhaustive (no preemption bound).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of *preemptions* (scheduling a different thread
    /// while the current one could continue) per execution. `None`
    /// explores every interleaving; small bounds (2–4) retain almost all
    /// bug-finding power (CHESS-style) while taming 3+-thread models.
    pub preemption_bound: Option<u32>,
    /// Abort an execution that exceeds this many operations (livelock
    /// backstop).
    pub max_steps: u64,
    /// Cap on threads alive at once in one execution (model sanity).
    pub max_threads: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            preemption_bound: None,
            max_steps: 100_000,
            max_threads: 8,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ThState {
    /// Eligible to be scheduled.
    Runnable,
    /// Declared a fruitless re-check; sleeps until any thread writes.
    Spinning,
    /// In `park` with no token; sleeps until `unpark`.
    Parked,
    /// In `JoinHandle::join` on the given thread id.
    Joining(usize),
    Finished,
}

struct Th {
    state: ThState,
    /// Pending `unpark` delivered before the matching `park`.
    unpark_token: bool,
    /// Global write epoch observed at this thread's last operation; a
    /// spin with `obs == write_epoch` has provably seen the latest state.
    obs: u64,
}

/// One scheduling decision: the enabled alternatives and which one this
/// execution takes. The explorer advances `idx` odometer-style.
struct PathEntry {
    alts: Vec<usize>,
    idx: usize,
}

struct Inner {
    threads: Vec<Th>,
    /// Thread id holding the token, or `usize::MAX` once all finished.
    cur: usize,
    /// Index of the next scheduling decision within `path`.
    switch_idx: usize,
    /// Monotone counter bumped by every write-class operation.
    write_epoch: u64,
    preemptions: u32,
    steps: u64,
    /// Set on failure: all threads unwind and the execution is torn down.
    aborting: bool,
    failure: Option<String>,
    /// The DFS position: persists across executions of one model.
    path: Vec<PathEntry>,
    /// OS handles of threads spawned in the current execution.
    handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Rt {
    inner: Mutex<Inner>,
    cv: Condvar,
    cfg: Config,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn current() -> Option<(Arc<Rt>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

fn set_current(v: Option<(Arc<Rt>, usize)>) {
    CURRENT.with(|c| *c.borrow_mut() = v);
}

/// Sentinel payload used to unwind model threads when the execution is
/// being torn down; never reported as a failure itself.
struct AbortToken;

fn abort_unwind() -> ! {
    // resume_unwind does not run the panic hook: teardown is silent.
    std::panic::resume_unwind(Box::new(AbortToken))
}

fn panic_msg(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

enum Pick {
    /// Token granted to some thread; caller waits for its turn (unless
    /// it is finished).
    Granted,
    /// Every thread finished: the execution is complete.
    AllDone,
}

impl Rt {
    fn new(cfg: Config) -> Self {
        Rt {
            inner: Mutex::new(Inner {
                threads: Vec::new(),
                cur: 0,
                switch_idx: 0,
                write_epoch: 0,
                preemptions: 0,
                steps: 0,
                aborting: false,
                failure: None,
                path: Vec::new(),
                handles: Vec::new(),
            }),
            cv: Condvar::new(),
            cfg,
        }
    }

    fn begin_execution(&self) {
        let mut g = self.inner.lock().unwrap();
        debug_assert!(g.handles.is_empty(), "handles not drained");
        g.threads.clear();
        g.threads.push(Th {
            state: ThState::Runnable,
            unpark_token: false,
            obs: 0,
        });
        g.cur = 0;
        g.switch_idx = 0;
        g.write_epoch = 0;
        g.preemptions = 0;
        g.steps = 0;
        g.aborting = false;
    }

    /// Records a failure (first one wins) and begins teardown.
    fn fail(&self, g: &mut Inner, msg: String) {
        if g.failure.is_none() {
            let sched: Vec<usize> = g.path.iter().map(|e| e.alts[e.idx]).collect();
            g.failure = Some(format!("{msg}\n  schedule (thread ids): {sched:?}"));
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    /// Chooses who runs next. Returns the decision or tears the
    /// execution down on deadlock/livelock.
    fn pick(&self, g: &mut Inner, me: usize) -> Result<Pick, ()> {
        let mut runnable: Vec<usize> = g
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.state == ThState::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            if g.threads.iter().all(|t| t.state == ThState::Finished) {
                g.cur = usize::MAX;
                self.cv.notify_all();
                return Ok(Pick::AllDone);
            }
            let msg = if g.threads.iter().any(|t| t.state == ThState::Spinning) {
                "livelock: every live thread is spinning on a condition no other thread can change"
            } else {
                "deadlock: every live thread is parked or joining (lost wakeup?)"
            };
            self.fail(g, msg.to_string());
            return Err(());
        }
        // Put the current thread first: the first DFS branch then follows
        // sequential execution, and the preemption bound (when set) is
        // expressed as "truncate to the no-switch choice".
        if let Some(p) = runnable.iter().position(|&t| t == me) {
            runnable.remove(p);
            runnable.insert(0, me);
        }
        let me_runnable = runnable.first() == Some(&me);
        if let Some(bound) = self.cfg.preemption_bound {
            if me_runnable && g.preemptions >= bound {
                runnable.truncate(1);
            }
        }
        let k = g.switch_idx;
        g.switch_idx += 1;
        if k == g.path.len() {
            g.path.push(PathEntry {
                alts: runnable,
                idx: 0,
            });
        } else {
            assert_eq!(
                g.path[k].alts, runnable,
                "nondeterministic model: enabled-thread set diverged on replay \
                 (model closures must not branch on anything outside model state)"
            );
        }
        let e = &g.path[k];
        let chosen = e.alts[e.idx];
        if me_runnable && chosen != me {
            g.preemptions += 1;
        }
        g.cur = chosen;
        self.cv.notify_all();
        Ok(Pick::Granted)
    }

    /// The single scheduling point. Caller must hold the token.
    /// `new_state` computes the caller's next state under the lock;
    /// `wrote` marks operations that may change another thread's spin or
    /// park condition (stores, RMWs, spawn, unpark).
    fn switch(&self, me: usize, wrote: bool, new_state: impl FnOnce(&mut Inner) -> ThState) {
        let mut g = self.inner.lock().unwrap();
        if g.aborting {
            drop(g);
            abort_unwind();
        }
        debug_assert_eq!(g.cur, me, "operation from a thread not holding the token");
        g.steps += 1;
        if g.steps > self.cfg.max_steps {
            let max = self.cfg.max_steps;
            self.fail(
                &mut g,
                format!("livelock: execution exceeded {max} operations"),
            );
            drop(g);
            abort_unwind();
        }
        if wrote {
            g.write_epoch += 1;
        }
        let st = new_state(&mut g);
        g.threads[me].obs = g.write_epoch;
        g.threads[me].state = st;
        if wrote {
            for t in g.threads.iter_mut() {
                if t.state == ThState::Spinning {
                    t.state = ThState::Runnable;
                }
            }
        }
        match self.pick(&mut g, me) {
            Err(()) | Ok(Pick::AllDone) => {
                drop(g);
                abort_unwind();
            }
            Ok(Pick::Granted) => {}
        }
        while g.cur != me && !g.aborting {
            g = self.cv.wait(g).unwrap();
        }
        if g.aborting {
            drop(g);
            abort_unwind();
        }
        debug_assert_eq!(g.threads[me].state, ThState::Runnable);
    }

    /// Marks `tid` finished (normal return or real panic), wakes its
    /// joiners, and hands the token onward. Safe to call during abort.
    fn retire(&self, tid: usize, panicked: Option<String>) {
        let mut g = self.inner.lock().unwrap();
        if let Some(msg) = panicked {
            self.fail(&mut g, format!("model thread {tid} panicked: {msg}"));
        }
        g.threads[tid].state = ThState::Finished;
        for t in g.threads.iter_mut() {
            if t.state == ThState::Joining(tid) {
                t.state = ThState::Runnable;
            }
        }
        if g.aborting {
            self.cv.notify_all();
            return;
        }
        // A finishing thread's completion can satisfy join conditions
        // (handled above) but also counts as progress for spinners
        // observing e.g. a flag the thread wrote earlier plus its exit.
        let _ = self.pick(&mut g, tid);
        // Granted, AllDone, or failure: in every case the retiring thread
        // just leaves; pick() already notified whoever needs to know.
    }

    fn wait_all_finished(&self) {
        let mut g = self.inner.lock().unwrap();
        while !g.aborting && !g.threads.iter().all(|t| t.state == ThState::Finished) {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Runs one model operation's side effect under the runtime lock,
    /// then takes the scheduling point. The lock around `f` serializes
    /// it against teardown operations (see [`op`]'s panicking path) —
    /// during an abort, unwinding threads run `Drop` impls that may
    /// touch model atomics concurrently with the token holder.
    fn execute_op<R>(&self, me: usize, wrote: bool, f: impl FnOnce() -> R) -> R {
        let g = self.inner.lock().unwrap();
        let r = f();
        drop(g);
        self.switch(me, wrote, |_| ThState::Runnable);
        r
    }

    /// The unwind-safe operation path: runs `f` under the lock with no
    /// scheduling point and no abort unwind (unwinding again inside a
    /// `Drop` during a panic would abort the process). Write-class
    /// operations still bump the epoch and wake spinners so that e.g. a
    /// lock released by a panicking critical section (`SpinLock::with`)
    /// is observed by contenders once the panic is caught.
    fn panicking_op<R>(&self, wrote: bool, f: impl FnOnce() -> R) -> R {
        let mut g = self.inner.lock().unwrap();
        let r = f();
        if wrote {
            g.write_epoch += 1;
            for t in g.threads.iter_mut() {
                if t.state == ThState::Spinning {
                    t.state = ThState::Runnable;
                }
            }
            self.cv.notify_all();
        }
        r
    }

    /// Odometer step over the decision tree: advance the deepest
    /// non-exhausted decision, dropping exhausted suffixes. Returns false
    /// when the whole tree has been explored.
    fn advance_path(&self) -> bool {
        let mut g = self.inner.lock().unwrap();
        while let Some(e) = g.path.last_mut() {
            if e.idx + 1 < e.alts.len() {
                e.idx += 1;
                return true;
            }
            g.path.pop();
        }
        false
    }
}

// ---------------------------------------------------------------------
// Operation layer: what the atomic types and thread shims call into.
// ---------------------------------------------------------------------

/// Runs `f` as one model operation. Outside a model the closure runs
/// directly (plain shared-memory access, single-threaded use only).
///
/// Soundness: only the token holder ever executes between switches, and
/// `f` itself runs under the runtime lock, so it has exclusive access to
/// all model state even while other threads run teardown `Drop` code;
/// the lock hand-off establishes happens-before between consecutive
/// operations of different threads.
///
/// When the calling thread is already unwinding (a caught model panic,
/// or abort teardown), the operation executes without a scheduling
/// point: unwinding again from inside a `Drop` would abort the process.
pub(crate) fn op<R>(wrote: bool, f: impl FnOnce() -> R) -> R {
    match current() {
        None => f(),
        Some((rt, me)) => {
            if std::thread::panicking() {
                rt.panicking_op(wrote, f)
            } else {
                rt.execute_op(me, wrote, f)
            }
        }
    }
}

/// A condition-re-check yield: parks the thread as `Spinning` unless a
/// write happened since its last operation (in which case the re-check
/// may newly succeed and the thread stays runnable).
pub(crate) fn spin() {
    if std::thread::panicking() {
        return;
    }
    match current() {
        None => std::hint::spin_loop(),
        Some((rt, me)) => rt.switch(me, false, |g| {
            if g.write_epoch > g.threads[me].obs {
                ThState::Runnable
            } else {
                ThState::Spinning
            }
        }),
    }
}

pub(crate) fn park() {
    if std::thread::panicking() {
        // Never block an unwinding thread; teardown must finish.
        return;
    }
    match current() {
        None => std::thread::park(),
        Some((rt, me)) => rt.switch(me, false, |g| {
            let th = &mut g.threads[me];
            if th.unpark_token {
                th.unpark_token = false;
                ThState::Runnable
            } else {
                ThState::Parked
            }
        }),
    }
}

/// Unparks model thread `tid`. Must be called from within the same model
/// execution (the runtime is resolved through the caller's context).
pub(crate) fn unpark(tid: usize) {
    if let Some((rt, me)) = current() {
        if std::thread::panicking() {
            // Unwind-safe path: deliver the wakeup under the lock with no
            // scheduling point (unwinding inside a `Drop` would abort).
            let mut g = rt.inner.lock().unwrap();
            match g.threads[tid].state {
                ThState::Parked => g.threads[tid].state = ThState::Runnable,
                ThState::Finished => {}
                _ => g.threads[tid].unpark_token = true,
            }
            g.write_epoch += 1;
            for t in g.threads.iter_mut() {
                if t.state == ThState::Spinning {
                    t.state = ThState::Runnable;
                }
            }
            rt.cv.notify_all();
            return;
        }
        rt.switch(me, true, |g| {
            match g.threads[tid].state {
                ThState::Parked => g.threads[tid].state = ThState::Runnable,
                ThState::Finished => {}
                _ => g.threads[tid].unpark_token = true,
            }
            ThState::Runnable
        });
    }
}

/// Blocks until model thread `tid` finishes.
pub(crate) fn join_wait(tid: usize) {
    if std::thread::panicking() {
        // Teardown: never block an unwinding thread on another's exit.
        return;
    }
    let (rt, me) = current().expect("wool-loom: JoinHandle::join outside a model");
    loop {
        let mut done = false;
        rt.switch(me, false, |g| {
            if g.threads[tid].state == ThState::Finished {
                done = true;
                ThState::Runnable
            } else {
                ThState::Joining(tid)
            }
        });
        if done {
            return;
        }
    }
}

pub(crate) fn is_finished(tid: usize) -> bool {
    let (rt, _) = current().expect("wool-loom: thread query outside a model");
    let g = rt.inner.lock().unwrap();
    g.threads[tid].state == ThState::Finished
}

/// Registers a new model thread and hands back its id plus the runtime.
pub(crate) fn register_thread() -> (Arc<Rt>, usize) {
    let (rt, _) = current().expect("wool-loom: thread::spawn outside a model");
    let tid = {
        let mut g = rt.inner.lock().unwrap();
        let tid = g.threads.len();
        assert!(
            tid < rt.cfg.max_threads,
            "model spawned more than max_threads ({}) threads",
            rt.cfg.max_threads
        );
        let obs = g.write_epoch;
        g.threads.push(Th {
            state: ThState::Runnable,
            unpark_token: false,
            obs,
        });
        tid
    };
    (rt, tid)
}

/// Body wrapper for a spawned model thread's OS thread.
pub(crate) fn run_spawned(rt: Arc<Rt>, tid: usize, body: impl FnOnce()) {
    set_current(Some((rt.clone(), tid)));
    // Wait to be scheduled for the first time. On abort, fall through:
    // the body's first operation (if any) unwinds via the abort check.
    {
        let mut g = rt.inner.lock().unwrap();
        while g.cur != tid && !g.aborting {
            g = rt.cv.wait(g).unwrap();
        }
    }
    let out = catch_unwind(AssertUnwindSafe(body));
    match out {
        Ok(()) => rt.retire(tid, None),
        Err(p) => {
            if p.downcast_ref::<AbortToken>().is_some() {
                rt.retire(tid, None);
            } else {
                rt.retire(tid, Some(panic_msg(&*p)));
            }
        }
    }
    set_current(None);
}

/// The spawner's side: store the OS handle and take a scheduling point
/// (the child becoming runnable is a visible event).
pub(crate) fn after_spawn(rt: &Arc<Rt>, me: usize, handle: std::thread::JoinHandle<()>) {
    rt.inner.lock().unwrap().handles.push(handle);
    rt.switch(me, true, |_| ThState::Runnable);
}

pub(crate) fn current_tid() -> Option<usize> {
    current().map(|(_, tid)| tid)
}

// ---------------------------------------------------------------------
// The explorer entry point.
// ---------------------------------------------------------------------

/// Exhaustively checks every interleaving of the model closure.
///
/// Re-runs `f` once per schedule through the decision tree; panics with
/// the failing schedule if any execution fails an assertion, deadlocks,
/// or livelocks. See the module docs for semantics and limitations.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    model_config(Config::default(), f)
}

/// [`model`] with explicit exploration limits (preemption bound, step
/// cap). Prefer a small preemption bound for models with three or more
/// threads.
pub fn model_config<F>(cfg: Config, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current().is_none(),
        "wool-loom: model() must not be nested inside another model"
    );
    let rt = Arc::new(Rt::new(cfg));
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        rt.begin_execution();
        set_current(Some((rt.clone(), 0)));
        let out = catch_unwind(AssertUnwindSafe(&f));
        match out {
            Ok(()) => rt.retire(0, None),
            Err(p) => {
                if p.downcast_ref::<AbortToken>().is_some() {
                    rt.retire(0, None);
                } else {
                    rt.retire(0, Some(panic_msg(&*p)));
                }
            }
        }
        rt.wait_all_finished();
        set_current(None);
        let handles = std::mem::take(&mut rt.inner.lock().unwrap().handles);
        for h in handles {
            let _ = h.join();
        }
        let failure = rt.inner.lock().unwrap().failure.take();
        if let Some(msg) = failure {
            panic!("wool-loom: model failed on execution {executions}: {msg}");
        }
        if !rt.advance_path() {
            break;
        }
    }
}
