//! Model-aware drop-in for `std::hint::spin_loop`.

/// Declares a fruitless condition re-check: the scheduler parks the
/// caller until some other thread performs a write. Only call from spin
/// loops that re-check shared state each iteration (the contract every
/// wool-core call site satisfies).
pub fn spin_loop() {
    crate::rt::spin();
}
