//! Model-aware drop-ins for the `std::thread` surface wool uses.
//!
//! Spawned closures run on real OS threads but make progress only when
//! the model scheduler grants them the token. `park_timeout` is modeled
//! as `park` without a timeout: the model pretends the timeout never
//! fires, so a lost wakeup shows up as a detectable deadlock instead of
//! being silently papered over by the backstop.

use crate::rt;
use std::any::Any;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Mirror of `std::thread::Result`.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Handle to a model thread, usable to `unpark` it (mirror of
/// `std::thread::Thread`).
#[derive(Clone, Debug)]
pub struct Thread {
    tid: usize,
}

impl Thread {
    /// Wakes the thread from `park` (or stores the token for a future
    /// `park`). Must be called from within the same model execution.
    pub fn unpark(&self) {
        rt::unpark(self.tid);
    }
}

/// The current model thread's handle.
pub fn current() -> Thread {
    Thread {
        tid: rt::current_tid().expect("wool-loom: thread::current outside a model"),
    }
}

/// Handle to a spawned model thread (mirror of `std::thread::JoinHandle`).
pub struct JoinHandle<T> {
    tid: usize,
    result: Arc<Mutex<Option<T>>>,
    thread: Thread,
}

impl<T> JoinHandle<T> {
    /// Blocks (in model time) until the thread finishes.
    ///
    /// A panic in the child is reported by the model checker itself (the
    /// execution is failed), so unlike std the `Err` arm is effectively
    /// unreachable; it is kept for API fidelity.
    pub fn join(self) -> Result<T> {
        rt::join_wait(self.tid);
        match self.result.lock().unwrap().take() {
            Some(v) => Ok(v),
            None => Err(Box::new("wool-loom: joined thread did not produce a value")),
        }
    }

    /// The [`Thread`] handle of the spawned thread.
    pub fn thread(&self) -> &Thread {
        &self.thread
    }

    /// Whether the spawned thread has finished.
    pub fn is_finished(&self) -> bool {
        rt::is_finished(self.tid)
    }
}

/// Spawns a model thread. Only callable inside [`crate::model`].
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    Builder::new().spawn(f).expect("model spawn failed")
}

/// Mirror of `std::thread::Builder` (name and stack size are accepted
/// and ignored — model threads use small bounded programs).
#[derive(Default, Debug)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder with no name set.
    pub fn new() -> Self {
        Builder { name: None }
    }

    /// Names the thread (recorded on the OS thread for debugging).
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Accepted and ignored.
    pub fn stack_size(self, _size: usize) -> Self {
        self
    }

    /// Spawns a model thread (never fails; `io::Result` for API
    /// fidelity).
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (rt_handle, tid) = rt::register_thread();
        let result: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
        let slot = Arc::clone(&result);
        let rt2 = Arc::clone(&rt_handle);
        let os = std::thread::Builder::new()
            .name(self.name.unwrap_or_else(|| format!("wool-loom-{tid}")))
            .spawn(move || {
                rt::run_spawned(rt2, tid, move || {
                    let v = f();
                    *slot.lock().unwrap() = Some(v);
                })
            })?;
        let me = rt::current_tid().expect("spawn outside a model");
        rt::after_spawn(&rt_handle, me, os);
        Ok(JoinHandle {
            tid,
            result,
            thread: Thread { tid },
        })
    }
}

/// A plain scheduling point that also declares "nothing I can do right
/// now": see the spin-loop contract in the crate docs.
pub fn yield_now() {
    rt::spin();
}

/// Parks until [`Thread::unpark`]; a lost wakeup deadlocks the model
/// (which the checker reports).
pub fn park() {
    rt::park();
}

/// Modeled as [`park`]: the timeout never fires in model time.
pub fn park_timeout(_dur: Duration) {
    rt::park();
}

/// Modeled as a scheduling point; model time does not advance.
pub fn sleep(_dur: Duration) {
    rt::spin();
}

/// A fixed small value: models must not branch on host parallelism.
pub fn available_parallelism() -> std::io::Result<NonZeroUsize> {
    Ok(NonZeroUsize::new(2).unwrap())
}
