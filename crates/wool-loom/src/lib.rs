//! # wool-loom — vendored exhaustive interleaving checker
//!
//! A dependency-free model checker with a [loom](https://docs.rs/loom)-
//! style API, built for this workspace because it must compile in
//! hermetic environments with no registry access. `wool-core`'s
//! `sync` facade re-exports these types under `cfg(loom)`, so the real
//! scheduler code — the slot state machine, the injector, the spinlock,
//! the serve wakeup protocol — runs unchanged inside [`model`], which
//! re-executes it under **every** interleaving of its atomic operations.
//!
//! ## What it checks
//!
//! * all interleavings of atomic operations, fences, spawns, parks and
//!   unparks across model threads (exhaustively, or bounded by a
//!   preemption budget via [`model_config`]);
//! * assertion failures, with the failing schedule in the panic message;
//! * deadlocks (every live thread parked/joining) — which is how a lost
//!   wakeup manifests, since `park_timeout` is modeled as plain `park`;
//! * livelocks (all live threads spinning on state nobody can change,
//!   or a single execution exceeding the step budget).
//!
//! ## What it deliberately does not check
//!
//! The model executes operations in a single total order (sequential
//! consistency). Weak-memory reorderings permitted by `Relaxed` /
//! `Acquire` / `Release` but not by `SeqCst` are **not** explored —
//! doing that soundly requires loom's full C11 operational model.
//! Ordering arguments are accepted for source compatibility. The
//! curated Miri job in CI complements this by catching some relaxed-
//! memory misuse; see `docs/VERIFICATION.md` for the full matrix.
//! `compare_exchange_weak` never fails spuriously in the model.

#![warn(missing_docs)]

mod rt;

pub mod hint;
pub mod sync;
pub mod thread;

pub use rt::{model, model_config, Config};
