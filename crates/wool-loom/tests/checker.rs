//! Self-tests for the wool-loom checker: positive models that must pass,
//! and seeded-bug models the checker must catch. These run under the
//! normal test profile (no `--cfg loom` needed — the checker itself is
//! always compiled); they are what lets tier-1 trust the loom suite.

use std::sync::Arc;
use wool_loom::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use wool_loom::sync::atomic::{fence, AtomicBool, AtomicUsize};
use wool_loom::thread;

/// A racy read-modify-write (load + store instead of fetch_add) must be
/// caught: some interleaving loses an increment.
#[test]
#[should_panic(expected = "lost increment")]
fn finds_lost_update() {
    wool_loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let x = Arc::clone(&x);
            handles.push(thread::spawn(move || {
                let v = x.load(SeqCst);
                x.store(v + 1, SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(SeqCst), 2, "lost increment");
    });
}

/// The same counter built from a proper RMW passes exhaustively.
#[test]
fn fetch_add_is_atomic() {
    wool_loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let x = Arc::clone(&x);
            handles.push(thread::spawn(move || {
                x.fetch_add(1, SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(SeqCst), 2);
    });
}

/// Store/load message passing: the flag spin loop must terminate (the
/// spin-pruning rule may not starve the consumer of the producer's
/// store) and the payload must be visible.
#[test]
fn message_passing_spin() {
    wool_loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(true, Release);
        });
        while !flag.load(Acquire) {
            wool_loom::hint::spin_loop();
        }
        assert_eq!(data.load(Relaxed), 42);
        t.join().unwrap();
    });
}

/// Two flag-based critical sections with a missing second flag check:
/// mutual exclusion is violated in some interleaving and the checker
/// must find it.
#[test]
#[should_panic(expected = "both in the critical section")]
fn finds_broken_mutex() {
    wool_loom::model(|| {
        let f0 = Arc::new(AtomicBool::new(false));
        let f1 = Arc::new(AtomicBool::new(false));
        let in_cs = Arc::new(AtomicUsize::new(0));
        let (a0, _a1, ac) = (Arc::clone(&f0), Arc::clone(&f1), Arc::clone(&in_cs));
        let t = thread::spawn(move || {
            a0.store(true, SeqCst);
            // BUG (seeded): no check of the other flag before entering.
            let n = ac.fetch_add(1, SeqCst);
            assert_eq!(n, 0, "both in the critical section");
            ac.fetch_sub(1, SeqCst);
            a0.store(false, SeqCst);
        });
        f1.store(true, SeqCst);
        if !f0.load(SeqCst) {
            let n = in_cs.fetch_add(1, SeqCst);
            assert_eq!(n, 0, "both in the critical section");
            in_cs.fetch_sub(1, SeqCst);
        }
        f1.store(false, SeqCst);
        t.join().unwrap();
    });
}

/// Dekker-style park/wake handshake (the serve-loop protocol shape):
/// correct version passes — no submit is lost, the model never
/// deadlocks.
#[test]
fn park_wake_handshake() {
    wool_loom::model(|| {
        let queued = Arc::new(AtomicUsize::new(0));
        let parked = Arc::new(AtomicBool::new(false));
        let (q2, p2) = (Arc::clone(&queued), Arc::clone(&parked));
        let worker = thread::spawn(move || loop {
            if q2.swap(0, SeqCst) == 1 {
                return; // consumed the submission
            }
            p2.store(true, SeqCst);
            fence(SeqCst);
            if q2.load(SeqCst) != 0 {
                // Re-check saw the submission: do not sleep.
                p2.store(false, Relaxed);
                continue;
            }
            thread::park();
            p2.store(false, Relaxed);
        });
        // Submitter: publish, fence, wake the worker if it had parked.
        queued.store(1, SeqCst);
        fence(SeqCst);
        if parked.swap(false, SeqCst) {
            worker.thread().unpark();
        }
        worker.join().unwrap();
    });
}

/// The same handshake with the worker's re-check removed: a submission
/// arriving between the flag store and the park is lost, the worker
/// sleeps forever, and the checker reports the deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn finds_lost_wakeup() {
    wool_loom::model(|| {
        let queued = Arc::new(AtomicUsize::new(0));
        let parked = Arc::new(AtomicBool::new(false));
        let (q2, p2) = (Arc::clone(&queued), Arc::clone(&parked));
        let worker = thread::spawn(move || loop {
            if q2.swap(0, SeqCst) == 1 {
                return;
            }
            p2.store(true, SeqCst);
            // BUG (seeded): park without re-checking the queue.
            thread::park();
            p2.store(false, Relaxed);
        });
        queued.store(1, SeqCst);
        fence(SeqCst);
        if parked.swap(false, SeqCst) {
            worker.thread().unpark();
        }
        worker.join().unwrap();
    });
}

/// An unpark delivered before the park must not be lost (token
/// semantics, mirroring std).
#[test]
fn unpark_before_park_is_kept() {
    wool_loom::model(|| {
        let t = thread::spawn(|| {
            thread::park();
        });
        t.thread().unpark();
        t.join().unwrap();
    });
}

/// Spinning on a condition nobody will ever satisfy is reported as a
/// livelock rather than hanging the checker.
#[test]
#[should_panic(expected = "livelock")]
fn finds_livelock() {
    wool_loom::model(|| {
        let flag = AtomicBool::new(false);
        while !flag.load(SeqCst) {
            wool_loom::hint::spin_loop();
        }
    });
}

/// The preemption bound caps exploration but still finds shallow bugs
/// (the lost update needs only one preemption).
#[test]
#[should_panic(expected = "lost increment")]
fn preemption_bound_still_finds_shallow_bug() {
    let cfg = wool_loom::Config {
        preemption_bound: Some(1),
        ..Default::default()
    };
    wool_loom::model_config(cfg, || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            let v = x2.load(SeqCst);
            x2.store(v + 1, SeqCst);
        });
        let v = x.load(SeqCst);
        x.store(v + 1, SeqCst);
        t.join().unwrap();
        assert_eq!(x.load(SeqCst), 2, "lost increment");
    });
}

/// Three-thread exhaustive run completes and counts correctly (checks
/// the explorer's replay/backtracking bookkeeping on a bigger tree).
#[test]
fn three_thread_counter_exhaustive() {
    wool_loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let x = Arc::clone(&x);
            handles.push(thread::spawn(move || {
                x.fetch_add(1, SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(x.load(SeqCst), 3);
    });
}
