//! Property-based correctness tests for the workload kernels: each
//! parallel kernel must agree with an independently written naive
//! reference on randomized inputs (sizes, seeds, sparsity).

use proptest::prelude::*;
use workloads::cholesky::{cholesky, dense_cholesky, spd_random, QTree};
use workloads::mm::{mm_par, mm_serial, Matrix};
use workloads::ssf::{fib_string, ssf_par, ssf_serial};
use ws_baseline::SerialExecutor;

/// Naive O(n^3) triple-loop multiply, written independently of mm.rs.
fn naive_mm(n: usize, a: &Matrix, b: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.at(i, k) * b.at(k, j);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive longest-match scan, written independently of ssf.rs.
fn naive_best(s: &[u8], i: usize) -> usize {
    let mut best = 0;
    for j in 0..s.len() {
        if j == i {
            continue;
        }
        let mut k = 0;
        while i + k < s.len() && j + k < s.len() && s[i + k] == s[j + k] {
            k += 1;
        }
        best = best.max(k);
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// mm matches the naive reference on arbitrary (small) sizes,
    /// including non-powers-of-two.
    #[test]
    fn mm_matches_naive(n in 1usize..40, seed in any::<u64>()) {
        let a = Matrix::random(n, seed);
        let b = Matrix::random(n, seed ^ 0xABCD);
        let want = naive_mm(n, &a, &b);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| mm_par(c, &a, &b));
        for i in 0..n {
            for j in 0..n {
                prop_assert!((got.at(i, j) - want[i * n + j]).abs() < 1e-9);
            }
        }
        // And the plain serial path agrees too.
        let s = mm_serial(&a, &b);
        for i in 0..n {
            for j in 0..n {
                prop_assert!((s.at(i, j) - want[i * n + j]).abs() < 1e-9);
            }
        }
    }

    /// ssf matches a naive scan on arbitrary byte strings (not only
    /// Fibonacci strings), at arbitrary grain sizes.
    #[test]
    fn ssf_matches_naive(bytes in prop::collection::vec(0u8..4, 1..80), grain in 1usize..16) {
        let mut e = SerialExecutor::new();
        let got = e.run(|c| ssf_par(c, &bytes, grain));
        let serial = ssf_serial(&bytes);
        prop_assert_eq!(&got, &serial);
        for i in 0..bytes.len() {
            prop_assert_eq!(got.max[i], naive_best(&bytes, i), "position {}", i);
            // The recorded position must actually achieve the length.
            if got.max[i] > 0 {
                let (p, m) = (got.pos[i], got.max[i]);
                prop_assert!(bytes[i..i + m] == bytes[p..p + m]);
            }
        }
    }

    /// Quadtree Cholesky matches the dense reference for random sparse
    /// SPD matrices of random size and sparsity.
    #[test]
    fn cholesky_matches_dense(n in 2usize..80, nnz in 0usize..300, seed in any::<u64>()) {
        let m = spd_random(n, nnz, seed);
        let size = m.size;
        let mut dense = m.tree.to_dense(size);
        dense_cholesky(size, &mut dense);

        let mut e = SerialExecutor::new();
        let l = e.run(move |c| cholesky(c, size, m.tree));
        let got = l.to_dense(size);
        for (x, y) in got.iter().zip(&dense) {
            prop_assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    /// Quadtree dense round-trip is exact for any generated matrix.
    #[test]
    fn quadtree_roundtrip(n in 2usize..100, nnz in 0usize..200, seed in any::<u64>()) {
        let m = spd_random(n, nnz, seed);
        let d = m.tree.to_dense(m.size);
        let t = QTree::from_dense(m.size, 0, 0, m.size, &d).unwrap();
        prop_assert_eq!(d, t.to_dense(m.size));
    }

    /// Fibonacci strings satisfy their defining recurrence at every n.
    #[test]
    fn fib_string_recurrence(n in 2u32..18) {
        let sn = fib_string(n);
        let mut cat = fib_string(n - 1);
        cat.extend(fib_string(n - 2));
        prop_assert_eq!(sn, cat);
    }
}
