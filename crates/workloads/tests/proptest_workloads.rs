//! Property-style correctness tests for the workload kernels: each
//! parallel kernel must agree with an independently written naive
//! reference on randomized inputs (sizes, seeds, sparsity). Inputs are
//! drawn from a seeded xorshift64* generator so runs are deterministic
//! without an external property testing crate.

use workloads::cholesky::{cholesky, dense_cholesky, spd_random, QTree};
use workloads::mm::{mm_par, mm_serial, Matrix};
use workloads::ssf::{fib_string, ssf_par, ssf_serial};
use ws_baseline::SerialExecutor;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Naive O(n^3) triple-loop multiply, written independently of mm.rs.
fn naive_mm(n: usize, a: &Matrix, b: &Matrix) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0;
            for k in 0..n {
                acc += a.at(i, k) * b.at(k, j);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Naive longest-match scan, written independently of ssf.rs.
fn naive_best(s: &[u8], i: usize) -> usize {
    let mut best = 0;
    for j in 0..s.len() {
        if j == i {
            continue;
        }
        let mut k = 0;
        while i + k < s.len() && j + k < s.len() && s[i + k] == s[j + k] {
            k += 1;
        }
        best = best.max(k);
    }
    best
}

/// mm matches the naive reference on arbitrary (small) sizes,
/// including non-powers-of-two.
#[test]
fn mm_matches_naive() {
    let mut rng = Rng::new(0x3A7);
    for _ in 0..24 {
        let n = rng.range(1, 40);
        let seed = rng.next();
        let a = Matrix::random(n, seed);
        let b = Matrix::random(n, seed ^ 0xABCD);
        let want = naive_mm(n, &a, &b);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| mm_par(c, &a, &b));
        for i in 0..n {
            for j in 0..n {
                assert!((got.at(i, j) - want[i * n + j]).abs() < 1e-9);
            }
        }
        // And the plain serial path agrees too.
        let s = mm_serial(&a, &b);
        for i in 0..n {
            for j in 0..n {
                assert!((s.at(i, j) - want[i * n + j]).abs() < 1e-9);
            }
        }
    }
}

/// ssf matches a naive scan on arbitrary byte strings (not only
/// Fibonacci strings), at arbitrary grain sizes.
#[test]
fn ssf_matches_naive() {
    let mut rng = Rng::new(0x55F);
    for _ in 0..24 {
        let len = rng.range(1, 80);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() % 4) as u8).collect();
        let grain = rng.range(1, 16);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| ssf_par(c, &bytes, grain));
        let serial = ssf_serial(&bytes);
        assert_eq!(got, serial);
        for i in 0..bytes.len() {
            assert_eq!(got.max[i], naive_best(&bytes, i), "position {i}");
            // The recorded position must actually achieve the length.
            if got.max[i] > 0 {
                let (p, m) = (got.pos[i], got.max[i]);
                assert!(bytes[i..i + m] == bytes[p..p + m]);
            }
        }
    }
}

/// Quadtree Cholesky matches the dense reference for random sparse
/// SPD matrices of random size and sparsity.
#[test]
fn cholesky_matches_dense() {
    let mut rng = Rng::new(0xC4013);
    for _ in 0..24 {
        let n = rng.range(2, 80);
        let nnz = rng.range(0, 300);
        let seed = rng.next();
        let m = spd_random(n, nnz, seed);
        let size = m.size;
        let mut dense = m.tree.to_dense(size);
        dense_cholesky(size, &mut dense);

        let mut e = SerialExecutor::new();
        let l = e.run(move |c| cholesky(c, size, m.tree));
        let got = l.to_dense(size);
        for (x, y) in got.iter().zip(&dense) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }
}

/// Quadtree dense round-trip is exact for any generated matrix.
#[test]
fn quadtree_roundtrip() {
    let mut rng = Rng::new(0x40AD);
    for _ in 0..24 {
        let n = rng.range(2, 100);
        let nnz = rng.range(0, 200);
        let seed = rng.next();
        let m = spd_random(n, nnz, seed);
        let d = m.tree.to_dense(m.size);
        let t = QTree::from_dense(m.size, 0, 0, m.size, &d).unwrap();
        assert_eq!(d, t.to_dense(m.size));
    }
}

/// Fibonacci strings satisfy their defining recurrence at every n.
#[test]
fn fib_string_recurrence() {
    for n in 2u32..18 {
        let sn = fib_string(n);
        let mut cat = fib_string(n - 1);
        cat.extend(fib_string(n - 2));
        assert_eq!(sn, cat);
    }
}
