//! Parallel loop helpers built on the binary `fork`.
//!
//! [`par_for`] is the recursive-splitting loop the TBB-style programs
//! use (e.g. `ssf`); contrast with `Fork::for_each_spawn`, the flat
//! one-task-per-iteration spawn loop the paper's `mm` uses.

use wool_core::Fork;

/// Runs `body(i)` for every `i` in `lo..hi`, recursively splitting the
/// range in half until it is at most `grain` long.
pub fn par_for<C, F>(c: &mut C, lo: usize, hi: usize, grain: usize, body: &F)
where
    C: Fork,
    F: Fn(&mut C, usize) + Sync,
{
    debug_assert!(grain >= 1);
    if hi <= lo {
        return;
    }
    if hi - lo <= grain {
        for i in lo..hi {
            body(c, i);
        }
        return;
    }
    let mid = lo + (hi - lo) / 2;
    c.fork(
        |c| par_for(c, lo, mid, grain, body),
        |c| par_for(c, mid, hi, grain, body),
    );
}

/// Parallel reduction over `lo..hi` with the same splitting rule:
/// `combine(map(i), ...)` over the range. `combine` must be associative.
pub fn par_reduce<C, T, M, R>(
    c: &mut C,
    lo: usize,
    hi: usize,
    grain: usize,
    identity: T,
    map: &M,
    combine: &R,
) -> T
where
    C: Fork,
    T: Send + Clone,
    M: Fn(&mut C, usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    if hi <= lo {
        return identity;
    }
    if hi - lo <= grain {
        let mut acc = identity;
        for i in lo..hi {
            let v = map(c, i);
            acc = combine(acc, v);
        }
        return acc;
    }
    let mid = lo + (hi - lo) / 2;
    let id_left = identity.clone();
    let id_right = identity;
    let (a, b) = c.fork(
        move |c| par_reduce(c, lo, mid, grain, id_left, map, combine),
        move |c| par_reduce(c, mid, hi, grain, id_right, map, combine),
    );
    combine(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use ws_baseline::SerialExecutor;

    #[test]
    fn par_for_covers_range_once() {
        let mut e = SerialExecutor::new();
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        e.run(|c| {
            par_for(c, 0, 97, 4, &|_c, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_empty_and_single() {
        let mut e = SerialExecutor::new();
        let n = AtomicUsize::new(0);
        e.run(|c| {
            par_for(c, 5, 5, 1, &|_c, _| {
                n.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(n.load(Ordering::Relaxed), 0);
        e.run(|c| {
            par_for(c, 5, 6, 1, &|_c, i| {
                n.fetch_add(i, Ordering::Relaxed);
            })
        });
        assert_eq!(n.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn par_reduce_sums() {
        let mut e = SerialExecutor::new();
        let total = e.run(|c| par_reduce(c, 0, 1000, 16, 0u64, &|_c, i| i as u64, &|a, b| a + b));
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn par_for_on_wool() {
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let hits: Vec<AtomicUsize> = (0..512).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|h| {
            par_for(h, 0, 512, 8, &|_h, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
