//! The stress micro-benchmark (§IV-A).
//!
//! "A micro benchmark written to have a precisely controllable
//! parallelism and granularity. The program creates a balanced binary
//! tree of tasks with each leaf executing a simple loop making no
//! memory references. The granularity of the leaf tasks can be varied
//! by varying the number of iterations of the loop and the granularity
//! of the parallel regions is controlled by that value and the depth of
//! the tree."
//!
//! Table I uses two families: leaf size 256 iterations (~512 cycles,
//! heights 7–11) and leaf size 4096 iterations (~8K cycles, heights
//! 3–7); execution is serialized between repetitions of the tree.

use wool_core::Fork;

/// The leaf computation: a register-only loop with a data dependence so
/// the optimizer cannot collapse it. Returns a checksum.
#[inline(never)]
pub fn leaf(iters: u64) -> u64 {
    let mut x = iters | 1;
    for _ in 0..iters {
        // One multiply + rotate per iteration; latency-bound, no memory.
        x = x.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(7);
    }
    std::hint::black_box(x)
}

/// A balanced binary tree of tasks of the given `height`; each of the
/// `2^height` leaves runs [`leaf`] with `leaf_iters` iterations.
/// Returns the sum of leaf checksums.
pub fn tree<C: Fork>(c: &mut C, height: u32, leaf_iters: u64) -> u64 {
    if height == 0 {
        return leaf(leaf_iters);
    }
    let (a, b) = c.fork(
        |c| tree(c, height - 1, leaf_iters),
        |c| tree(c, height - 1, leaf_iters),
    );
    a.wrapping_add(b)
}

/// Sequential reference for [`tree`].
pub fn tree_serial(height: u32, leaf_iters: u64) -> u64 {
    if height == 0 {
        return leaf(leaf_iters);
    }
    tree_serial(height - 1, leaf_iters).wrapping_add(tree_serial(height - 1, leaf_iters))
}

/// Runs `reps` repetitions of the tree, serialized on the caller
/// (the paper's "execution is serialized between the trees").
pub fn stress<C: Fork>(c: &mut C, height: u32, leaf_iters: u64, reps: u64) -> u64 {
    let mut acc = 0u64;
    for _ in 0..reps {
        acc = acc.wrapping_add(tree(c, height, leaf_iters));
    }
    acc
}

/// The steal-cost configuration of Table III / Podobas et al.: a binary
/// tree with one leaf per processor, measuring the cost to fan work out
/// to `2^height` processors and join it back.
pub fn steal_cost_tree<C: Fork>(c: &mut C, height: u32, leaf_iters: u64) -> u64 {
    tree(c, height, leaf_iters)
}

/// Number of tasks one tree spawns (internal nodes count 1 spawn each).
pub fn tree_spawn_count(height: u32) -> u64 {
    (1u64 << height) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    #[test]
    fn leaf_is_deterministic() {
        assert_eq!(leaf(256), leaf(256));
        assert_ne!(leaf(256), leaf(257));
        assert_eq!(leaf(0), 1); // zero iterations: initial value
    }

    #[test]
    fn tree_matches_serial() {
        let mut e = SerialExecutor::new();
        for h in 0..8 {
            assert_eq!(e.run(|c| tree(c, h, 64)), tree_serial(h, 64), "h={h}");
        }
    }

    #[test]
    fn stress_reps_accumulate() {
        let mut e = SerialExecutor::new();
        let one = e.run(|c| stress(c, 3, 16, 1));
        let three = e.run(|c| stress(c, 3, 16, 3));
        assert_eq!(three, one.wrapping_mul(3));
    }

    #[test]
    fn spawn_count() {
        assert_eq!(tree_spawn_count(0), 0);
        assert_eq!(tree_spawn_count(1), 1);
        assert_eq!(tree_spawn_count(3), 7);
        assert_eq!(tree_spawn_count(10), 1023);
    }

    #[test]
    fn on_wool_pool_spawns_match() {
        let mut pool: wool_core::Pool = wool_core::Pool::new(2);
        let expect = tree_serial(6, 32);
        let got = pool.run(|h| tree(h, 6, 32));
        assert_eq!(got, expect);
        assert_eq!(
            pool.last_report().unwrap().total.spawns,
            tree_spawn_count(6)
        );
    }

    #[test]
    fn on_baseline_pools() {
        let expect = tree_serial(5, 32);
        let mut tbb = ws_baseline::tbb_like(2);
        assert_eq!(tbb.run(|c| tree(c, 5, 32)), expect);
        let mut cilk = ws_baseline::cilk_like(2);
        assert_eq!(cilk.run(|c| tree(c, 5, 32)), expect);
    }
}
