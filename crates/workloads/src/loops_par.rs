//! The loop kernels of [`crate::loops`], ported onto `wool-par` — a
//! second implementation of the same map/reduce shapes so hand-rolled
//! recursive splitting and the data-parallel iterator layer are
//! directly benchmarkable against each other (`par_loops` bench).
//!
//! Three variants of each kernel:
//! * `*_seq` — plain sequential loop (the `T_S` baseline),
//! * `*_hand` — hand-rolled binary splitting at an explicit grain, the
//!   idiom `loops::par_for`/`par_reduce` established,
//! * `*_par` — `wool-par` iterators; grain adaptive unless pinned.
//!
//! The map kernel squares in place (`x <- x*x + 1`, wrapping); the
//! reduce kernel is a dot product. Both are memory-light enough that
//! per-task overhead — the thing the paper's granularity model is
//! about — dominates at small grains.

use wool_core::Fork;
use wool_par::{par_iter_mut, par_range};

/// The map step: one cheap, pure update per item.
#[inline(always)]
pub fn map_step(x: u64) -> u64 {
    x.wrapping_mul(x).wrapping_add(1)
}

/// Sequential map baseline.
pub fn map_seq(xs: &mut [u64]) {
    for x in xs.iter_mut() {
        *x = map_step(*x);
    }
}

/// Hand-rolled recursive splitting map at an explicit `grain`
/// (slice-splitting version of [`crate::loops::par_for`]).
pub fn map_hand<C: Fork>(c: &mut C, xs: &mut [u64], grain: usize) {
    debug_assert!(grain >= 1);
    if xs.len() <= grain {
        map_seq(xs);
        return;
    }
    let mid = xs.len() / 2;
    let (lo, hi) = xs.split_at_mut(mid);
    c.fork(|c| map_hand(c, lo, grain), |c| map_hand(c, hi, grain));
}

/// `wool-par` map with adaptive grain.
pub fn map_par<C: Fork>(c: &mut C, xs: &mut [u64]) {
    par_iter_mut(xs).for_each(c, |x| *x = map_step(*x));
}

/// `wool-par` map at an explicit grain.
pub fn map_par_grain<C: Fork>(c: &mut C, xs: &mut [u64], grain: usize) {
    par_iter_mut(xs)
        .with_grain(grain)
        .for_each(c, |x| *x = map_step(*x));
}

/// Sequential dot product baseline (wrapping arithmetic).
pub fn dot_seq(xs: &[u64], ys: &[u64]) -> u64 {
    assert_eq!(xs.len(), ys.len());
    let mut acc = 0u64;
    for i in 0..xs.len() {
        acc = acc.wrapping_add(xs[i].wrapping_mul(ys[i]));
    }
    acc
}

/// Hand-rolled dot product via [`crate::loops::par_reduce`] at an
/// explicit `grain`.
pub fn dot_hand<C: Fork>(c: &mut C, xs: &[u64], ys: &[u64], grain: usize) -> u64 {
    assert_eq!(xs.len(), ys.len());
    crate::loops::par_reduce(
        c,
        0,
        xs.len(),
        grain,
        0u64,
        &|_c, i| xs[i].wrapping_mul(ys[i]),
        &|a, b| a.wrapping_add(b),
    )
}

/// `wool-par` dot product with adaptive grain.
pub fn dot_par<C: Fork>(c: &mut C, xs: &[u64], ys: &[u64]) -> u64 {
    assert_eq!(xs.len(), ys.len());
    par_range(0..xs.len())
        .map(|i| xs[i].wrapping_mul(ys[i]))
        .reduce(c, || 0, |a, b| a.wrapping_add(b))
}

/// `wool-par` dot product at an explicit grain.
pub fn dot_par_grain<C: Fork>(c: &mut C, xs: &[u64], ys: &[u64], grain: usize) -> u64 {
    assert_eq!(xs.len(), ys.len());
    par_range(0..xs.len())
        .map(|i| xs[i].wrapping_mul(ys[i]))
        .with_grain(grain)
        .reduce(c, || 0, |a, b| a.wrapping_add(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Pool;

    fn data(n: usize) -> (Vec<u64>, Vec<u64>) {
        let xs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
        let ys: Vec<u64> = (0..n as u64).rev().collect();
        (xs, ys)
    }

    #[test]
    fn map_variants_agree() {
        let mut pool: Pool = Pool::new(4);
        for n in [0usize, 1, 255, 10_000] {
            let (base, _) = data(n);
            let mut expect = base.clone();
            map_seq(&mut expect);

            let mut hand = base.clone();
            pool.run(|h| map_hand(h, &mut hand, 64));
            assert_eq!(hand, expect, "hand n={n}");

            let mut par = base.clone();
            pool.run(|h| map_par(h, &mut par));
            assert_eq!(par, expect, "par n={n}");

            let mut parg = base;
            pool.run(|h| map_par_grain(h, &mut parg, 7));
            assert_eq!(parg, expect, "par grain n={n}");
        }
    }

    #[test]
    fn dot_variants_agree() {
        let mut pool: Pool = Pool::new(3);
        for n in [0usize, 1, 1023, 20_000] {
            let (xs, ys) = data(n);
            let expect = dot_seq(&xs, &ys);
            assert_eq!(pool.run(|h| dot_hand(h, &xs, &ys, 128)), expect);
            assert_eq!(pool.run(|h| dot_par(h, &xs, &ys)), expect);
            assert_eq!(pool.run(|h| dot_par_grain(h, &xs, &ys, 33)), expect);
        }
    }
}
