//! The fib micro-benchmark (Figures 1 and 2 of the paper).
//!
//! "fib (with no cutoff) is an example of very small task granularity;
//! it spawns a task for every 13 cycles worth of work." The paper's
//! headline claim is that Wool achieves speedup on fib(42) *without any
//! cutoff*, where other systems slow down.

use wool_core::Fork;

/// Parallel Fibonacci, one spawn per internal node, no cutoff.
///
/// Mirrors Figure 2: `SPAWN(fib, n-2); a = CALL(fib, n-1); b = JOIN`.
pub fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

/// Parallel Fibonacci with a manual cutoff: below `cutoff`, plain
/// recursion with no task constructs. The granularity-control idiom the
/// paper's private tasks make unnecessary.
pub fn fib_cutoff<C: Fork>(c: &mut C, n: u64, cutoff: u64) -> u64 {
    if n < 2 || n < cutoff {
        return fib_serial(n);
    }
    let (a, b) = c.fork(
        |c| fib_cutoff(c, n - 1, cutoff),
        |c| fib_cutoff(c, n - 2, cutoff),
    );
    a + b
}

/// Plain sequential Fibonacci (the paper's "Serial" row of Table II).
pub fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

/// Number of tasks fib(n) spawns: one per internal node of the call
/// tree, i.e. `calls(n) = 2*fib(n+1) - 1` nodes of which
/// `fib(n+1) - 1`... computed exactly by recurrence below.
pub fn fib_spawn_count(n: u64) -> u64 {
    // spawns(n) = 0 for n < 2; else 1 + spawns(n-1) + spawns(n-2).
    let mut memo = vec![0u64; (n + 1).max(2) as usize];
    for i in 2..=n as usize {
        memo[i] = 1 + memo[i - 1] + memo[i - 2];
    }
    memo[n as usize]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    #[test]
    fn serial_values() {
        let known = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55];
        for (n, &v) in known.iter().enumerate() {
            assert_eq!(fib_serial(n as u64), v);
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let mut e = SerialExecutor::new();
        for n in 0..20 {
            assert_eq!(e.run(|c| fib(c, n)), fib_serial(n));
        }
    }

    #[test]
    fn cutoff_matches_serial() {
        let mut e = SerialExecutor::new();
        for cutoff in [0, 2, 5, 10, 30] {
            assert_eq!(e.run(|c| fib_cutoff(c, 18, cutoff)), fib_serial(18));
        }
    }

    #[test]
    fn spawn_count_formula() {
        // Direct recursive count for small n.
        fn count(n: u64) -> u64 {
            if n < 2 {
                0
            } else {
                1 + count(n - 1) + count(n - 2)
            }
        }
        for n in 0..20 {
            assert_eq!(fib_spawn_count(n), count(n), "n={n}");
        }
    }

    #[test]
    fn on_wool_pool() {
        let mut pool: wool_core::Pool = wool_core::Pool::new(2);
        assert_eq!(pool.run(|h| fib(h, 21)), fib_serial(21));
        let spawned = pool.last_report().unwrap().total.spawns;
        assert_eq!(spawned, fib_spawn_count(21));
    }
}
