//! # workloads — the Wool paper's benchmark programs
//!
//! Every program from §IV-A of Faxén, *Efficient Work Stealing for Fine
//! Grained Parallelism* (ICPP 2010), written once against
//! `wool_core::Fork` so the same code runs on every scheduler the
//! repository provides (all Wool strategy variants, the TBB/Cilk++/
//! OpenMP-like baselines, and the serial executor):
//!
//! * [`fib`] — spawn-per-call Fibonacci (Figures 1 and 2),
//! * [`stress`] — balanced task trees with busy-loop leaves (§IV-A,
//!   Figures 1 and 4, Table III),
//! * [`mm`] — dense matrix multiply, outer loop spawned flat (Table IV),
//! * [`ssf`] — sub-string finder over Fibonacci strings,
//! * [`cholesky`] — sparse quadtree Cholesky factorization (Cilk-5),
//! * [`loops`] — recursive-splitting `par_for`/`par_reduce` helpers,
//! * [`loops_par`] — the same loop kernels on `wool-par`'s adaptive
//!   data-parallel iterators (old-vs-new benchmarkable).
//!
//! [`spec`] describes every workload/parameter combination of Table I
//! so the bench harness can enumerate them. [`extra`] adds classic
//! task-parallel programs beyond the paper's set (nqueens, sorting,
//! Strassen, heat diffusion, knapsack).

#![warn(missing_docs)]

pub mod cholesky;
pub mod extra;
pub mod fib;
pub mod loops;
pub mod loops_par;
pub mod mm;
pub mod spec;
pub mod ssf;
pub mod stress;

pub use spec::{all_table1_specs, WorkloadKind, WorkloadSpec};
