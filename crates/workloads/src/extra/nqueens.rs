//! N-queens solution counting — the classic irregular task-parallel
//! search (used by the Wool/BOTS benchmark families).
//!
//! The search tree is heavily unbalanced, which exercises the dynamic
//! (revocable) cut-off of §III-B: "very unbalanced trees require more"
//! public task descriptors, so the trip wire keeps publishing.

use wool_core::Fork;

/// Board state packed into three bitmasks (columns and both diagonal
/// directions), shifted per row in the usual bit-twiddling fashion.
#[derive(Debug, Clone, Copy)]
struct Masks {
    cols: u32,
    diag1: u32,
    diag2: u32,
}

impl Masks {
    fn empty() -> Masks {
        Masks {
            cols: 0,
            diag1: 0,
            diag2: 0,
        }
    }

    /// Free columns in the current row for an `n`-queens board.
    fn free(self, n: usize) -> u32 {
        !(self.cols | self.diag1 | self.diag2) & ((1u32 << n) - 1)
    }

    /// Masks after placing a queen at `bit` and moving to the next row.
    fn place(self, bit: u32) -> Masks {
        Masks {
            cols: self.cols | bit,
            diag1: (self.diag1 | bit) << 1,
            diag2: (self.diag2 | bit) >> 1,
        }
    }
}

fn count_serial(n: usize, m: Masks) -> u64 {
    let mut free = m.free(n);
    if m.cols == (1u32 << n) - 1 {
        return 1;
    }
    let mut total = 0;
    while free != 0 {
        let bit = free & free.wrapping_neg();
        free ^= bit;
        total += count_serial(n, m.place(bit));
    }
    total
}

fn count_par<C: Fork>(c: &mut C, n: usize, depth: usize, m: Masks) -> u64 {
    if m.cols == (1u32 << n) - 1 {
        return 1;
    }
    if depth == 0 {
        return count_serial(n, m);
    }
    // Fork over the feasible placements of this row, pairwise.
    fn over<C: Fork>(c: &mut C, n: usize, depth: usize, m: Masks, free: u32) -> u64 {
        if free == 0 {
            return 0;
        }
        let bit = free & free.wrapping_neg();
        let rest = free ^ bit;
        if rest == 0 {
            return count_par(c, n, depth - 1, m.place(bit));
        }
        let (a, b) = c.fork(
            move |c| count_par(c, n, depth - 1, m.place(bit)),
            move |c| over(c, n, depth, m, rest),
        );
        a + b
    }
    over(c, n, depth, m, m.free(n))
}

/// Counts the solutions to the `n`-queens problem in parallel, spawning
/// down to `spawn_depth` rows (the remaining rows run serially — set it
/// to `n` for fully cutoff-free spawning).
pub fn nqueens_par<C: Fork>(c: &mut C, n: usize, spawn_depth: usize) -> u64 {
    assert!(n <= 16, "bitmask board limited to n <= 16");
    count_par(c, n, spawn_depth, Masks::empty())
}

/// Sequential reference.
pub fn nqueens_serial(n: usize) -> u64 {
    assert!(n <= 16);
    count_serial(n, Masks::empty())
}

/// Known solution counts for `n = 0..=14`.
pub const KNOWN: [u64; 15] = [
    1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680, 14200, 73712, 365596,
];

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    #[test]
    fn serial_matches_known() {
        for (n, &want) in KNOWN.iter().enumerate().take(12) {
            assert_eq!(nqueens_serial(n), want, "n={n}");
        }
    }

    #[test]
    fn parallel_matches_serial_all_depths() {
        let mut e = SerialExecutor::new();
        for n in [6, 8, 9] {
            for depth in [0, 1, 2, n] {
                assert_eq!(
                    e.run(|c| nqueens_par(c, n, depth)),
                    KNOWN[n],
                    "n={n} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn parallel_on_wool() {
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        assert_eq!(pool.run(|h| nqueens_par(h, 10, 10)), KNOWN[10]);
        assert!(pool.last_report().unwrap().total.spawns > 100);
    }
}
