//! Strassen matrix multiplication — the Cilk-5 benchmark with the
//! richest fork structure: seven recursive sub-products spawned per
//! level, plus parallel matrix additions.

use crate::mm::Matrix;
use wool_core::Fork;

/// Side length below which recursion falls back to the classical
/// multiply.
pub const STRASSEN_CUTOFF: usize = 64;

/// A square power-of-two matrix in row-major order (the working
/// representation of the Strassen recursion).
#[derive(Debug, Clone, PartialEq)]
pub struct Sq {
    n: usize,
    data: Vec<f64>,
}

impl Sq {
    /// Zero matrix of side `n` (power of two).
    pub fn zeros(n: usize) -> Sq {
        assert!(n.is_power_of_two());
        Sq {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// From a dense `Matrix` (padding up to the next power of two).
    pub fn from_matrix(m: &Matrix) -> Sq {
        let n = m.n().next_power_of_two();
        let mut s = Sq::zeros(n);
        for i in 0..m.n() {
            for j in 0..m.n() {
                s.data[i * n + j] = m.at(i, j);
            }
        }
        s
    }

    /// Element (i, j).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Extracts quadrant `(qi, qj)` (each 0 or 1).
    fn quadrant(&self, qi: usize, qj: usize) -> Sq {
        let h = self.n / 2;
        let mut q = Sq::zeros(h);
        for i in 0..h {
            for j in 0..h {
                q.data[i * h + j] = self.at(qi * h + i, qj * h + j);
            }
        }
        q
    }

    /// Writes `src` into quadrant `(qi, qj)`.
    fn set_quadrant(&mut self, qi: usize, qj: usize, src: &Sq) {
        let h = self.n / 2;
        for i in 0..h {
            for j in 0..h {
                self.data[(qi * h + i) * self.n + qj * h + j] = src.data[i * h + j];
            }
        }
    }

    fn add(&self, o: &Sq) -> Sq {
        Sq {
            n: self.n,
            data: self.data.iter().zip(&o.data).map(|(a, b)| a + b).collect(),
        }
    }

    fn sub(&self, o: &Sq) -> Sq {
        Sq {
            n: self.n,
            data: self.data.iter().zip(&o.data).map(|(a, b)| a - b).collect(),
        }
    }

    /// Classical O(n^3) multiply (i-k-j order).
    fn classical(&self, o: &Sq) -> Sq {
        let n = self.n;
        let mut out = Sq::zeros(n);
        for i in 0..n {
            for k in 0..n {
                let aik = self.at(i, k);
                for j in 0..n {
                    out.data[i * n + j] += aik * o.at(k, j);
                }
            }
        }
        out
    }
}

/// Parallel Strassen multiply.
pub fn strassen<C: Fork>(c: &mut C, a: &Sq, b: &Sq) -> Sq {
    assert_eq!(a.n, b.n);
    let n = a.n;
    if n <= STRASSEN_CUTOFF {
        return a.classical(b);
    }
    let (a11, a12, a21, a22) = (
        a.quadrant(0, 0),
        a.quadrant(0, 1),
        a.quadrant(1, 0),
        a.quadrant(1, 1),
    );
    let (b11, b12, b21, b22) = (
        b.quadrant(0, 0),
        b.quadrant(0, 1),
        b.quadrant(1, 0),
        b.quadrant(1, 1),
    );

    // The seven Strassen products, forked as a balanced tree.
    let ((m1, m2), ((m3, m4), ((m5, m6), m7))) = c.fork(
        |c| {
            c.fork(
                |c| {
                    let (l, r) = (a11.add(&a22), b11.add(&b22));
                    strassen(c, &l, &r)
                },
                |c| {
                    let l = a21.add(&a22);
                    strassen(c, &l, &b11)
                },
            )
        },
        |c| {
            c.fork(
                |c| {
                    c.fork(
                        |c| {
                            let r = b12.sub(&b22);
                            strassen(c, &a11, &r)
                        },
                        |c| {
                            let r = b21.sub(&b11);
                            strassen(c, &a22, &r)
                        },
                    )
                },
                |c| {
                    c.fork(
                        |c| {
                            c.fork(
                                |c| {
                                    let l = a11.add(&a12);
                                    strassen(c, &l, &b22)
                                },
                                |c| {
                                    let (l, r) = (a21.sub(&a11), b11.add(&b12));
                                    strassen(c, &l, &r)
                                },
                            )
                        },
                        |c| {
                            let (l, r) = (a12.sub(&a22), b21.add(&b22));
                            strassen(c, &l, &r)
                        },
                    )
                },
            )
        },
    );

    let c11 = m1.add(&m4).sub(&m5).add(&m7);
    let c12 = m3.add(&m5);
    let c21 = m2.add(&m4);
    let c22 = m1.sub(&m2).add(&m3).add(&m6);

    let mut out = Sq::zeros(n);
    out.set_quadrant(0, 0, &c11);
    out.set_quadrant(0, 1, &c12);
    out.set_quadrant(1, 0, &c21);
    out.set_quadrant(1, 1, &c22);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mm::mm_serial;
    use ws_baseline::SerialExecutor;

    fn close(a: &Sq, b: &Sq) -> bool {
        a.data
            .iter()
            .zip(&b.data)
            .all(|(x, y)| (x - y).abs() < 1e-6)
    }

    #[test]
    fn matches_classical_small() {
        let a = Sq::from_matrix(&Matrix::random(32, 1));
        let b = Sq::from_matrix(&Matrix::random(32, 2));
        let want = a.classical(&b);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| strassen(c, &a, &b));
        assert!(close(&got, &want));
    }

    #[test]
    fn matches_classical_above_cutoff() {
        let n = 2 * STRASSEN_CUTOFF;
        let a = Sq::from_matrix(&Matrix::random(n, 3));
        let b = Sq::from_matrix(&Matrix::random(n, 4));
        let want = a.classical(&b);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| strassen(c, &a, &b));
        assert!(close(&got, &want));
    }

    #[test]
    fn matches_mm_module() {
        let m1 = Matrix::random(48, 5);
        let m2 = Matrix::random(48, 6);
        let dense = mm_serial(&m1, &m2);
        let (a, b) = (Sq::from_matrix(&m1), Sq::from_matrix(&m2));
        let mut e = SerialExecutor::new();
        let got = e.run(|c| strassen(c, &a, &b));
        for i in 0..48 {
            for j in 0..48 {
                assert!((got.at(i, j) - dense.at(i, j)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parallel_on_wool_pool() {
        let n = 2 * STRASSEN_CUTOFF;
        let a = Sq::from_matrix(&Matrix::random(n, 7));
        let b = Sq::from_matrix(&Matrix::random(n, 8));
        let want = a.classical(&b);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let got = pool.run(|h| strassen(h, &a, &b));
        assert!(close(&got, &want));
        // 7 products per level => at least 6 spawns at the top level.
        assert!(pool.last_report().unwrap().total.spawns >= 6);
    }
}
