//! Extended workloads beyond the paper's five benchmarks.
//!
//! These are classic task-parallel programs from the Cilk/BOTS family
//! (several of which later Wool distributions shipped); they broaden
//! the validation and bench surface with search (nqueens, knapsack),
//! divide-and-conquer on data (merge/quick sort, Strassen), and the
//! periodic-region pattern (heat). All run on every scheduler via the
//! `Fork` trait, with independent serial references.

pub mod heat;
pub mod knapsack;
pub mod nqueens;
pub mod sort;
pub mod strassen;
