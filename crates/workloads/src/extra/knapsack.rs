//! 0/1 knapsack by branch and bound — speculative task parallelism with
//! a shared best-so-far bound (the BOTS-style irregular search the
//! paper's granularity discussion §II applies to: task execution times
//! are unpredictable, so static cut-offs cannot work).

use std::sync::atomic::{AtomicU64, Ordering};

use wool_core::Fork;

/// One item: value and weight.
#[derive(Debug, Clone, Copy)]
pub struct Item {
    /// Item value.
    pub value: u64,
    /// Item weight.
    pub weight: u64,
}

/// A knapsack instance (items sorted by value density for the bound).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Items, sorted by decreasing value/weight.
    pub items: Vec<Item>,
    /// Weight capacity.
    pub capacity: u64,
}

impl Instance {
    /// Deterministic random instance with `n` items.
    pub fn random(n: usize, seed: u64) -> Instance {
        let mut x = seed | 1;
        let mut next = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x % m + 1
        };
        let mut items: Vec<Item> = (0..n)
            .map(|_| Item {
                value: next(100),
                weight: next(50),
            })
            .collect();
        items.sort_by(|a, b| {
            (b.value * a.weight).cmp(&(a.value * b.weight)) // density desc
        });
        let total: u64 = items.iter().map(|i| i.weight).sum();
        Instance {
            items,
            capacity: total / 3,
        }
    }
}

/// Fractional-relaxation upper bound from item `k` with `cap` left.
fn upper_bound(inst: &Instance, k: usize, cap: u64, value: u64) -> u64 {
    let mut bound = value;
    let mut cap = cap;
    for item in &inst.items[k..] {
        if item.weight <= cap {
            bound += item.value;
            cap -= item.weight;
        } else {
            // Fractional take (integer ceil keeps it an upper bound).
            bound += (item.value * cap).div_ceil(item.weight.max(1));
            break;
        }
    }
    bound
}

fn branch<C: Fork>(
    c: &mut C,
    inst: &Instance,
    best: &AtomicU64,
    k: usize,
    cap: u64,
    value: u64,
    spawn_depth: usize,
) {
    if k == inst.items.len() {
        best.fetch_max(value, Ordering::Relaxed);
        return;
    }
    // Prune against the shared best.
    if upper_bound(inst, k, cap, value) <= best.load(Ordering::Relaxed) {
        return;
    }
    let item = inst.items[k];
    if spawn_depth == 0 {
        if item.weight <= cap {
            branch(
                c,
                inst,
                best,
                k + 1,
                cap - item.weight,
                value + item.value,
                0,
            );
        }
        branch(c, inst, best, k + 1, cap, value, 0);
        return;
    }
    if item.weight <= cap {
        c.fork(
            |c| {
                branch(
                    c,
                    inst,
                    best,
                    k + 1,
                    cap - item.weight,
                    value + item.value,
                    spawn_depth - 1,
                )
            },
            |c| branch(c, inst, best, k + 1, cap, value, spawn_depth - 1),
        );
    } else {
        branch(c, inst, best, k + 1, cap, value, spawn_depth - 1);
    }
}

/// Solves the instance in parallel; `spawn_depth` bounds the spawning
/// prefix of the search tree.
pub fn knapsack_par<C: Fork>(c: &mut C, inst: &Instance, spawn_depth: usize) -> u64 {
    let best = AtomicU64::new(0);
    branch(c, inst, &best, 0, inst.capacity, 0, spawn_depth);
    best.load(Ordering::Relaxed)
}

/// Exact dynamic-programming reference (pseudo-polynomial).
pub fn knapsack_dp(inst: &Instance) -> u64 {
    let cap = inst.capacity as usize;
    let mut dp = vec![0u64; cap + 1];
    for item in &inst.items {
        let w = item.weight as usize;
        if w > cap {
            continue;
        }
        for c in (w..=cap).rev() {
            dp[c] = dp[c].max(dp[c - w] + item.value);
        }
    }
    dp[cap]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    #[test]
    fn tiny_hand_instance() {
        // values/weights chosen so greedy-by-density is suboptimal.
        let items = vec![
            Item {
                value: 60,
                weight: 10,
            },
            Item {
                value: 100,
                weight: 20,
            },
            Item {
                value: 120,
                weight: 30,
            },
        ];
        let inst = Instance {
            items,
            capacity: 50,
        };
        assert_eq!(knapsack_dp(&inst), 220);
        let mut e = SerialExecutor::new();
        assert_eq!(e.run(|c| knapsack_par(c, &inst, 3)), 220);
    }

    #[test]
    fn random_instances_match_dp() {
        let mut e = SerialExecutor::new();
        for seed in 1..8u64 {
            let inst = Instance::random(18, seed);
            let want = knapsack_dp(&inst);
            for depth in [0, 4, 18] {
                assert_eq!(
                    e.run(|c| knapsack_par(c, &inst, depth)),
                    want,
                    "seed={seed} depth={depth}"
                );
            }
        }
    }

    #[test]
    fn parallel_on_wool_pool() {
        let inst = Instance::random(22, 1234);
        let want = knapsack_dp(&inst);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        assert_eq!(pool.run(|h| knapsack_par(h, &inst, 10)), want);
    }

    #[test]
    fn bound_is_admissible() {
        let inst = Instance::random(15, 5);
        let exact = knapsack_dp(&inst);
        assert!(upper_bound(&inst, 0, inst.capacity, 0) >= exact);
    }
}
