//! Jacobi heat diffusion on a 2D grid: the paper's "periodic
//! serialization points" pattern (§II) in computational form — every
//! time step is one parallel region separated by a serial swap, so a
//! `T`-step simulation is `T` back-to-back regions.

use wool_core::Fork;

/// A 2D grid with fixed boundary values.
#[derive(Debug, Clone)]
pub struct Grid {
    /// Row count (including boundary rows).
    pub rows: usize,
    /// Column count (including boundary columns).
    pub cols: usize,
    /// Row-major cell values.
    pub data: Vec<f64>,
}

impl Grid {
    /// A grid with a hot left edge and cold interior/edges.
    pub fn hot_edge(rows: usize, cols: usize) -> Grid {
        assert!(rows >= 3 && cols >= 3);
        let mut data = vec![0.0; rows * cols];
        for r in 0..rows {
            data[r * cols] = 100.0;
        }
        Grid { rows, cols, data }
    }

    /// Cell value at (r, c).
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Sum of all cells (checksum).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Shared-output row writer (each task owns disjoint rows).
struct Rows {
    ptr: *mut f64,
    cols: usize,
}
// SAFETY: tasks write disjoint rows; the join orders writes before reads.
unsafe impl Sync for Rows {}
unsafe impl Send for Rows {}

impl Rows {
    /// Exclusive access to interior row `r`.
    ///
    /// # Safety
    /// At most one live caller per row.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, r: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.ptr.add(r * self.cols), self.cols)
    }
}

/// One Jacobi step: `next[r][c] = mean of the four neighbors of cur`.
/// Interior rows are computed as one task each (flat spawn, like `mm`).
pub fn step_par<C: Fork>(c: &mut C, cur: &Grid, next: &mut Grid) {
    assert_eq!((cur.rows, cur.cols), (next.rows, next.cols));
    next.data.copy_from_slice(&cur.data); // boundaries carry over
    let rows = Rows {
        ptr: next.data.as_mut_ptr(),
        cols: cur.cols,
    };
    let interior = cur.rows - 2;
    c.for_each_spawn(interior, &|_c, i| {
        let r = i + 1;
        // SAFETY: one task per interior row (see Rows).
        let out = unsafe { rows.row(r) };
        #[allow(clippy::needless_range_loop)] // indexing two grids in lockstep
        for cc in 1..cur.cols - 1 {
            out[cc] = 0.25
                * (cur.at(r - 1, cc) + cur.at(r + 1, cc) + cur.at(r, cc - 1) + cur.at(r, cc + 1));
        }
    });
}

/// Runs `steps` Jacobi iterations in parallel regions, returning the
/// final grid.
pub fn simulate_par<C: Fork>(c: &mut C, mut cur: Grid, steps: usize) -> Grid {
    let mut next = cur.clone();
    for _ in 0..steps {
        step_par(c, &cur, &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Sequential reference simulation.
pub fn simulate_serial(mut cur: Grid, steps: usize) -> Grid {
    let mut next = cur.clone();
    for _ in 0..steps {
        next.data.copy_from_slice(&cur.data);
        for r in 1..cur.rows - 1 {
            for c in 1..cur.cols - 1 {
                next.data[r * cur.cols + c] = 0.25
                    * (cur.at(r - 1, c) + cur.at(r + 1, c) + cur.at(r, c - 1) + cur.at(r, c + 1));
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    fn close(a: &Grid, b: &Grid) -> bool {
        a.data
            .iter()
            .zip(&b.data)
            .all(|(x, y)| (x - y).abs() < 1e-12)
    }

    #[test]
    fn parallel_matches_serial() {
        let g = Grid::hot_edge(20, 33);
        let want = simulate_serial(g.clone(), 25);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| simulate_par(c, g, 25));
        assert!(close(&got, &want));
    }

    #[test]
    fn heat_flows_rightward() {
        let g = Grid::hot_edge(10, 10);
        let after = simulate_serial(g.clone(), 50);
        // The cell next to the hot edge warms up; the far side stays
        // cooler.
        assert!(after.at(5, 1) > 10.0);
        assert!(after.at(5, 8) < after.at(5, 1));
        // Boundaries never change.
        assert_eq!(after.at(5, 0), 100.0);
        assert_eq!(after.at(0, 5), 0.0);
    }

    #[test]
    fn on_wool_pool_many_regions() {
        let g = Grid::hot_edge(18, 18);
        let want = simulate_serial(g.clone(), 40);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let got = pool.run(|h| simulate_par(h, g, 40));
        assert!(close(&got, &want));
        // 40 steps x 16 interior rows => 40 regions of 15 spawns each.
        assert_eq!(pool.last_report().unwrap().total.spawns, 40 * 15);
    }

    #[test]
    fn zero_steps_is_identity() {
        let g = Grid::hot_edge(5, 5);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| simulate_par(c, g.clone(), 0));
        assert!(close(&got, &g));
    }
}
