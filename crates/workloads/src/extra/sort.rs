//! Parallel sorting: merge sort (stable structure, predictable tree)
//! and quicksort (data-dependent, unbalanced tree) — the two classic
//! fork-join sorts from the Cilk lineage.

use wool_core::Fork;

/// Grain below which sorting falls back to the standard library.
pub const SORT_GRAIN: usize = 512;

/// Parallel merge sort of `xs` (requires a scratch buffer of equal
/// length).
pub fn merge_sort<C: Fork>(c: &mut C, xs: &mut [u64], scratch: &mut [u64]) {
    assert_eq!(xs.len(), scratch.len());
    if xs.len() <= SORT_GRAIN {
        xs.sort_unstable();
        return;
    }
    let mid = xs.len() / 2;
    {
        let (xl, xr) = xs.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        c.fork(|c| merge_sort(c, xl, sl), |c| merge_sort(c, xr, sr));
    }
    merge_into(xs, mid, scratch);
}

/// Merges `xs[..mid]` and `xs[mid..]` (each sorted) through `scratch`.
fn merge_into(xs: &mut [u64], mid: usize, scratch: &mut [u64]) {
    scratch[..xs.len()].copy_from_slice(xs);
    let (left, right) = scratch[..xs.len()].split_at(mid);
    let (mut i, mut j) = (0, 0);
    for slot in xs.iter_mut() {
        if j >= right.len() || (i < left.len() && left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

/// Parallel quicksort of `xs` (in place; Hoare-style partition around a
/// median-of-three pivot).
pub fn quick_sort<C: Fork>(c: &mut C, xs: &mut [u64]) {
    if xs.len() <= SORT_GRAIN {
        xs.sort_unstable();
        return;
    }
    let p = partition(xs);
    let (lo, hi) = xs.split_at_mut(p);
    c.fork(|c| quick_sort(c, lo), |c| quick_sort(c, &mut hi[1..]));
}

/// Lomuto partition with median-of-three pivot selection; returns the
/// pivot's final index.
fn partition(xs: &mut [u64]) -> usize {
    let n = xs.len();
    // Median of first/middle/last into position n-1.
    let (a, b, c) = (0, n / 2, n - 1);
    if xs[a] > xs[b] {
        xs.swap(a, b);
    }
    if xs[b] > xs[c] {
        xs.swap(b, c);
    }
    if xs[a] > xs[b] {
        xs.swap(a, b);
    }
    xs.swap(b, n - 1);
    let pivot = xs[n - 1];
    let mut store = 0;
    for i in 0..n - 1 {
        if xs[i] < pivot {
            xs.swap(i, store);
            store += 1;
        }
    }
    xs.swap(store, n - 1);
    store
}

/// Deterministic pseudo-random input for sorting benchmarks.
pub fn random_input(len: usize, seed: u64) -> Vec<u64> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    fn check_sorted(mut input: Vec<u64>, sort: impl FnOnce(&mut [u64])) {
        let mut expect = input.clone();
        expect.sort_unstable();
        sort(&mut input);
        assert_eq!(input, expect);
    }

    #[test]
    fn merge_sort_small_and_large() {
        let mut e = SerialExecutor::new();
        for len in [0, 1, 2, SORT_GRAIN, SORT_GRAIN + 1, 10_000] {
            let data = random_input(len, 42);
            check_sorted(data, |xs| {
                let mut scratch = vec![0; xs.len()];
                e.run(|c| merge_sort(c, xs, &mut scratch));
            });
        }
    }

    #[test]
    fn quick_sort_small_and_large() {
        let mut e = SerialExecutor::new();
        for len in [0, 1, 3, SORT_GRAIN + 7, 10_000] {
            let data = random_input(len, 7);
            check_sorted(data, |xs| e.run(|c| quick_sort(c, xs)));
        }
    }

    #[test]
    fn quick_sort_adversarial_inputs() {
        let mut e = SerialExecutor::new();
        // Already sorted, reversed, constant.
        let n = 4 * SORT_GRAIN;
        check_sorted((0..n as u64).collect(), |xs| e.run(|c| quick_sort(c, xs)));
        check_sorted((0..n as u64).rev().collect(), |xs| {
            e.run(|c| quick_sort(c, xs))
        });
        check_sorted(vec![5; n], |xs| e.run(|c| quick_sort(c, xs)));
    }

    #[test]
    fn parallel_on_wool_pool() {
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let data = random_input(50_000, 99);
        let mut expect = data.clone();
        expect.sort_unstable();

        let mut a = data.clone();
        let mut scratch = vec![0; a.len()];
        pool.run(|h| merge_sort(h, &mut a, &mut scratch));
        assert_eq!(a, expect);

        let mut b = data;
        pool.run(|h| quick_sort(h, &mut b));
        assert_eq!(b, expect);
    }
}
