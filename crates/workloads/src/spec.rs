//! Workload specifications: Table I's rows as data.
//!
//! Each [`WorkloadSpec`] names a benchmark, its parameters and its
//! repetition count, exactly as the paper's Table I lists them. The
//! bench harness enumerates these to regenerate the tables and figures;
//! `reps` can be scaled down for quick runs (`scale_reps`).

use wool_core::{Fork, Job};

use crate::cholesky::{cholesky, spd_random, QTree};
use crate::fib::fib;
use crate::mm::{mm_par, Matrix};
use crate::ssf::{fib_string, ssf_par};
use crate::stress::stress;

/// Which benchmark program a spec runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// fib(n): `params = (n, 0)`.
    Fib,
    /// cholesky(rows, nonzeros).
    Cholesky,
    /// mm(rows).
    Mm,
    /// ssf(n) over the Fibonacci string s_n.
    Ssf,
    /// stress(height) with the given leaf iterations.
    Stress,
}

/// One Table I row: a program, its parameters, and the repetition count
/// used to reach a measurable execution time.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Program.
    pub kind: WorkloadKind,
    /// First parameter (n / rows / height).
    pub p1: usize,
    /// Second parameter (nonzeros for cholesky, leaf iterations for
    /// stress, 0 otherwise).
    pub p2: usize,
    /// Repetitions of the kernel within one run.
    pub reps: u64,
}

impl WorkloadSpec {
    /// Human-readable name, e.g. `cholesky(500,2k)x1024`.
    pub fn name(&self) -> String {
        let base = match self.kind {
            WorkloadKind::Fib => format!("fib({})", self.p1),
            WorkloadKind::Cholesky => format!("cholesky({},{})", self.p1, self.p2),
            WorkloadKind::Mm => format!("mm({})", self.p1),
            WorkloadKind::Ssf => format!("ssf({})", self.p1),
            WorkloadKind::Stress => format!("stress({},{})", self.p1, self.p2),
        };
        format!("{base}x{}", self.reps)
    }

    /// The paper's short program name.
    pub fn program(&self) -> &'static str {
        match self.kind {
            WorkloadKind::Fib => "fib",
            WorkloadKind::Cholesky => "cholesky",
            WorkloadKind::Mm => "mm",
            WorkloadKind::Ssf => "ssf",
            WorkloadKind::Stress => "stress",
        }
    }

    /// Returns a copy with repetitions scaled by `factor` (at least 1).
    pub fn scale_reps(&self, factor: f64) -> WorkloadSpec {
        let reps = ((self.reps as f64 * factor).round() as u64).max(1);
        WorkloadSpec {
            reps,
            ..self.clone()
        }
    }

    /// Builds the runnable job (pre-generating input data so that setup
    /// cost stays outside the measured region).
    pub fn job(&self) -> WorkloadJob {
        let data = match self.kind {
            WorkloadKind::Cholesky => {
                let m = spd_random(self.p1, self.p2, 0xC0DE + self.p1 as u64);
                JobData::Cholesky {
                    size: m.size,
                    tree: m.tree,
                }
            }
            WorkloadKind::Mm => JobData::Mm {
                a: Matrix::random(self.p1, 11),
                b: Matrix::random(self.p1, 13),
            },
            WorkloadKind::Ssf => JobData::Ssf {
                s: fib_string(self.p1 as u32),
            },
            _ => JobData::None,
        };
        WorkloadJob {
            kind: self.kind,
            p1: self.p1,
            p2: self.p2,
            reps: self.reps,
            data,
        }
    }
}

/// Pre-generated input data for a job.
enum JobData {
    None,
    Cholesky { size: usize, tree: QTree },
    Mm { a: Matrix, b: Matrix },
    Ssf { s: Vec<u8> },
}

/// A runnable workload: `reps` repetitions of the kernel, serialized on
/// the root worker (the paper's program structure).
pub struct WorkloadJob {
    kind: WorkloadKind,
    p1: usize,
    p2: usize,
    reps: u64,
    data: JobData,
}

impl Job<f64> for WorkloadJob {
    fn call<C: Fork>(self, ctx: &mut C) -> f64 {
        let mut check = 0.0f64;
        match (self.kind, self.data) {
            (WorkloadKind::Fib, _) => {
                for _ in 0..self.reps {
                    check += fib(ctx, self.p1 as u64) as f64;
                }
            }
            (WorkloadKind::Stress, _) => {
                check += stress(ctx, self.p1 as u32, self.p2 as u64, self.reps) as f64 % 1e9;
            }
            (WorkloadKind::Cholesky, JobData::Cholesky { size, tree }) => {
                for _ in 0..self.reps {
                    let a = tree.clone();
                    let l = cholesky(ctx, size, a);
                    check += l.abs_sum();
                }
            }
            (WorkloadKind::Mm, JobData::Mm { a, b }) => {
                for _ in 0..self.reps {
                    let c = mm_par(ctx, &a, &b);
                    check += c.checksum();
                }
            }
            (WorkloadKind::Ssf, JobData::Ssf { s }) => {
                for _ in 0..self.reps {
                    let r = ssf_par(ctx, &s, 1);
                    check += r.checksum() as f64 % 1e9;
                }
            }
            _ => unreachable!("job data matches kind by construction"),
        }
        check
    }
}

/// All Table I workload rows, in table order.
pub fn all_table1_specs() -> Vec<WorkloadSpec> {
    use WorkloadKind::*;
    let mut v = Vec::new();
    // cholesky: (rows, nnz) x reps
    for (p1, p2, reps) in [
        (250, 1000, 4096),
        (500, 2000, 1024),
        (1000, 4000, 256),
        (2000, 8000, 64),
        (4000, 16000, 16),
    ] {
        v.push(WorkloadSpec {
            kind: Cholesky,
            p1,
            p2,
            reps,
        });
    }
    // mm: rows x reps
    for (p1, reps) in [(64, 16384), (128, 2048), (256, 256), (512, 32)] {
        v.push(WorkloadSpec {
            kind: Mm,
            p1,
            p2: 0,
            reps,
        });
    }
    // ssf: n x reps
    for (p1, reps) in [(12, 16384), (13, 8192), (14, 4096), (15, 2048), (16, 1024)] {
        v.push(WorkloadSpec {
            kind: Ssf,
            p1,
            p2: 0,
            reps,
        });
    }
    // stress leaf 256 iterations: height x reps
    for (p1, reps) in [(7, 131072), (8, 65536), (9, 32768), (10, 16384), (11, 8192)] {
        v.push(WorkloadSpec {
            kind: Stress,
            p1,
            p2: 256,
            reps,
        });
    }
    // stress leaf 4096 iterations: height x reps
    for (p1, reps) in [(3, 131072), (4, 65536), (5, 32768), (6, 16384), (7, 8192)] {
        v.push(WorkloadSpec {
            kind: Stress,
            p1,
            p2: 4096,
            reps,
        });
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Executor;
    use ws_baseline::SerialExecutor;

    #[test]
    fn table1_has_24_rows() {
        // 5 cholesky + 4 mm + 5 ssf + 5 + 5 stress = 24 (the paper's
        // Table I row count).
        assert_eq!(all_table1_specs().len(), 24);
    }

    #[test]
    fn names_are_descriptive() {
        let specs = all_table1_specs();
        assert_eq!(specs[0].name(), "cholesky(250,1000)x4096");
        assert!(specs.iter().any(|s| s.name() == "mm(64)x16384"));
        assert!(specs.iter().any(|s| s.name() == "stress(7,256)x131072"));
    }

    #[test]
    fn scale_reps_floors_at_one() {
        let s = all_table1_specs()[0].scale_reps(0.000001);
        assert_eq!(s.reps, 1);
        let s2 = all_table1_specs()[0].scale_reps(0.5);
        assert_eq!(s2.reps, 2048);
    }

    #[test]
    fn jobs_run_and_agree_across_executors() {
        // Tiny versions of each kind: serial and wool must agree.
        let tiny = [
            WorkloadSpec {
                kind: WorkloadKind::Fib,
                p1: 15,
                p2: 0,
                reps: 2,
            },
            WorkloadSpec {
                kind: WorkloadKind::Cholesky,
                p1: 64,
                p2: 200,
                reps: 2,
            },
            WorkloadSpec {
                kind: WorkloadKind::Mm,
                p1: 24,
                p2: 0,
                reps: 2,
            },
            WorkloadSpec {
                kind: WorkloadKind::Ssf,
                p1: 9,
                p2: 0,
                reps: 2,
            },
            WorkloadSpec {
                kind: WorkloadKind::Stress,
                p1: 4,
                p2: 32,
                reps: 3,
            },
        ];
        let mut serial = SerialExecutor::new();
        let mut pool: wool_core::Pool = wool_core::Pool::new(2);
        for spec in &tiny {
            let a = serial.run_job(spec.job());
            let b = pool.run_job(spec.job());
            assert_eq!(a, b, "{}", spec.name());
        }
    }
}
