//! Dense matrix multiply (§IV-A, "taken from the Wool distribution").
//!
//! "Dense matrix multiply (not blocked) of square matrices with the
//! outermost loop parallelized." One task is spawned per row of the
//! output except the first, which the spawning worker computes as the
//! direct call — exactly the structure the paper's Table IV model
//! analyzes ("63 tasks are spawned each of which will do one iteration
//! of the outermost loop" for n = 64).

use wool_core::Fork;

/// A square matrix in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Matrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Deterministic pseudo-random matrix of side `n`.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to [0, 1).
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let data = (0..n * n).map(|_| next()).collect();
        Matrix { n, data }
    }

    /// Matrix side length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element (i, j).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Sum of all elements (checksum for cross-executor validation).
    pub fn checksum(&self) -> f64 {
        self.data.iter().sum()
    }
}

/// Shared-output writer: hands each task exclusive access to one row.
///
/// SAFETY rationale: `for_each_spawn`/`par_for` call `body` exactly once
/// per row index, so writes are disjoint; the join at the end of the
/// loop orders all writes before the owner reads the result.
struct RowWriter {
    ptr: *mut f64,
    n: usize,
}
unsafe impl Sync for RowWriter {}
unsafe impl Send for RowWriter {}

impl RowWriter {
    /// Exclusive slice for row `i`.
    ///
    /// # Safety
    /// At most one live caller per row index.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row(&self, i: usize) -> &mut [f64] {
        std::slice::from_raw_parts_mut(self.ptr.add(i * self.n), self.n)
    }
}

/// Computes one row of `a * b` into `out_row`.
#[inline]
fn mm_row(a_row: &[f64], b: &Matrix, out_row: &mut [f64]) {
    let n = b.n;
    out_row.fill(0.0);
    // i-k-j loop order: stream through b rows, vectorizable inner loop.
    for (k, &aik) in a_row.iter().enumerate() {
        let b_row = b.row(k);
        for j in 0..n {
            out_row[j] += aik * b_row[j];
        }
    }
    let _ = n;
}

/// Parallel dense multiply: spawns one task per output row (minus the
/// direct call), the paper's `mm` structure.
pub fn mm_par<C: Fork>(c: &mut C, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut out = Matrix::zeros(n);
    let w = RowWriter {
        ptr: out.data.as_mut_ptr(),
        n,
    };
    c.for_each_spawn(n, &|_c, i| {
        // SAFETY: one task per row index (see RowWriter docs).
        let out_row = unsafe { w.row(i) };
        mm_row(a.row(i), b, out_row);
    });
    out
}

/// Sequential reference multiply (no task constructs): the `T_S`
/// baseline.
pub fn mm_serial(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.n, b.n);
    let n = a.n;
    let mut out = Matrix::zeros(n);
    for i in 0..n {
        let (head, tail) = out.data.split_at_mut((i + 1) * n);
        let _ = tail;
        let out_row = &mut head[i * n..];
        mm_row(a.row(i), b, out_row);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    fn assert_close(a: &Matrix, b: &Matrix) {
        assert_eq!(a.n, b.n);
        for i in 0..a.n {
            for j in 0..a.n {
                let (x, y) = (a.at(i, j), b.at(i, j));
                assert!((x - y).abs() < 1e-9, "({i},{j}): {x} vs {y}");
            }
        }
    }

    #[test]
    fn identity_times_anything() {
        let n = 8;
        let mut id = Matrix::zeros(n);
        for i in 0..n {
            id.data[i * n + i] = 1.0;
        }
        let a = Matrix::random(n, 42);
        assert_close(&mm_serial(&id, &a), &a);
        assert_close(&mm_serial(&a, &id), &a);
    }

    #[test]
    fn known_product() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Matrix {
            n: 2,
            data: vec![1.0, 2.0, 3.0, 4.0],
        };
        let b = Matrix {
            n: 2,
            data: vec![5.0, 6.0, 7.0, 8.0],
        };
        let c = mm_serial(&a, &b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn parallel_matches_serial_reference() {
        let a = Matrix::random(33, 1);
        let b = Matrix::random(33, 2);
        let want = mm_serial(&a, &b);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| mm_par(c, &a, &b));
        assert_close(&got, &want);
    }

    #[test]
    fn parallel_on_wool_pool() {
        let a = Matrix::random(48, 3);
        let b = Matrix::random(48, 4);
        let want = mm_serial(&a, &b);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let got = pool.run(|h| mm_par(h, &a, &b));
        assert_close(&got, &want);
        // n-1 spawned tasks, one direct call.
        assert_eq!(pool.last_report().unwrap().total.spawns, 47);
    }

    #[test]
    fn parallel_on_baselines() {
        let a = Matrix::random(32, 5);
        let b = Matrix::random(32, 6);
        let want = mm_serial(&a, &b);
        let mut tbb = ws_baseline::tbb_like(2);
        assert_close(&tbb.run(|c| mm_par(c, &a, &b)), &want);
        let mut omp = ws_baseline::omp_like(2);
        assert_close(&omp.run(|c| mm_par(c, &a, &b)), &want);
    }

    #[test]
    fn checksum_is_stable() {
        let a = Matrix::random(16, 9);
        assert_eq!(a.checksum(), Matrix::random(16, 9).checksum());
    }
}
