//! Sub-string finder (§IV-A, "based on the Sub String Finder example
//! from the TBB distribution").
//!
//! "For each position in a string, it finds from which other position
//! the longest identical substring starts. The string is given by the
//! recursion s_n = s_{n-1} s_{n-2} with s_0 = \"a\" and s_1 = \"b\"
//! where n is the parameter in the workload."
//!
//! The algorithm is the TBB example's: for every position `i`, scan all
//! other positions `j` and count how many characters match starting at
//! `i` and `j`; record the `j` with the longest match. Positions are
//! processed in parallel with recursive range splitting (the TBB
//! `parallel_for` idiom).

use crate::loops::par_for;
use wool_core::Fork;

/// Builds the Fibonacci string `s_n` (`s_0 = "a"`, `s_1 = "b"`,
/// `s_n = s_{n-1} s_{n-2}`).
pub fn fib_string(n: u32) -> Vec<u8> {
    match n {
        0 => b"a".to_vec(),
        1 => b"b".to_vec(),
        _ => {
            let mut a: Vec<u8> = b"a".to_vec();
            let mut b: Vec<u8> = b"b".to_vec();
            // Invariant: a = s_{k-1}, b = s_k.
            for _ in 2..=n {
                let mut next = Vec::with_capacity(a.len() + b.len());
                next.extend_from_slice(&b);
                next.extend_from_slice(&a);
                a = b;
                b = next;
            }
            b
        }
    }
}

/// Length of `s_n` without building it: `Fib(n+1)` with `Fib(1)=1`,
/// `Fib(2)=1`.
pub fn fib_string_len(n: u32) -> usize {
    let (mut a, mut b) = (1usize, 1usize); // |s_0|, |s_1|
    for _ in 2..=n {
        let next = a + b;
        a = b;
        b = next;
    }
    if n == 0 {
        a
    } else {
        b
    }
}

/// Match length of the two suffixes starting at `i` and `j`.
#[inline]
fn match_len(s: &[u8], i: usize, j: usize) -> usize {
    let mut k = 0;
    let n = s.len();
    while i + k < n && j + k < n && s[i + k] == s[j + k] {
        k += 1;
    }
    k
}

/// For one position `i`: the longest match with any other position.
/// Returns `(best_j, best_len)`.
fn best_for(s: &[u8], i: usize) -> (usize, usize) {
    let mut best = (i, 0usize);
    for j in 0..s.len() {
        if j == i {
            continue;
        }
        let m = match_len(s, i, j);
        if m > best.1 {
            best = (j, m);
        }
    }
    best
}

/// Shared-output writer over the per-position results.
///
/// SAFETY rationale: each index is written by exactly one loop body
/// invocation; the loop joins before the owner reads.
struct OutWriter {
    max: *mut usize,
    pos: *mut usize,
}
unsafe impl Sync for OutWriter {}
unsafe impl Send for OutWriter {}

impl OutWriter {
    /// Records the result for position `i`.
    ///
    /// # Safety
    /// At most one caller per index.
    unsafe fn set(&self, i: usize, m: usize, p: usize) {
        *self.max.add(i) = m;
        *self.pos.add(i) = p;
    }
}

/// Result of a sub-string-finder run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SsfResult {
    /// `max[i]`: length of the longest match for position `i`.
    pub max: Vec<usize>,
    /// `pos[i]`: the position it matches.
    pub pos: Vec<usize>,
}

impl SsfResult {
    /// Order-independent checksum for cross-executor validation.
    pub fn checksum(&self) -> u64 {
        self.max
            .iter()
            .zip(&self.pos)
            .enumerate()
            .fold(0u64, |acc, (i, (&m, &p))| {
                acc.wrapping_add((i as u64 + 1).wrapping_mul(m as u64 * 31 + p as u64))
            })
    }
}

/// Parallel sub-string finder over `s`, splitting the position range
/// down to `grain` positions per task.
pub fn ssf_par<C: Fork>(c: &mut C, s: &[u8], grain: usize) -> SsfResult {
    let n = s.len();
    let mut out = SsfResult {
        max: vec![0; n],
        pos: vec![0; n],
    };
    let w = OutWriter {
        max: out.max.as_mut_ptr(),
        pos: out.pos.as_mut_ptr(),
    };
    par_for(c, 0, n, grain, &|_c, i| {
        let (p, m) = best_for(s, i);
        // SAFETY: index `i` is visited exactly once (see OutWriter).
        // (The method call captures `&w`, keeping the raw pointers
        // behind the Sync wrapper rather than as disjoint fields.)
        unsafe { w.set(i, m, p) };
    });
    out
}

/// Sequential reference.
pub fn ssf_serial(s: &[u8]) -> SsfResult {
    let n = s.len();
    let mut out = SsfResult {
        max: vec![0; n],
        pos: vec![0; n],
    };
    for i in 0..n {
        let (p, m) = best_for(s, i);
        out.max[i] = m;
        out.pos[i] = p;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    #[test]
    fn fib_string_construction() {
        assert_eq!(fib_string(0), b"a");
        assert_eq!(fib_string(1), b"b");
        assert_eq!(fib_string(2), b"ba");
        assert_eq!(fib_string(3), b"bab");
        assert_eq!(fib_string(4), b"babba");
        assert_eq!(fib_string(5), b"babbabab");
    }

    #[test]
    fn fib_string_len_matches() {
        for n in 0..20 {
            assert_eq!(fib_string_len(n), fib_string(n).len(), "n={n}");
        }
    }

    #[test]
    fn match_len_basics() {
        let s = b"abcabx";
        assert_eq!(match_len(s, 0, 3), 2); // "ab" == "ab", then c != x
        assert_eq!(match_len(s, 0, 0), 6);
        assert_eq!(match_len(s, 5, 2), 0);
    }

    #[test]
    fn known_small_case() {
        // "baba": position 0 ("baba") matches position 2 ("ba") len 2.
        let s = b"baba";
        let r = ssf_serial(s);
        assert_eq!(r.max[0], 2);
        assert_eq!(r.pos[0], 2);
        // position 1 ("aba") vs position 3 ("a"): len 1.
        assert_eq!(r.max[1], 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = fib_string(10);
        let want = ssf_serial(&s);
        let mut e = SerialExecutor::new();
        let got = e.run(|c| ssf_par(c, &s, 4));
        assert_eq!(got, want);
    }

    #[test]
    fn parallel_on_wool_pool() {
        let s = fib_string(11);
        let want = ssf_serial(&s);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let got = pool.run(|h| ssf_par(h, &s, 8));
        assert_eq!(got, want);
        assert_eq!(got.checksum(), want.checksum());
    }

    #[test]
    fn checksum_differs_for_different_strings() {
        let a = ssf_serial(&fib_string(8));
        let b = ssf_serial(&fib_string(9));
        assert_ne!(a.checksum(), b.checksum());
    }
}
