//! Sparse Cholesky factorization on a quadtree matrix (§IV-A, "taken
//! from the Cilk-5 distribution").
//!
//! "Sparse matrix factorization on a random square matrix using
//! explicit nested tasks. Parameters are the number of matrix rows and
//! the number of nonzero elements."
//!
//! As in the Cilk-5 benchmark, the matrix is a quadtree: interior nodes
//! have four optional quadrants (`None` = all-zero block), leaves are
//! dense `BLOCK x BLOCK` blocks. The factorization `A = L L^T` recurses
//! on quadrants:
//!
//! ```text
//! L00 = chol(A00)
//! L10 = A10 * L00^-T            (triangular back-substitution)
//! L11 = chol(A11 - L10 * L10^T)
//! ```
//!
//! The parallelism lives inside `backsub` and `mul_subtract`, whose
//! independent quadrant computations are forked — giving the deep,
//! irregular task tree that makes cholesky the most steal-intensive
//! workload in Table I.

use wool_core::Fork;

/// Dense leaf block side. The Cilk-5 benchmark recurses to very small
/// blocks — that is what makes cholesky the finest-grained workload in
/// Table I (G_T around 200 cycles); 4x4 leaves reproduce that regime.
pub const BLOCK: usize = 4;
const B2: usize = BLOCK * BLOCK;

/// A dense leaf block, row-major.
pub type Block = [f64; B2];

/// A quadtree matrix of implicit power-of-two size.
///
/// Quadrants are ordered `[q00, q01, q10, q11]` (row-major blocks);
/// `None` quadrants are identically zero.
#[derive(Debug, Clone)]
pub enum QTree {
    /// A dense `BLOCK x BLOCK` block.
    Leaf(Box<Block>),
    /// Four optional quadrants of half the size.
    Node(Box<[Option<QTree>; 4]>),
}

impl QTree {
    /// An all-zero leaf.
    fn zero_leaf() -> QTree {
        QTree::Leaf(Box::new([0.0; B2]))
    }

    /// An all-zero tree of side `s`.
    fn zero(s: usize) -> QTree {
        if s == BLOCK {
            QTree::zero_leaf()
        } else {
            QTree::Node(Box::new([None, None, None, None]))
        }
    }

    /// Number of explicitly stored nonzero elements.
    pub fn nonzeros(&self) -> usize {
        match self {
            QTree::Leaf(b) => b.iter().filter(|&&x| x != 0.0).count(),
            QTree::Node(q) => q.iter().flatten().map(|t| t.nonzeros()).sum(),
        }
    }

    /// Number of allocated leaf blocks.
    pub fn blocks(&self) -> usize {
        match self {
            QTree::Leaf(_) => 1,
            QTree::Node(q) => q.iter().flatten().map(|t| t.blocks()).sum(),
        }
    }

    /// Sum of absolute values (cross-executor checksum).
    pub fn abs_sum(&self) -> f64 {
        match self {
            QTree::Leaf(b) => b.iter().map(|x| x.abs()).sum(),
            QTree::Node(q) => q.iter().flatten().map(|t| t.abs_sum()).sum(),
        }
    }

    /// Writes the tree of side `s` into `dense` (side `n >= s` row-major
    /// buffer) at offset `(r0, c0)`.
    fn fill_dense(&self, s: usize, r0: usize, c0: usize, n: usize, dense: &mut [f64]) {
        match self {
            QTree::Leaf(b) => {
                for r in 0..BLOCK {
                    for c in 0..BLOCK {
                        dense[(r0 + r) * n + c0 + c] = b[r * BLOCK + c];
                    }
                }
            }
            QTree::Node(q) => {
                let h = s / 2;
                let offs = [(0, 0), (0, h), (h, 0), (h, h)];
                for (t, (dr, dc)) in q.iter().zip(offs) {
                    if let Some(t) = t {
                        t.fill_dense(h, r0 + dr, c0 + dc, n, dense);
                    }
                }
            }
        }
    }

    /// Converts to a dense `s x s` row-major matrix.
    pub fn to_dense(&self, s: usize) -> Vec<f64> {
        let mut d = vec![0.0; s * s];
        self.fill_dense(s, 0, 0, s, &mut d);
        d
    }

    /// Builds a tree of side `s` from a dense row-major `s x s` matrix,
    /// dropping all-zero blocks.
    pub fn from_dense(s: usize, r0: usize, c0: usize, n: usize, dense: &[f64]) -> Option<QTree> {
        if s == BLOCK {
            let mut b = Box::new([0.0; B2]);
            let mut any = false;
            for r in 0..BLOCK {
                for c in 0..BLOCK {
                    let v = dense[(r0 + r) * n + c0 + c];
                    b[r * BLOCK + c] = v;
                    any |= v != 0.0;
                }
            }
            any.then_some(QTree::Leaf(b))
        } else {
            let h = s / 2;
            let q00 = QTree::from_dense(h, r0, c0, n, dense);
            let q01 = QTree::from_dense(h, r0, c0 + h, n, dense);
            let q10 = QTree::from_dense(h, r0 + h, c0, n, dense);
            let q11 = QTree::from_dense(h, r0 + h, c0 + h, n, dense);
            if q00.is_none() && q01.is_none() && q10.is_none() && q11.is_none() {
                None
            } else {
                Some(QTree::Node(Box::new([q00, q01, q10, q11])))
            }
        }
    }
}

/// A sparse symmetric positive-definite test matrix (lower triangle
/// stored), as the cholesky workload's input.
pub struct SpdMatrix {
    /// Quadtree side (power of two, >= BLOCK).
    pub size: usize,
    /// Logical dimension (rows requested).
    pub n: usize,
    /// Lower-triangular storage of A.
    pub tree: QTree,
}

/// Generates a random sparse SPD matrix with `n` rows and roughly
/// `nnz` off-diagonal nonzeros (paper parameters, e.g. `250, 1k`).
///
/// SPD is guaranteed by strict diagonal dominance: `a_ii` exceeds the
/// sum of absolute off-diagonal entries in row/column `i`.
pub fn spd_random(n: usize, nnz: usize, seed: u64) -> SpdMatrix {
    let size = n.next_power_of_two().max(BLOCK);
    let mut dense = vec![0.0f64; size * size];
    let mut rowsum = vec![0.0f64; size];

    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < nnz && attempts < nnz * 20 {
        attempts += 1;
        if n < 2 {
            break;
        }
        let i = (next() as usize) % n;
        let j = (next() as usize) % n;
        let (i, j) = if i > j { (i, j) } else { (j, i) };
        if i == j || dense[i * size + j] != 0.0 {
            continue;
        }
        let v = ((next() >> 11) as f64 / (1u64 << 53) as f64) - 0.5;
        dense[i * size + j] = v;
        rowsum[i] += v.abs();
        rowsum[j] += v.abs();
        placed += 1;
    }
    // Dominant diagonal (1.0 on padding rows keeps the factor defined).
    for i in 0..size {
        dense[i * size + i] = 1.0 + 2.0 * rowsum[i];
    }
    let tree = QTree::from_dense(size, 0, 0, size, &dense).expect("diagonal is nonzero");
    SpdMatrix { size, n, tree }
}

// ---------------------------------------------------------------------
// dense leaf kernels
// ---------------------------------------------------------------------

/// In-place dense Cholesky of a leaf block (lower triangle; the strict
/// upper triangle is zeroed).
fn leaf_cholesky(a: &mut Block) {
    for j in 0..BLOCK {
        let mut d = a[j * BLOCK + j];
        for k in 0..j {
            d -= a[j * BLOCK + k] * a[j * BLOCK + k];
        }
        assert!(d > 0.0, "matrix not positive definite at {j} (d = {d})");
        let ljj = d.sqrt();
        a[j * BLOCK + j] = ljj;
        for i in (j + 1)..BLOCK {
            let mut v = a[i * BLOCK + j];
            for k in 0..j {
                v -= a[i * BLOCK + k] * a[j * BLOCK + k];
            }
            a[i * BLOCK + j] = v / ljj;
        }
        for i in 0..j {
            a[i * BLOCK + j] = 0.0;
        }
    }
}

/// Leaf back-substitution: `B := B * L^-T` for lower-triangular `L`.
fn leaf_backsub(b: &mut Block, l: &Block) {
    // Row r of X solves X[r][j] * L[j][j] = B[r][j] - sum_{k<j} X[r][k]L[j][k].
    for r in 0..BLOCK {
        for j in 0..BLOCK {
            let mut v = b[r * BLOCK + j];
            for k in 0..j {
                v -= b[r * BLOCK + k] * l[j * BLOCK + k];
            }
            b[r * BLOCK + j] = v / l[j * BLOCK + j];
        }
    }
}

/// Leaf multiply-subtract: `D -= A * B^T` (optionally only the lower
/// triangle of `D`, for symmetric updates).
fn leaf_mul_subtract(d: &mut Block, a: &Block, b: &Block, lower_only: bool) {
    for r in 0..BLOCK {
        let cmax = if lower_only { r + 1 } else { BLOCK };
        for c in 0..cmax {
            let mut v = 0.0;
            for k in 0..BLOCK {
                v += a[r * BLOCK + k] * b[c * BLOCK + k];
            }
            d[r * BLOCK + c] -= v;
        }
    }
}

// ---------------------------------------------------------------------
// parallel quadtree operations
// ---------------------------------------------------------------------

/// `D -= A * B^T` on optional quadtrees of side `s`; returns the new
/// `D`. With `lower_only`, only the lower triangle of `D` is updated
/// (the symmetric `A11` update).
fn mul_subtract<C: Fork>(
    c: &mut C,
    s: usize,
    d: Option<QTree>,
    a: &Option<QTree>,
    b: &Option<QTree>,
    lower_only: bool,
) -> Option<QTree> {
    let (Some(a), Some(b)) = (a.as_ref(), b.as_ref()) else {
        return d;
    };
    let mut d = d.unwrap_or_else(|| QTree::zero(s));
    match (&mut d, a, b) {
        (QTree::Leaf(db), QTree::Leaf(ab), QTree::Leaf(bb)) => {
            leaf_mul_subtract(db, ab, bb, lower_only);
        }
        (QTree::Node(dq), QTree::Node(aq), QTree::Node(bq)) => {
            let h = s / 2;
            // dst00 -= a00 b00^T + a01 b01^T        (lower_only: diag)
            // dst01 -= a00 b10^T + a01 b11^T        (skipped if lower)
            // dst10 -= a10 b00^T + a11 b01^T
            // dst11 -= a10 b10^T + a11 b11^T        (lower_only: diag)
            let [d00, d01, d10, d11] = {
                // Move the quadrants out so each fork branch owns its own.
                let dq = &mut **dq;
                [dq[0].take(), dq[1].take(), dq[2].take(), dq[3].take()]
            };
            let [a00, a01, a10, a11] = [&aq[0], &aq[1], &aq[2], &aq[3]];
            let [b00, b01, b10, b11] = [&bq[0], &bq[1], &bq[2], &bq[3]];
            let ((n00, n01), (n10, n11)) = c.fork(
                |c| {
                    c.fork(
                        |c| {
                            let t = mul_subtract(c, h, d00, a00, b00, lower_only);
                            mul_subtract(c, h, t, a01, b01, lower_only)
                        },
                        |c| {
                            if lower_only {
                                d01
                            } else {
                                let t = mul_subtract(c, h, d01, a00, b10, false);
                                mul_subtract(c, h, t, a01, b11, false)
                            }
                        },
                    )
                },
                |c| {
                    c.fork(
                        |c| {
                            let t = mul_subtract(c, h, d10, a10, b00, false);
                            mul_subtract(c, h, t, a11, b01, false)
                        },
                        |c| {
                            let t = mul_subtract(c, h, d11, a10, b10, lower_only);
                            mul_subtract(c, h, t, a11, b11, lower_only)
                        },
                    )
                },
            );
            let dq = &mut **dq;
            dq[0] = n00;
            dq[1] = n01;
            dq[2] = n10;
            dq[3] = n11;
        }
        _ => unreachable!("quadtree shape mismatch (all trees share one side)"),
    }
    Some(d)
}

/// `B := B * L^-T` on quadtrees of side `s` (lower-triangular `L`).
fn backsub<C: Fork>(c: &mut C, s: usize, b: Option<QTree>, l: &QTree) -> Option<QTree> {
    let mut b = b?;
    match (&mut b, l) {
        (QTree::Leaf(bb), QTree::Leaf(lb)) => {
            leaf_backsub(bb, lb);
        }
        (QTree::Node(bq), QTree::Node(lq)) => {
            let h = s / 2;
            let l00 = lq[0].as_ref().expect("diagonal factor block present");
            let l10 = &lq[2];
            let l11 = lq[3].as_ref().expect("diagonal factor block present");
            let (b00, b01, b10, b11) = {
                let bq = &mut **bq;
                (bq[0].take(), bq[1].take(), bq[2].take(), bq[3].take())
            };
            // Column 0 of X: independent solves against L00.
            let (x00, x10) = c.fork(|c| backsub(c, h, b00, l00), |c| backsub(c, h, b10, l00));
            // Column 1: subtract the cross terms, then solve against L11.
            let (x01, x11) = c.fork(
                |c| {
                    let t = mul_subtract(c, h, b01, &x00, l10, false);
                    backsub(c, h, t, l11)
                },
                |c| {
                    let t = mul_subtract(c, h, b11, &x10, l10, false);
                    backsub(c, h, t, l11)
                },
            );
            let bq = &mut **bq;
            bq[0] = x00;
            bq[1] = x01;
            bq[2] = x10;
            bq[3] = x11;
        }
        _ => unreachable!("quadtree shape mismatch"),
    }
    Some(b)
}

/// Cholesky factorization of a quadtree of side `s` (lower triangle in,
/// lower-triangular factor out).
pub fn cholesky<C: Fork>(c: &mut C, s: usize, a: QTree) -> QTree {
    match a {
        QTree::Leaf(mut b) => {
            leaf_cholesky(&mut b);
            QTree::Leaf(b)
        }
        QTree::Node(mut q) => {
            let h = s / 2;
            let a00 = q[0].take().expect("SPD diagonal block present");
            let a10 = q[2].take();
            let a11 = q[3].take().expect("SPD diagonal block present");
            let l00 = cholesky(c, h, a00);
            let l10 = backsub(c, h, a10, &l00);
            let a11 = mul_subtract(c, h, Some(a11), &l10, &l10, true)
                .expect("diagonal block stays present");
            let l11 = cholesky(c, h, a11);
            let q = &mut *q;
            q[0] = Some(l00);
            q[1] = None;
            q[2] = l10;
            q[3] = Some(l11);
            QTree::Node(Box::new([q[0].take(), None, q[2].take(), q[3].take()]))
        }
    }
}

/// Sequential dense reference Cholesky (for verification).
pub fn dense_cholesky(n: usize, a: &mut [f64]) {
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        assert!(d > 0.0, "not positive definite at {j}");
        let ljj = d.sqrt();
        a[j * n + j] = ljj;
        for i in (j + 1)..n {
            let mut v = a[i * n + j];
            for k in 0..j {
                v -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = v / ljj;
        }
        for i in 0..j {
            a[i * n + j] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ws_baseline::SerialExecutor;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn dense_roundtrip_through_quadtree() {
        let m = spd_random(40, 100, 7);
        let d = m.tree.to_dense(m.size);
        let t2 = QTree::from_dense(m.size, 0, 0, m.size, &d).unwrap();
        assert_eq!(max_abs_diff(&d, &t2.to_dense(m.size)), 0.0);
    }

    #[test]
    fn quadtree_cholesky_matches_dense_reference() {
        for (n, nnz, seed) in [(16, 30, 1), (40, 120, 2), (100, 400, 3)] {
            let m = spd_random(n, nnz, seed);
            let mut dense = m.tree.to_dense(m.size);
            dense_cholesky(m.size, &mut dense);

            let mut e = SerialExecutor::new();
            let size = m.size;
            let l = e.run(move |c| cholesky(c, size, m.tree));
            let got = l.to_dense(size);
            let diff = max_abs_diff(&dense, &got);
            assert!(diff < 1e-9, "n={n}: max diff {diff}");
        }
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let m = spd_random(64, 200, 11);
        let size = m.size;
        let a_dense = m.tree.to_dense(size);
        let mut e = SerialExecutor::new();
        let l = e.run(move |c| cholesky(c, size, m.tree));
        let ld = l.to_dense(size);
        // Compute L L^T and compare to A (lower triangle).
        for i in 0..size {
            for j in 0..=i {
                let mut v = 0.0;
                for k in 0..size {
                    v += ld[i * size + k] * ld[j * size + k];
                }
                let want = a_dense[i * size + j];
                assert!((v - want).abs() < 1e-9, "LL^T({i},{j}) = {v}, A = {want}");
            }
        }
    }

    #[test]
    fn parallel_on_wool_matches_serial() {
        let m = spd_random(120, 500, 23);
        let size = m.size;
        let a2 = QTree::clone(&m.tree);
        let mut e = SerialExecutor::new();
        let want = e.run(move |c| cholesky(c, size, a2)).to_dense(size);
        let mut pool: wool_core::Pool = wool_core::Pool::new(3);
        let got = pool.run(move |h| cholesky(h, size, m.tree)).to_dense(size);
        assert!(max_abs_diff(&want, &got) < 1e-12);
    }

    #[test]
    fn spd_generator_properties() {
        let m = spd_random(100, 300, 5);
        assert_eq!(m.size, 128);
        assert_eq!(m.n, 100);
        let d = m.tree.to_dense(m.size);
        // Symmetric storage: strictly upper triangle is empty.
        for i in 0..m.size {
            for j in (i + 1)..m.size {
                assert_eq!(d[i * m.size + j], 0.0);
            }
            assert!(d[i * m.size + i] >= 1.0);
        }
        // Roughly the requested number of off-diagonal nonzeros.
        let off = m.tree.nonzeros() - m.size;
        assert!(off > 0 && off <= 300, "off-diagonal nnz = {off}");
    }

    #[test]
    fn nonzeros_and_blocks_counters() {
        let m = spd_random(32, 10, 9);
        assert!(m.tree.nonzeros() >= 32);
        assert!(m.tree.blocks() >= 2);
        assert!(m.tree.abs_sum() > 0.0);
    }
}
