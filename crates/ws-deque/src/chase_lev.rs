//! A Chase–Lev work-stealing deque.
//!
//! Single owner, many thieves. The owner calls [`ChaseLev::push`] and
//! [`ChaseLev::pop`] on the bottom end; any thread may call
//! [`ChaseLev::steal`] on the top end through a shared reference.
//!
//! The implementation follows Chase & Lev, *Dynamic circular work-stealing
//! deque* (SPAA 2005), with the relaxed-memory orderings of Lê, Pop,
//! Cohen & Zappa Nardelli, *Correct and efficient work-stealing for weak
//! memory models* (PPoPP 2013). The structural choice that matters for
//! the paper reproduction is the **SeqCst fence in `pop`**: the owner's
//! common-case pop pays a full fence (or equivalent atomic) to close the
//! race with thieves on the last element. The Wool direct task stack
//! avoids this by synchronizing on the task descriptor instead; the
//! difference is measured by the `deque` Criterion bench and shows up in
//! Table II/III reproductions.
//!
//! # Memory reclamation
//!
//! When the deque grows, the old buffer cannot be freed immediately:
//! a concurrent thief may still be reading from it. We retire old buffers
//! into a list that is freed when the deque itself is dropped. Because
//! buffers double in size, the retired memory is at most the size of the
//! live buffer, so this simple scheme wastes a bounded amount of memory
//! and needs no epoch machinery.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use std::sync::Mutex;

use crate::Steal;

/// Minimum buffer capacity (must be a power of two).
const MIN_CAP: usize = 64;

/// A fixed-size circular buffer of `T`.
///
/// Indices are taken modulo the capacity; the buffer does not track which
/// slots are initialized — that is the deque's job via `top`/`bottom`.
struct Buffer<T> {
    storage: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; capacity is always a power of two.
    mask: usize,
}

// SAFETY: the buffer itself is just storage; all synchronization is done
// by the deque through `top`/`bottom`. Slots are only read when the deque
// protocol guarantees they were fully written.
unsafe impl<T: Send> Sync for Buffer<T> {}
unsafe impl<T: Send> Send for Buffer<T> {}

impl<T> Buffer<T> {
    fn alloc(cap: usize) -> Box<Self> {
        assert!(cap.is_power_of_two());
        let storage = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Box::new(Buffer {
            storage,
            mask: cap - 1,
        })
    }

    fn cap(&self) -> usize {
        self.mask + 1
    }

    /// Writes `v` at logical index `i`.
    ///
    /// # Safety
    /// The caller must own slot `i` (no concurrent access).
    unsafe fn put(&self, i: isize, v: T) {
        let slot = &self.storage[(i as usize) & self.mask];
        (*slot.get()).write(v);
    }

    /// Reads the value at logical index `i` without consuming the slot.
    ///
    /// # Safety
    /// Slot `i` must have been written and not yet taken by another
    /// thread *that the caller can observe*; duplicate reads are allowed
    /// as long as only one reader "keeps" the value (CAS winner).
    unsafe fn take(&self, i: isize) -> T {
        let slot = &self.storage[(i as usize) & self.mask];
        (*slot.get()).assume_init_read()
    }
}

/// A dynamically-growing Chase–Lev work-stealing deque.
pub struct ChaseLev<T> {
    /// Next slot the owner will push to (bottom end, grows upward).
    bottom: AtomicIsize,
    /// Oldest live element (top end, thieves take from here).
    top: AtomicIsize,
    /// Current buffer. Replaced (never mutated in place) on growth.
    buf: AtomicPtr<Buffer<T>>,
    /// Buffers retired by `grow`, freed on drop.
    retired: Mutex<Vec<*mut Buffer<T>>>,
}

// SAFETY: `ChaseLev` implements the Chase–Lev protocol: the owner is the
// only thread calling `push`/`pop`, thieves only `steal`. The protocol
// guarantees each element is handed to exactly one thread.
unsafe impl<T: Send> Sync for ChaseLev<T> {}
unsafe impl<T: Send> Send for ChaseLev<T> {}

impl<T> Default for ChaseLev<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ChaseLev<T> {
    /// Creates an empty deque with the default initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAP)
    }

    /// Creates an empty deque with at least `cap` capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(MIN_CAP);
        ChaseLev {
            bottom: AtomicIsize::new(0),
            top: AtomicIsize::new(0),
            buf: AtomicPtr::new(Box::into_raw(Buffer::alloc(cap))),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Approximate number of elements. Only a hint: concurrent operations
    /// may change it at any time.
    pub fn len_hint(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        b.saturating_sub(t).max(0) as usize
    }

    /// True if the deque was observed empty.
    pub fn is_empty_hint(&self) -> bool {
        self.len_hint() == 0
    }

    /// Owner: pushes `v` on the bottom end.
    ///
    /// # Safety contract (checked by type system in the schedulers)
    /// Must only be called by the single owner thread. We keep the method
    /// safe and `&self` because the owning schedulers already guarantee
    /// unique ownership; misuse from safe code cannot cause UB worse than
    /// lost/duplicated *values* would — but to be strict we document the
    /// requirement and the schedulers wrap the deque in owner-only
    /// handles.
    pub fn push(&self, v: T, owner: &mut OwnerToken) {
        let _ = owner;
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buf.load(Ordering::Relaxed);

        // SAFETY: only the owner mutates `bottom`/`buf`, and `b - t` is a
        // conservative size estimate (t may only increase).
        unsafe {
            if b - t >= (*buf).cap() as isize {
                self.grow(b, t);
                buf = self.buf.load(Ordering::Relaxed);
            }
            (*buf).put(b, v);
        }
        // The Release store pairs with the Acquire load of `bottom` in
        // `steal`, making the element write visible before the new size.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner: pops from the bottom end (LIFO).
    pub fn pop(&self, owner: &mut OwnerToken) -> Option<T> {
        let _ = owner;
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buf.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // Full fence: orders the `bottom` store before the `top` load.
        // This is the cost the direct task stack avoids; see module docs.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty so far.
            if t == b {
                // Single element left: race with thieves via CAS on top.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                if won {
                    // SAFETY: we won the CAS, the slot at `b` is ours.
                    return Some(unsafe { (*buf).take(b) });
                }
                None
            } else {
                // More than one element: no thief can reach index b.
                // SAFETY: slot `b` was written by a previous push and
                // cannot be concurrently stolen (t < b).
                Some(unsafe { (*buf).take(b) })
            }
        } else {
            // Deque was empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Thief: attempts to steal from the top end (FIFO).
    pub fn steal(&self) -> Steal<T> {
        let t = self.top.load(Ordering::Acquire);
        // Full fence: pairs with the fence in `pop` so that a thief that
        // reads a stale `bottom` cannot also win the CAS on `top`.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);

        if t < b {
            let buf = self.buf.load(Ordering::Acquire);
            // Speculatively read the element. If we lose the CAS the read
            // value is forgotten (it is a bitwise duplicate; the winner
            // owns the only logical copy).
            // SAFETY: `t < b` means slot `t` was fully written (the push
            // of that element happened-before the bottom store we read).
            // Old buffers are kept alive until drop, so even a racing
            // `grow` leaves this pointer valid, and `grow` copies live
            // elements so index `t` holds the same value in both buffers.
            let v = unsafe { (*buf).take(t) };
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(v)
            } else {
                std::mem::forget(v);
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Doubles the buffer, copying live elements `[t, b)`.
    ///
    /// # Safety
    /// Owner-only, called from `push`.
    unsafe fn grow(&self, b: isize, t: isize) {
        let old = self.buf.load(Ordering::Relaxed);
        let new = Buffer::alloc((*old).cap() * 2);
        let mut i = t;
        while i < b {
            // Copy bits; logical ownership of elements is unchanged.
            let v = (*old).take(i);
            new.put(i, v);
            i += 1;
        }
        let new_ptr = Box::into_raw(new);
        // Release so thieves that Acquire-load the new pointer see the
        // copied elements.
        self.buf.store(new_ptr, Ordering::Release);
        self.retired.lock().unwrap().push(old);
    }
}

impl<T> Drop for ChaseLev<T> {
    fn drop(&mut self) {
        // Drop remaining elements.
        let b = *self.bottom.get_mut();
        let t = *self.top.get_mut();
        let buf = *self.buf.get_mut();
        // SAFETY: exclusive access in drop; `[t, b)` are live elements.
        unsafe {
            let mut i = t;
            while i < b {
                drop((*buf).take(i));
                i += 1;
            }
            drop(Box::from_raw(buf));
            for old in self.retired.get_mut().unwrap().drain(..) {
                drop(Box::from_raw(old));
            }
        }
    }
}

impl<T> fmt::Debug for ChaseLev<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChaseLev")
            .field("len_hint", &self.len_hint())
            .finish()
    }
}

/// Zero-sized token proving owner-end access.
///
/// The schedulers create exactly one token per deque and keep it in
/// owner-thread-local state, which statically prevents two threads from
/// using the owner end concurrently.
#[derive(Debug)]
pub struct OwnerToken {
    _private: (),
}

impl OwnerToken {
    /// Creates a token.
    ///
    /// # Safety
    /// The caller must guarantee that at most one token is used per deque
    /// at any time, from a single thread at a time.
    pub unsafe fn new() -> Self {
        OwnerToken { _private: () }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn owner() -> OwnerToken {
        // SAFETY: each test constructs one token per deque.
        unsafe { OwnerToken::new() }
    }

    #[test]
    fn push_pop_lifo() {
        let d = ChaseLev::new();
        let mut o = owner();
        for i in 0..100 {
            d.push(i, &mut o);
        }
        for i in (0..100).rev() {
            assert_eq!(d.pop(&mut o), Some(i));
        }
        assert_eq!(d.pop(&mut o), None);
    }

    #[test]
    fn steal_fifo() {
        let d = ChaseLev::new();
        let mut o = owner();
        for i in 0..10 {
            d.push(i, &mut o);
        }
        for i in 0..10 {
            assert_eq!(d.steal(), Steal::Success(i));
        }
        assert!(d.steal().is_empty());
    }

    #[test]
    fn growth_preserves_elements() {
        let d = ChaseLev::with_capacity(MIN_CAP);
        let mut o = owner();
        let n = MIN_CAP * 8;
        for i in 0..n {
            d.push(i, &mut o);
        }
        let mut popped = Vec::new();
        while let Some(v) = d.pop(&mut o) {
            popped.push(v);
        }
        popped.reverse();
        assert_eq!(popped, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn empty_hint() {
        let d: ChaseLev<u32> = ChaseLev::new();
        assert!(d.is_empty_hint());
        let mut o = owner();
        d.push(1, &mut o);
        assert!(!d.is_empty_hint());
        assert_eq!(d.len_hint(), 1);
    }

    #[test]
    fn drops_remaining_elements() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::Relaxed);
            }
        }
        {
            let d = ChaseLev::new();
            let mut o = owner();
            for _ in 0..5 {
                d.push(D, &mut o);
            }
            drop(d.pop(&mut o));
        }
        assert_eq!(DROPS.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn interleaved_push_pop_steal_single_thread() {
        let d = ChaseLev::new();
        let mut o = owner();
        d.push(1, &mut o);
        d.push(2, &mut o);
        assert_eq!(d.steal(), Steal::Success(1));
        d.push(3, &mut o);
        assert_eq!(d.pop(&mut o), Some(3));
        assert_eq!(d.pop(&mut o), Some(2));
        assert_eq!(d.pop(&mut o), None);
        assert!(d.steal().is_empty());
    }

    /// Multi-thread stress: every pushed element is received exactly once
    /// across owner pops and thief steals.
    #[test]
    fn concurrent_ownership_exactly_once() {
        const PER_ROUND: usize = 1000;
        const ROUNDS: usize = 20;
        const THIEVES: usize = 4;

        let d = Arc::new(ChaseLev::new());
        let stop = Arc::new(AtomicUsize::new(0));
        let stolen_sum = Arc::new(AtomicUsize::new(0));
        let stolen_cnt = Arc::new(AtomicUsize::new(0));

        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let d = Arc::clone(&d);
                let stop = Arc::clone(&stop);
                let sum = Arc::clone(&stolen_sum);
                let cnt = Arc::clone(&stolen_cnt);
                std::thread::spawn(move || loop {
                    match d.steal() {
                        Steal::Success(v) => {
                            sum.fetch_add(v, Ordering::Relaxed);
                            cnt.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            if stop.load(Ordering::Acquire) == 1 {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();

        let mut o = owner();
        let mut kept_sum = 0usize;
        let mut kept_cnt = 0usize;
        let mut next = 1usize;
        for _ in 0..ROUNDS {
            for _ in 0..PER_ROUND {
                d.push(next, &mut o);
                next += 1;
            }
            // Pop about half back.
            for _ in 0..PER_ROUND / 2 {
                if let Some(v) = d.pop(&mut o) {
                    kept_sum += v;
                    kept_cnt += 1;
                }
            }
        }
        // Drain the rest.
        while let Some(v) = d.pop(&mut o) {
            kept_sum += v;
            kept_cnt += 1;
        }
        stop.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }

        let total = ROUNDS * PER_ROUND;
        let expect_sum = total * (total + 1) / 2;
        assert_eq!(
            kept_cnt + stolen_cnt.load(Ordering::Relaxed),
            total,
            "every element received exactly once"
        );
        assert_eq!(kept_sum + stolen_sum.load(Ordering::Relaxed), expect_sum);
    }

    /// Differential test against a `VecDeque` reference model on a
    /// pseudo-random operation sequence executed single-threaded:
    /// with no concurrency, push/pop/steal must behave exactly like
    /// back-insert/back-remove/front-remove on the model.
    #[test]
    fn differential_vs_model_single_thread() {
        use std::collections::VecDeque;
        let mut x = 0xC0FFEEu64 | 1;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let ours = ChaseLev::new();
        let mut o = owner();
        let mut model: VecDeque<u64> = VecDeque::new();

        let mut next = 0u64;
        for _ in 0..10_000 {
            match rng() % 3 {
                0 => {
                    ours.push(next, &mut o);
                    model.push_back(next);
                    next += 1;
                }
                1 => {
                    assert_eq!(ours.pop(&mut o), model.pop_back());
                }
                _ => {
                    // Single-threaded: Retry is impossible.
                    assert_eq!(ours.steal().success(), model.pop_front());
                }
            }
        }
    }
}
