//! Idempotent work stealing (Michael, Vechev & Saraswat, PPoPP 2009) —
//! the LIFO-extraction variant.
//!
//! §III-A of the Wool paper cites this algorithm as the other known way
//! to avoid Dijkstra-style fence synchronization: "the idempotent work
//! stealing [18] avoid[s] Dijkstra style synchronization in favor of
//! atomic operations (in the latter case by exploiting synchronization
//! elsewhere in the algorithm)". The trick is to relax the extraction
//! guarantee from *exactly once* to **at least once**: owner and thieves
//! coordinate through a single packed `anchor = (size, tag)` word, the
//! owner's `put`/`take` use plain stores on it, and only thieves CAS —
//! so the owner's fast path, like the direct task stack's, executes no
//! atomic read-modify-write and no fence.
//!
//! The price is that a task can occasionally be extracted twice (an
//! owner `take` racing a thief's CAS on the same top element), which is
//! only sound for idempotent tasks. That is exactly why the schedulers
//! in this repository do **not** build on it — our task frames transfer
//! ownership and must run exactly once — but it belongs in the substrate
//! collection as the paper's named alternative, with tests that pin
//! down both the multiset guarantee and the duplication behavior.
//!
//! `T: Copy` is required: duplicated extraction hands out bitwise
//! copies, so only trivially duplicable payloads are sound.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Steal;

/// Packs `(size, tag)` into the anchor word.
#[inline]
fn pack(size: u32, tag: u32) -> u64 {
    ((tag as u64) << 32) | size as u64
}

/// Unpacks the anchor word into `(size, tag)`.
#[inline]
fn unpack(a: u64) -> (u32, u32) {
    (a as u32, (a >> 32) as u32)
}

/// An idempotent LIFO work-stealing pool with fixed capacity.
///
/// Owner: [`put`](IdempotentLifo::put) / [`take`](IdempotentLifo::take)
/// (single thread); thieves: [`steal`](IdempotentLifo::steal). Both
/// ends extract from the **top** (it is a shared stack); `take` may
/// duplicate an extraction that a concurrent `steal` also performed.
pub struct IdempotentLifo<T: Copy> {
    anchor: AtomicU64,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: slots are only read at indices below the anchor's size, which
// are fully written by the owner before the Release store/CAS that
// published them; duplicated reads are by-value copies of `T: Copy`.
unsafe impl<T: Copy + Send> Sync for IdempotentLifo<T> {}
unsafe impl<T: Copy + Send> Send for IdempotentLifo<T> {}

impl<T: Copy> IdempotentLifo<T> {
    /// Creates a pool that can hold `capacity` tasks.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0 && capacity <= u32::MAX as usize);
        IdempotentLifo {
            anchor: AtomicU64::new(pack(0, 0)),
            buf: (0..capacity)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
        }
    }

    /// Capacity in tasks.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Observed number of stored tasks (racy hint).
    pub fn len_hint(&self) -> usize {
        unpack(self.anchor.load(Ordering::Relaxed)).0 as usize
    }

    /// Owner: pushes a task. Returns it back if the pool is full.
    ///
    /// # Safety
    /// Must only be called from the single owner thread.
    pub unsafe fn put(&self, v: T) -> Result<(), T> {
        let (s, g) = unpack(self.anchor.load(Ordering::Relaxed));
        if s as usize == self.buf.len() {
            return Err(v);
        }
        (*self.buf[s as usize].get()).write(v);
        // Release publishes the slot write; bumping the tag prevents a
        // thief's CAS from succeeding across our put (ABA on size).
        self.anchor
            .store(pack(s + 1, g.wrapping_add(1)), Ordering::Release);
        Ok(())
    }

    /// Owner: takes the most recent task, if any. May extract a task
    /// that a concurrent thief also extracted (idempotence!).
    ///
    /// # Safety
    /// Must only be called from the single owner thread.
    pub unsafe fn take(&self) -> Option<T> {
        let (s, g) = unpack(self.anchor.load(Ordering::Relaxed));
        if s == 0 {
            return None;
        }
        let v = (*self.buf[(s - 1) as usize].get()).assume_init();
        // Plain (Release) store, no RMW: if a thief concurrently CASed
        // the same (s, g), both of us got the element — allowed.
        self.anchor.store(pack(s - 1, g), Ordering::Release);
        Some(v)
    }

    /// Thief: attempts to steal the top task.
    pub fn steal(&self) -> Steal<T> {
        let a = self.anchor.load(Ordering::Acquire);
        let (s, g) = unpack(a);
        if s == 0 {
            return Steal::Empty;
        }
        // SAFETY: index s-1 was fully written before the Acquire-read
        // anchor value was published.
        let v = unsafe { (*self.buf[(s - 1) as usize].get()).assume_init() };
        match self
            .anchor
            .compare_exchange(a, pack(s - 1, g), Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => Steal::Success(v),
            Err(_) => Steal::Retry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicBool;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lifo_order_single_thread() {
        let q = IdempotentLifo::new(16);
        // SAFETY: single-threaded test is the owner.
        unsafe {
            q.put(1).unwrap();
            q.put(2).unwrap();
            q.put(3).unwrap();
            assert_eq!(q.take(), Some(3));
            assert_eq!(q.steal().success(), Some(2));
            assert_eq!(q.take(), Some(1));
            assert_eq!(q.take(), None);
            assert!(q.steal().is_empty());
        }
    }

    #[test]
    fn capacity_respected() {
        let q = IdempotentLifo::new(2);
        // SAFETY: owner thread.
        unsafe {
            q.put(10).unwrap();
            q.put(20).unwrap();
            assert_eq!(q.put(30), Err(30));
            assert_eq!(q.len_hint(), 2);
        }
    }

    #[test]
    fn tag_prevents_cross_put_aba() {
        // A thief holding a stale anchor must not succeed after the
        // owner has popped and re-pushed (the size returns but the tag
        // does not).
        let q = IdempotentLifo::new(8);
        // SAFETY: owner thread.
        unsafe {
            q.put(1).unwrap();
            let stale = q.anchor.load(Ordering::Acquire);
            assert_eq!(q.take(), Some(1));
            q.put(2).unwrap();
            // Same size as `stale`, different tag.
            let now = q.anchor.load(Ordering::Acquire);
            assert_eq!(unpack(stale).0, unpack(now).0);
            assert_ne!(unpack(stale).1, unpack(now).1);
        }
    }

    /// The defining guarantee: under owner/thief concurrency every
    /// pushed value is extracted **at least** once; duplicates are
    /// possible but bounded by the number of extractions.
    #[test]
    fn at_least_once_under_concurrency() {
        const N: u64 = 20_000;
        const THIEVES: usize = 3;
        let q = Arc::new(IdempotentLifo::new(64));
        let done = Arc::new(AtomicBool::new(false));
        let stolen = Arc::new(Mutex::new(Vec::new()));

        let thieves: Vec<_> = (0..THIEVES)
            .map(|_| {
                let q = Arc::clone(&q);
                let done = Arc::clone(&done);
                let stolen = Arc::clone(&stolen);
                std::thread::spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        match q.steal() {
                            Steal::Success(v) => local.push(v),
                            Steal::Retry => {}
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                    stolen.lock().unwrap().extend(local);
                })
            })
            .collect();

        let mut taken = Vec::new();
        for v in 0..N {
            // SAFETY: this thread is the unique owner.
            unsafe {
                let mut v = v;
                loop {
                    match q.put(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            // Drain a little to make room.
                            if let Some(x) = q.take() {
                                taken.push(x);
                            }
                        }
                    }
                }
                if v % 2 == 0 {
                    if let Some(x) = q.take() {
                        taken.push(x);
                    }
                }
            }
        }
        // SAFETY: owner thread.
        unsafe {
            while let Some(x) = q.take() {
                taken.push(x);
            }
        }
        done.store(true, Ordering::Release);
        for t in thieves {
            t.join().unwrap();
        }

        let stolen = stolen.lock().unwrap();
        let mut seen: HashSet<u64> = HashSet::new();
        seen.extend(taken.iter().copied());
        seen.extend(stolen.iter().copied());
        // At-least-once: every value extracted by someone.
        for v in 0..N {
            assert!(seen.contains(&v), "value {v} lost");
        }
        // Total extractions >= pushes (duplicates allowed, losses not).
        assert!(taken.len() + stolen.len() >= N as usize);
    }
}
