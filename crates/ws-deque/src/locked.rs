//! Lock-synchronized work-stealing deques.
//!
//! These implement the three lock-based steal protocols of §IV-C of the
//! Wool paper, used by the baseline schedulers and by the Figure 4
//! reproduction:
//!
//! * **Base** — the thief takes the victim's lock immediately after
//!   selecting it, then checks for work.
//! * **Peek** — the thief first reads an unsynchronized emptiness hint
//!   and only takes the lock when the victim looks non-empty.
//! * **Trylock** — in addition to peeking, the thief uses `try_lock` and
//!   aborts the steal attempt if the lock is contended.
//!
//! The owner's `push`/`pop` also take the lock, matching the paper's
//! description of the *base* Wool alternative ("per-worker locks for
//! mutual exclusion of thieves and victim") and the heavyweight locking
//! it attributes to Cilk++'s stealing path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use std::sync::Mutex;

use crate::Steal;

/// Which §IV-C steal protocol a thief uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealProtocol {
    /// Lock first, then look for work.
    Base,
    /// Check an emptiness hint before locking.
    Peek,
    /// Peek, then `try_lock`; abort on contention.
    Trylock,
}

impl StealProtocol {
    /// All protocols, in the order Figure 4 plots them.
    pub const ALL: [StealProtocol; 3] = [
        StealProtocol::Base,
        StealProtocol::Peek,
        StealProtocol::Trylock,
    ];

    /// Human-readable name matching the paper's legend.
    pub fn name(self) -> &'static str {
        match self {
            StealProtocol::Base => "base",
            StealProtocol::Peek => "peek",
            StealProtocol::Trylock => "trylock",
        }
    }
}

/// A deque protected by a per-worker mutex.
///
/// The owner pushes/pops at the back (LIFO), thieves steal from the
/// front (FIFO), as in all child-stealing schedulers.
#[derive(Debug)]
pub struct LockedDeque<T> {
    inner: Mutex<VecDeque<T>>,
    /// Unsynchronized length hint used by the *peek* and *trylock*
    /// protocols. Updated under the lock, read without it.
    len_hint: AtomicUsize,
}

impl<T> Default for LockedDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockedDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        LockedDeque {
            inner: Mutex::new(VecDeque::new()),
            len_hint: AtomicUsize::new(0),
        }
    }

    /// Owner: push a task (takes the lock).
    pub fn push(&self, v: T) {
        let mut q = self.inner.lock().unwrap();
        q.push_back(v);
        self.len_hint.store(q.len(), Ordering::Relaxed);
    }

    /// Owner: pop the most recently pushed task (takes the lock).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.inner.lock().unwrap();
        let v = q.pop_back();
        self.len_hint.store(q.len(), Ordering::Relaxed);
        v
    }

    /// Unsynchronized emptiness hint (may be stale).
    pub fn is_empty_hint(&self) -> bool {
        self.len_hint.load(Ordering::Relaxed) == 0
    }

    /// Approximate length (may be stale).
    pub fn len_hint(&self) -> usize {
        self.len_hint.load(Ordering::Relaxed)
    }

    /// Thief: attempt a steal using `protocol`.
    pub fn steal(&self, protocol: StealProtocol) -> Steal<T> {
        match protocol {
            StealProtocol::Base => self.steal_locked(),
            StealProtocol::Peek => {
                if self.is_empty_hint() {
                    Steal::Empty
                } else {
                    self.steal_locked()
                }
            }
            StealProtocol::Trylock => {
                if self.is_empty_hint() {
                    return Steal::Empty;
                }
                match self.inner.try_lock() {
                    Ok(mut q) => {
                        let v = q.pop_front();
                        self.len_hint.store(q.len(), Ordering::Relaxed);
                        match v {
                            Some(v) => Steal::Success(v),
                            None => Steal::Empty,
                        }
                    }
                    Err(_) => Steal::Retry,
                }
            }
        }
    }

    fn steal_locked(&self) -> Steal<T> {
        let mut q = self.inner.lock().unwrap();
        let v = q.pop_front();
        self.len_hint.store(q.len(), Ordering::Relaxed);
        match v {
            Some(v) => Steal::Success(v),
            None => Steal::Empty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn lifo_for_owner_fifo_for_thief() {
        let d = LockedDeque::new();
        d.push(1);
        d.push(2);
        d.push(3);
        assert_eq!(d.steal(StealProtocol::Base).success(), Some(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn peek_avoids_locking_empty() {
        let d: LockedDeque<u32> = LockedDeque::new();
        // Hold the lock; peek must still report Empty without blocking.
        let _guard = d.inner.lock().unwrap();
        assert!(d.steal(StealProtocol::Peek).is_empty());
        assert!(d.steal(StealProtocol::Trylock).is_empty());
    }

    #[test]
    fn trylock_retries_on_contention() {
        let d = LockedDeque::new();
        d.push(7u32);
        let _guard = d.inner.lock().unwrap();
        assert!(d.steal(StealProtocol::Trylock).is_retry());
    }

    #[test]
    fn hint_tracks_len() {
        let d = LockedDeque::new();
        assert_eq!(d.len_hint(), 0);
        d.push(1);
        d.push(2);
        assert_eq!(d.len_hint(), 2);
        d.pop();
        assert_eq!(d.len_hint(), 1);
        d.steal(StealProtocol::Base);
        assert_eq!(d.len_hint(), 0);
    }

    #[test]
    fn concurrent_exactly_once_all_protocols() {
        for protocol in StealProtocol::ALL {
            let d = Arc::new(LockedDeque::new());
            let taken = Arc::new(AtomicUsize::new(0));
            let sum = Arc::new(AtomicUsize::new(0));
            const N: usize = 10_000;

            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let d = Arc::clone(&d);
                    let taken = Arc::clone(&taken);
                    let sum = Arc::clone(&sum);
                    std::thread::spawn(move || {
                        while taken.load(Ordering::Relaxed) < N {
                            if let Steal::Success(v) = d.steal(protocol) {
                                sum.fetch_add(v, Ordering::Relaxed);
                                taken.fetch_add(1, Ordering::Relaxed);
                            } else {
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();

            for i in 1..=N {
                d.push(i);
            }
            // The owner also consumes.
            while taken.load(Ordering::Relaxed) < N {
                if let Some(v) = d.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    taken.fetch_add(1, Ordering::Relaxed);
                }
            }
            for t in thieves {
                t.join().unwrap();
            }
            assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2, "{protocol:?}");
        }
    }
}
