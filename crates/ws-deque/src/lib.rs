//! Work-stealing deque substrates.
//!
//! This crate provides the task-pool data structures that the baseline
//! schedulers in `ws-baseline` are built on, mirroring the designs that
//! the Wool paper (Faxén, ICPP 2010) compares against:
//!
//! * [`chase_lev`] — an owner/thief circular deque in the style of
//!   Chase & Lev (SPAA 2005) with the C11 memory orderings of
//!   Lê et al. (PPoPP 2013). This is the structure used (in spirit) by
//!   TBB, Cilk-5's THE protocol descendants and Rayon: the owner pushes
//!   and pops at the *bottom*, thieves steal at the *top*, and the two
//!   ends are synchronized with a sequentially-consistent fence on the
//!   owner's pop — exactly the "Dijkstra style" fence cost the paper
//!   argues the direct task stack avoids.
//! * [`locked`] — a mutex-protected deque with the three steal protocols
//!   evaluated in §IV-C of the paper (*base*, *peek*, *trylock*).
//! * [`idempotent`] — the idempotent LIFO extraction of Michael et al.
//!   (PPoPP 2009), the paper's named fence-free alternative; provided
//!   as a substrate with at-least-once semantics (not used by the
//!   exactly-once schedulers).
//!
//! Both structures are generic over `T: Send`; the schedulers instantiate
//! them with raw pointers to heap-allocated task frames (the paper's
//! "free list allocation of task structures, keeping only pointers in
//! their task queues").

#![warn(missing_docs)]

pub mod chase_lev;
pub mod idempotent;
pub mod locked;

pub use chase_lev::ChaseLev;
pub use idempotent::IdempotentLifo;
pub use locked::{LockedDeque, StealProtocol};

/// Outcome of a steal attempt, shared by both deque families.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was successfully taken from the victim.
    Success(T),
    /// The pool was observed empty (or all tasks were private).
    Empty,
    /// The attempt lost a race (CAS failure, lock contention, ...) and
    /// may be retried immediately.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// True if the attempt should be retried without treating the victim
    /// as empty.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// True if the victim was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}
