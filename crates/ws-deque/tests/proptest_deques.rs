//! Property-style and stress tests for the deque substrates.
//!
//! Randomized cases are generated with a seeded xorshift64* generator
//! (deterministic, dependency-free) instead of an external property
//! testing crate: each test replays many random operation sequences
//! against a `VecDeque` reference model.

use std::collections::VecDeque;
use ws_deque::chase_lev::OwnerToken;
use ws_deque::{ChaseLev, LockedDeque, StealProtocol};

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// Operations on a deque, executed single-threaded against a model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u16),
    Pop,
    Steal,
}

fn random_ops(rng: &mut Rng) -> Vec<Op> {
    let len = (rng.next() % 400) as usize;
    (0..len)
        .map(|_| match rng.next() % 3 {
            0 => Op::Push(rng.next() as u16),
            1 => Op::Pop,
            _ => Op::Steal,
        })
        .collect()
}

/// Chase–Lev agrees with a VecDeque model on any sequential history.
#[test]
fn chase_lev_matches_model() {
    let mut rng = Rng::new(0xD5EA5E);
    for _ in 0..64 {
        let ops = random_ops(&mut rng);
        let d = ChaseLev::new();
        // SAFETY: single-threaded test is the unique owner.
        let mut tok = unsafe { OwnerToken::new() };
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    d.push(v, &mut tok);
                    model.push_back(v);
                }
                Op::Pop => {
                    assert_eq!(d.pop(&mut tok), model.pop_back());
                }
                Op::Steal => {
                    assert_eq!(d.steal().success(), model.pop_front());
                }
            }
        }
        // Drain and compare the remainder.
        let mut rest = Vec::new();
        while let Some(v) = d.pop(&mut tok) {
            rest.push(v);
        }
        rest.reverse();
        assert_eq!(rest, model.into_iter().collect::<Vec<_>>());
    }
}

/// The locked deque agrees with the same model under any protocol.
#[test]
fn locked_matches_model() {
    let mut rng = Rng::new(0x10CED);
    for round in 0..64 {
        let proto = StealProtocol::ALL[round % 3];
        let ops = random_ops(&mut rng);
        let d = LockedDeque::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    d.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    assert_eq!(d.pop(), model.pop_back());
                }
                Op::Steal => {
                    // Uncontended: never Retry.
                    assert_eq!(d.steal(proto).success(), model.pop_front());
                }
            }
        }
        assert_eq!(d.len_hint(), model.len());
    }
}

/// Length hints never drift from the true size across a history.
#[test]
fn chase_lev_len_hint_bounded() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..64 {
        let ops = random_ops(&mut rng);
        let d = ChaseLev::new();
        // SAFETY: unique owner.
        let mut tok = unsafe { OwnerToken::new() };
        let mut live = 0usize;
        for op in ops {
            match op {
                Op::Push(v) => {
                    d.push(v, &mut tok);
                    live += 1;
                }
                Op::Pop => {
                    if d.pop(&mut tok).is_some() {
                        live -= 1;
                    }
                }
                Op::Steal => {
                    if d.steal().success().is_some() {
                        live -= 1;
                    }
                }
            }
            assert_eq!(d.len_hint(), live);
        }
    }
}

/// Multi-threaded stress: with one owner and several thieves, the union
/// of popped and stolen elements is exactly the pushed multiset.
#[test]
fn chase_lev_concurrent_multiset() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    const PUSHES: u64 = 50_000;
    const THIEVES: usize = 3;

    let d: Arc<ChaseLev<u64>> = Arc::new(ChaseLev::new());
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            let sum = Arc::clone(&stolen_sum);
            std::thread::spawn(move || loop {
                match d.steal() {
                    ws_deque::Steal::Success(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                    ws_deque::Steal::Retry => {}
                    ws_deque::Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    // SAFETY: this thread is the unique owner.
    let mut tok = unsafe { OwnerToken::new() };
    let mut kept = 0u64;
    for v in 1..=PUSHES {
        d.push(v, &mut tok);
        if v % 3 == 0 {
            if let Some(x) = d.pop(&mut tok) {
                kept += x;
            }
        }
    }
    while let Some(x) = d.pop(&mut tok) {
        kept += x;
    }
    done.store(true, Ordering::Release);
    for t in thieves {
        t.join().unwrap();
    }
    assert_eq!(
        kept + stolen_sum.load(Ordering::Relaxed),
        PUSHES * (PUSHES + 1) / 2
    );
}
