//! Property-based and stress tests for the deque substrates.

use proptest::prelude::*;
use std::collections::VecDeque;
use ws_deque::chase_lev::OwnerToken;
use ws_deque::{ChaseLev, LockedDeque, StealProtocol};

/// Operations on a deque, executed single-threaded against a model.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u16),
    Pop,
    Steal,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            any::<u16>().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Steal),
        ],
        0..400,
    )
}

proptest! {
    /// Chase–Lev agrees with a VecDeque model on any sequential history.
    #[test]
    fn chase_lev_matches_model(ops in ops()) {
        let d = ChaseLev::new();
        // SAFETY: single-threaded test is the unique owner.
        let mut tok = unsafe { OwnerToken::new() };
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    d.push(v, &mut tok);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(d.pop(&mut tok), model.pop_back());
                }
                Op::Steal => {
                    prop_assert_eq!(d.steal().success(), model.pop_front());
                }
            }
        }
        // Drain and compare the remainder.
        let mut rest = Vec::new();
        while let Some(v) = d.pop(&mut tok) {
            rest.push(v);
        }
        rest.reverse();
        prop_assert_eq!(rest, model.into_iter().collect::<Vec<_>>());
    }

    /// The locked deque agrees with the same model under any protocol.
    #[test]
    fn locked_matches_model(ops in ops(), proto in 0usize..3) {
        let proto = StealProtocol::ALL[proto];
        let d = LockedDeque::new();
        let mut model: VecDeque<u16> = VecDeque::new();
        for op in ops {
            match op {
                Op::Push(v) => {
                    d.push(v);
                    model.push_back(v);
                }
                Op::Pop => {
                    prop_assert_eq!(d.pop(), model.pop_back());
                }
                Op::Steal => {
                    // Uncontended: never Retry.
                    prop_assert_eq!(d.steal(proto).success(), model.pop_front());
                }
            }
        }
        prop_assert_eq!(d.len_hint(), model.len());
    }

    /// Length hints never exceed the true maximum across a history.
    #[test]
    fn chase_lev_len_hint_bounded(ops in ops()) {
        let d = ChaseLev::new();
        // SAFETY: unique owner.
        let mut tok = unsafe { OwnerToken::new() };
        let mut live = 0usize;
        for op in ops {
            match op {
                Op::Push(v) => { d.push(v, &mut tok); live += 1; }
                Op::Pop => { if d.pop(&mut tok).is_some() { live -= 1; } }
                Op::Steal => { if d.steal().success().is_some() { live -= 1; } }
            }
            prop_assert_eq!(d.len_hint(), live);
        }
    }
}

/// Multi-threaded stress: with one owner and several thieves, the union
/// of popped and stolen elements is exactly the pushed multiset.
#[test]
fn chase_lev_concurrent_multiset() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    const PUSHES: u64 = 50_000;
    const THIEVES: usize = 3;

    let d: Arc<ChaseLev<u64>> = Arc::new(ChaseLev::new());
    let done = Arc::new(AtomicBool::new(false));
    let stolen_sum = Arc::new(AtomicU64::new(0));

    let thieves: Vec<_> = (0..THIEVES)
        .map(|_| {
            let d = Arc::clone(&d);
            let done = Arc::clone(&done);
            let sum = Arc::clone(&stolen_sum);
            std::thread::spawn(move || loop {
                match d.steal() {
                    ws_deque::Steal::Success(v) => {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                    ws_deque::Steal::Retry => {}
                    ws_deque::Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    // SAFETY: this thread is the unique owner.
    let mut tok = unsafe { OwnerToken::new() };
    let mut kept = 0u64;
    for v in 1..=PUSHES {
        d.push(v, &mut tok);
        if v % 3 == 0 {
            if let Some(x) = d.pop(&mut tok) {
                kept += x;
            }
        }
    }
    while let Some(x) = d.pop(&mut tok) {
        kept += x;
    }
    done.store(true, Ordering::Release);
    for t in thieves {
        t.join().unwrap();
    }
    assert_eq!(
        kept + stolen_sum.load(Ordering::Relaxed),
        PUSHES * (PUSHES + 1) / 2
    );
}
