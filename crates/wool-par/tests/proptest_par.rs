//! Property-style correctness tests: every wool-par consumer must
//! agree with the sequential reference on randomized inputs, under
//! every scheduler strategy (the full Table II / Figure 4 ladder) and
//! the serial baseline executor. Inputs come from a seeded xorshift64*
//! stream so runs are deterministic without an external property
//! testing crate.

use wool_core::{
    Fork, LockedBase, Pool, PoolConfig, StealLockBase, StealLockPeek, StealLockTrylock, Strategy,
    SyncOnTask, TaskSpecific, WoolFull, WoolNoLeap,
};
use wool_par::{par_iter, par_iter_mut, par_range, par_sort_unstable};
use ws_baseline::SerialExecutor;

/// Deterministic xorshift64* stream.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// The size ladder every property runs over: empty, singleton, odd,
/// power-of-two boundaries, large.
const SIZES: [usize; 7] = [0, 1, 7, 255, 256, 1023, 40_000];

fn input(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = Rng::new(seed);
    (0..n).map(|_| rng.next() % 1_000_003).collect()
}

/// Runs every consumer-vs-reference property on one executor context.
fn check_all_props<C: Fork>(c: &mut C, xs: &[u64], label: &str) {
    // map + sum.
    let expect: u64 = xs
        .iter()
        .map(|&x| x.wrapping_mul(3))
        .fold(0, u64::wrapping_add);
    let got = par_iter(xs).map(|x| x.wrapping_mul(3)).fold(
        c,
        || 0u64,
        |a, x| a.wrapping_add(x),
        |a, b| a.wrapping_add(b),
    );
    assert_eq!(got, expect, "map+fold on {label}, n = {}", xs.len());

    let got = par_iter(xs).map(|x| x.wrapping_mul(3)).sum(c);
    assert_eq!(got, expect, "map+sum on {label}, n = {}", xs.len());

    // reduce (max; identity = 0 works for the unsigned inputs).
    let expect = xs.iter().copied().max().unwrap_or(0);
    let got = par_iter(xs).copied().reduce(c, || 0, u64::max);
    assert_eq!(got, expect, "reduce max on {label}, n = {}", xs.len());

    // for_each over a mutable copy.
    let mut ys = xs.to_vec();
    par_iter_mut(&mut ys).for_each(c, |y| *y = y.wrapping_add(1));
    assert!(
        ys.iter().zip(xs).all(|(y, x)| *y == x.wrapping_add(1)),
        "for_each on {label}, n = {}",
        xs.len()
    );

    // range sum.
    let n = xs.len();
    let expect: usize = (0..n).sum();
    assert_eq!(
        par_range(0..n).sum(c),
        expect,
        "range sum on {label}, n = {n}"
    );

    // sort.
    let mut zs = xs.to_vec();
    let mut expect = xs.to_vec();
    expect.sort_unstable();
    par_sort_unstable(c, &mut zs);
    assert_eq!(zs, expect, "sort on {label}, n = {}", xs.len());
}

fn check_strategy<S: Strategy>(workers: usize, min_grain: usize) {
    let cfg = PoolConfig::with_workers(workers).min_grain(min_grain);
    let mut pool: Pool<S> = Pool::with_config(cfg);
    for (i, &n) in SIZES.iter().enumerate() {
        let xs = input(n, 0xC0FFEE + i as u64);
        pool.run(|h| check_all_props(h, &xs, S::NAME));
    }
}

macro_rules! strategy_tests {
    ($($test:ident => $strategy:ty),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                check_strategy::<$strategy>(4, 1);
            }
        )+
    };
}

strategy_tests! {
    props_wool_full => WoolFull,
    props_wool_no_leap => WoolNoLeap,
    props_task_specific => TaskSpecific,
    props_sync_on_task => SyncOnTask,
    props_locked_base => LockedBase,
    props_steal_lock_base => StealLockBase,
    props_steal_lock_peek => StealLockPeek,
    props_steal_lock_trylock => StealLockTrylock,
}

#[test]
fn props_single_worker_and_coarse_floor() {
    // Degenerate pool shapes: one worker (pure private path) and a
    // floor coarser than most inputs (splitting mostly disabled).
    check_strategy::<WoolFull>(1, 1);
    check_strategy::<WoolFull>(3, 4096);
}

#[test]
fn props_serial_executor() {
    let mut e = SerialExecutor::new();
    for (i, &n) in SIZES.iter().enumerate() {
        let xs = input(n, 0xBEEF + i as u64);
        e.run(|c| check_all_props(c, &xs, "serial"));
    }
}
