//! Splittable sources of items.
//!
//! A [`Producer`] is the crate's internal model of "a range of work
//! that can be cut in two": the adaptive splitter (see
//! [`crate::adaptive_grain`]) halves producers until they fit the
//! sequential cutoff, then drains the leaf with a plain loop — no
//! scheduler involvement below the cutoff.

/// A splittable, exactly-sized source of items.
///
/// Implementors promise that `split_at(i)` partitions the items: the
/// left part yields the first `i`, the right part the rest, with no
/// duplication — that is what lets `for_each` over a mutable slice
/// hand disjoint `&mut` items to concurrently executing leaves.
pub trait Producer: Sized + Send {
    /// The item type this producer yields.
    type Item;

    /// Number of items remaining.
    fn len(&self) -> usize;

    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into the first `index` items and the rest.
    ///
    /// `index` must be `<= len()`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// Drains the producer sequentially, folding every item into `acc`.
    /// This is the leaf loop: it must not spawn.
    fn fold_seq<A, F: FnMut(A, Self::Item) -> A>(self, acc: A, f: F) -> A;
}

/// Producer over `lo..hi` indices.
#[derive(Debug, Clone)]
pub struct RangeProducer {
    lo: usize,
    hi: usize,
}

impl RangeProducer {
    /// Wraps a `Range<usize>` (empty if `start >= end`).
    pub fn new(r: std::ops::Range<usize>) -> Self {
        RangeProducer {
            lo: r.start,
            hi: r.end.max(r.start),
        }
    }
}

impl Producer for RangeProducer {
    type Item = usize;

    fn len(&self) -> usize {
        self.hi - self.lo
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        debug_assert!(index <= self.len());
        let mid = self.lo + index;
        (
            RangeProducer {
                lo: self.lo,
                hi: mid,
            },
            RangeProducer {
                lo: mid,
                hi: self.hi,
            },
        )
    }

    #[inline]
    fn fold_seq<A, F: FnMut(A, usize) -> A>(self, mut acc: A, mut f: F) -> A {
        for i in self.lo..self.hi {
            acc = f(acc, i);
        }
        acc
    }
}

/// Producer over a shared slice, yielding `&T`.
#[derive(Debug)]
pub struct SliceProducer<'a, T> {
    s: &'a [T],
}

impl<'a, T> SliceProducer<'a, T> {
    /// Wraps a slice.
    pub fn new(s: &'a [T]) -> Self {
        SliceProducer { s }
    }
}

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.s.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.s.split_at(index);
        (SliceProducer { s: l }, SliceProducer { s: r })
    }

    #[inline]
    fn fold_seq<A, F: FnMut(A, &'a T) -> A>(self, mut acc: A, mut f: F) -> A {
        for x in self.s {
            acc = f(acc, x);
        }
        acc
    }
}

/// Producer over a mutable slice, yielding `&mut T`.
#[derive(Debug)]
pub struct SliceMutProducer<'a, T> {
    s: &'a mut [T],
}

impl<'a, T> SliceMutProducer<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(s: &'a mut [T]) -> Self {
        SliceMutProducer { s }
    }
}

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.s.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.s.split_at_mut(index);
        (SliceMutProducer { s: l }, SliceMutProducer { s: r })
    }

    #[inline]
    fn fold_seq<A, F: FnMut(A, &'a mut T) -> A>(self, mut acc: A, mut f: F) -> A {
        for x in self.s {
            acc = f(acc, x);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_splits_and_folds() {
        let p = RangeProducer::new(10..20);
        assert_eq!(p.len(), 10);
        let (l, r) = p.split_at(4);
        assert_eq!((l.len(), r.len()), (4, 6));
        assert_eq!(l.fold_seq(0usize, |a, i| a + i), 10 + 11 + 12 + 13);
        assert_eq!(r.fold_seq(0usize, |a, i| a + i), (14..20).sum());
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the inverted range IS the input under test
    fn inverted_range_is_empty() {
        let p = RangeProducer::new(5..3);
        assert!(p.is_empty());
    }

    #[test]
    fn slice_splits_and_folds() {
        let xs = [1u64, 2, 3, 4, 5];
        let p = SliceProducer::new(&xs);
        let (l, r) = p.split_at(2);
        assert_eq!(l.fold_seq(0u64, |a, x| a + x), 3);
        assert_eq!(r.fold_seq(0u64, |a, x| a + x), 12);
    }

    #[test]
    fn slice_mut_partitions_disjointly() {
        let mut xs = [0u64; 6];
        let p = SliceMutProducer::new(&mut xs);
        let (l, r) = p.split_at(3);
        l.fold_seq((), |(), x| *x = 1);
        r.fold_seq((), |(), x| *x = 2);
        assert_eq!(xs, [1, 1, 1, 2, 2, 2]);
    }
}
