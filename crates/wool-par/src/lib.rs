//! # wool-par — data-parallel iterators over the direct task stack
//!
//! A rayon-style data-parallel layer lowered onto `wool-core`'s
//! spawn/join via binary splitting. Where the paper hand-rolls its
//! recursive loop splitting per benchmark (`workloads::loops`), this
//! crate packages the same lowering behind slice/range iterators:
//!
//! ```
//! use wool_core::Pool;
//! use wool_par::{par_iter, par_iter_mut, par_range};
//!
//! let mut pool: Pool = Pool::new(4);
//! let xs: Vec<u64> = (0..10_000).collect();
//! let sum = pool.run(|h| par_iter(&xs).map(|x| x * 2).sum(h));
//! assert_eq!(sum, 2 * (0..10_000u64).sum::<u64>());
//!
//! let mut ys = vec![1u64; 1024];
//! pool.run(|h| par_iter_mut(&mut ys).for_each(h, |y| *y += 1));
//! assert!(ys.iter().all(|&y| y == 2));
//!
//! let n_odd = pool.run(|h| par_range(0..1000).map(|i| i % 2).sum(h));
//! assert_eq!(n_odd, 500);
//! ```
//!
//! ## Adaptive splitting (the paper's granularity model)
//!
//! The splitter chooses its sequential-fallback cutoff from the
//! executor's *live worker count* and the pool's configured floor
//! (`PoolConfig::min_grain`); see [`adaptive_grain`]. In the paper's
//! §II terms: over-partitioning into ~8 leaves per worker keeps the
//! load-balancing granularity `G_L = T_S / N_M` small enough that
//! random stealing balances the loop, while the `min_grain` floor
//! bounds the task granularity `G_T = T_S / N_T` from below so
//! per-task overhead (a few cycles on the private-task join fast path)
//! stays amortized. Because the direct task stack publishes only a
//! bounded public frontier (§III-B), the splits beyond that frontier
//! are spawned and joined entirely on the *private* portion of the
//! stack: zero atomic operations for the overwhelming majority of the
//! O(n/grain) interior forks, which is what makes this fine a grain
//! profitable at all (cf. Rito & Paulino, arXiv:1810.10615, on keeping
//! the fast path unsynchronized). Leaves below the cutoff run as plain
//! sequential loops with no scheduler involvement.
//!
//! Everything is generic over [`wool_core::Fork`], so the same
//! data-parallel program runs on every scheduler strategy, the
//! baseline pools, and the serial executor.

#![warn(missing_docs)]

pub mod iter;
pub mod producer;
pub mod sort;
mod split;

pub use iter::{ParIter, ParMap};
pub use producer::{Producer, RangeProducer, SliceMutProducer, SliceProducer};
pub use sort::par_sort_unstable;
pub use split::{adaptive_grain, TASKS_PER_WORKER};

use std::ops::Range;
use wool_core::Fork;

/// Runs `a` and `b`, potentially in parallel, returning both results —
/// the crate's binary fork-join primitive.
///
/// This is [`Fork::fork`] re-exported as a free function for symmetry
/// with `rayon::join`; `b` is spawned on the direct task stack and `a`
/// runs inline.
#[inline(always)]
pub fn join<C, RA, RB, FA, FB>(c: &mut C, a: FA, b: FB) -> (RA, RB)
where
    C: Fork,
    FA: FnOnce(&mut C) -> RA + Send,
    FB: FnOnce(&mut C) -> RB + Send,
    RA: Send,
    RB: Send,
{
    c.fork(a, b)
}

/// A parallel iterator over a shared slice (items are `&T`).
pub fn par_iter<T: Sync>(xs: &[T]) -> ParIter<SliceProducer<'_, T>> {
    ParIter::new(SliceProducer::new(xs))
}

/// A parallel iterator over a mutable slice (items are `&mut T`).
pub fn par_iter_mut<T: Send>(xs: &mut [T]) -> ParIter<SliceMutProducer<'_, T>> {
    ParIter::new(SliceMutProducer::new(xs))
}

/// A parallel iterator over an index range (items are `usize`).
pub fn par_range(r: Range<usize>) -> ParIter<RangeProducer> {
    ParIter::new(RangeProducer::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Pool;

    #[test]
    fn join_runs_both() {
        let mut pool: Pool = Pool::new(2);
        let (a, b) = pool.run(|h| join(h, |_| 1u64, |_| 2u64));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn readme_shapes() {
        let mut pool: Pool = Pool::new(3);
        let xs: Vec<u64> = (0..4096).collect();
        let sum = pool.run(|h| par_iter(&xs).copied().sum(h));
        assert_eq!(sum, (0..4096u64).sum::<u64>());

        let mut ys = vec![0u32; 513];
        pool.run(|h| par_iter_mut(&mut ys).for_each(h, |y| *y = 7));
        assert!(ys.iter().all(|&y| y == 7));

        let n = pool.run(|h| par_range(3..1000).map(|i| i as u64).sum(h));
        assert_eq!(n, (3..1000u64).sum::<u64>());
    }
}
