//! Merge-based parallel sort.
//!
//! Classic fork-join merge sort: halve until the adaptive cutoff,
//! `sort_unstable` the leaves, merge on the way back up through one
//! scratch buffer allocated up front. The recursion is the same binary
//! splitter as the iterator consumers, so the interior forks ride the
//! private task path.
//!
//! `T: Copy` keeps the scratch-buffer merge safe without move
//! gymnastics — the honest trade for a dependency-free implementation;
//! the paper's sorting workloads are numeric.

use crate::split::adaptive_grain;
use wool_core::Fork;

/// Below this many elements sorting is always sequential: a
/// `sort_unstable` leaf this small outruns any fork (the `G_T` floor
/// specific to sorting, where per-item work is ~log n comparisons).
pub const SORT_SEQUENTIAL_CUTOFF: usize = 512;

/// Sorts `xs` in parallel (unstable, merge-based).
///
/// The leaf cutoff is adaptive: `len / (8 * workers)`, floored by both
/// [`SORT_SEQUENTIAL_CUTOFF`] and the pool's `min_grain`.
///
/// ```
/// use wool_core::Pool;
///
/// let mut pool: Pool = Pool::new(4);
/// let mut xs: Vec<u64> = (0..10_000).rev().collect();
/// pool.run(|h| wool_par::par_sort_unstable(h, &mut xs));
/// assert!(xs.windows(2).all(|w| w[0] <= w[1]));
/// ```
pub fn par_sort_unstable<C, T>(c: &mut C, xs: &mut [T])
where
    C: Fork,
    T: Ord + Copy + Send,
{
    let n = xs.len();
    if n <= SORT_SEQUENTIAL_CUTOFF {
        xs.sort_unstable();
        return;
    }
    let grain = adaptive_grain(
        n,
        c.num_workers(),
        c.min_grain().max(SORT_SEQUENTIAL_CUTOFF),
    );
    let mut scratch = xs.to_vec();
    sort_rec(c, xs, &mut scratch, grain);
}

fn sort_rec<C, T>(c: &mut C, xs: &mut [T], scratch: &mut [T], grain: usize)
where
    C: Fork,
    T: Ord + Copy + Send,
{
    let n = xs.len();
    if n <= grain {
        xs.sort_unstable();
        return;
    }
    c.note_split(n);
    let mid = n / 2;
    {
        let (xl, xr) = xs.split_at_mut(mid);
        let (sl, sr) = scratch.split_at_mut(mid);
        c.fork(
            move |c| sort_rec(c, xl, sl, grain),
            move |c| sort_rec(c, xr, sr, grain),
        );
    }
    merge_halves(xs, mid, scratch);
}

/// Merges the sorted halves `xs[..mid]` and `xs[mid..]` via `scratch`.
fn merge_halves<T: Ord + Copy>(xs: &mut [T], mid: usize, scratch: &mut [T]) {
    scratch[..xs.len()].copy_from_slice(xs);
    let (left, right) = scratch[..xs.len()].split_at(mid);
    let (mut i, mut j) = (0, 0);
    for slot in xs.iter_mut() {
        if j >= right.len() || (i < left.len() && left[i] <= right[j]) {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Pool;

    fn scrambled(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| (i * 2654435761) % 100_003).collect()
    }

    #[test]
    fn sorts_across_cutoff_boundary() {
        let mut pool: Pool = Pool::new(4);
        for n in [0, 1, 2, 511, 512, 513, 4096, 50_000] {
            let mut xs = scrambled(n);
            let mut expect = xs.clone();
            expect.sort_unstable();
            pool.run(|h| par_sort_unstable(h, &mut xs));
            assert_eq!(xs, expect, "n = {n}");
        }
    }

    #[test]
    fn sorts_with_duplicates_and_sorted_input() {
        let mut pool: Pool = Pool::new(2);
        let mut xs = vec![7u64; 10_000];
        pool.run(|h| par_sort_unstable(h, &mut xs));
        assert!(xs.iter().all(|&x| x == 7));
        let mut ys: Vec<u64> = (0..10_000).collect();
        pool.run(|h| par_sort_unstable(h, &mut ys));
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn merge_halves_is_a_merge() {
        let mut xs = vec![1u64, 4, 9, 2, 3, 10];
        let mut scratch = vec![0u64; 6];
        merge_halves(&mut xs, 3, &mut scratch);
        assert_eq!(xs, [1, 2, 3, 4, 9, 10]);
    }
}
