//! The adaptive binary splitter.
//!
//! One recursive driver lowers every consumer in [`crate::iter`] onto
//! `Fork::fork`: halve the producer until it is at most `grain` items,
//! run the leaf sequentially, combine results on the way back up. The
//! grain itself comes from [`adaptive_grain`] unless the caller pinned
//! one with `with_grain`.

use crate::producer::Producer;
use wool_core::Fork;

/// Over-partitioning factor: target number of leaves per worker.
///
/// The paper's load-balancing granularity `G_L = T_S / N_M` argument:
/// with `p` workers and `8p` roughly equal leaves, the busiest worker
/// holds at most ~`T_S/p + T_S/(8p)` of the serial time under random
/// stealing, i.e. within 12.5% of perfect balance, while the number of
/// forks — and with it the (already tiny) scheduling overhead — stays
/// linear in `p`, not in `n`.
pub const TASKS_PER_WORKER: usize = 8;

/// Chooses the sequential-fallback cutoff (leaf size, in items) for a
/// range of `len` items on an executor with `workers` workers and a
/// pool-configured `min_grain` floor.
///
/// `len / (8 * workers)`, floored at `min_grain` (the `G_T` bound —
/// never make leaves so small that per-task overhead dominates) and at
/// 1 (a zero-item leaf could not terminate the recursion).
pub fn adaptive_grain(len: usize, workers: usize, min_grain: usize) -> usize {
    let pieces = workers.saturating_mul(TASKS_PER_WORKER).max(1);
    (len / pieces).max(min_grain).max(1)
}

/// Resolves the effective grain for one consumer invocation: an
/// explicit `with_grain` wins (still floored by the pool's
/// `min_grain`); otherwise the adaptive model decides.
pub(crate) fn effective_grain<C: Fork>(c: &C, len: usize, explicit: Option<usize>) -> usize {
    match explicit {
        Some(g) => g.max(c.min_grain()).max(1),
        None => adaptive_grain(len, c.num_workers(), c.min_grain()),
    }
}

/// The recursive binary split: divide until `<= grain`, run `leaf`
/// sequentially, combine partial results with `op`.
///
/// The right half is spawned on the direct task stack (private until
/// the public frontier demands otherwise), the left half is a plain
/// recursive call — exactly the paper's `SPAWN/CALL/JOIN` lowering.
pub(crate) fn split_reduce<C, P, T, Leaf, Op>(
    c: &mut C,
    p: P,
    grain: usize,
    leaf: &Leaf,
    op: &Op,
) -> T
where
    C: Fork,
    P: Producer,
    T: Send,
    Leaf: Fn(P) -> T + Sync,
    Op: Fn(T, T) -> T + Sync,
{
    let len = p.len();
    if len <= grain {
        return leaf(p);
    }
    c.note_split(len);
    let (lo, hi) = p.split_at(len / 2);
    let (a, b) = c.fork(
        move |c| split_reduce(c, lo, grain, leaf, op),
        move |c| split_reduce(c, hi, grain, leaf, op),
    );
    op(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::producer::RangeProducer;
    use wool_core::Pool;

    #[test]
    fn grain_scales_with_workers_and_floors() {
        // 1M items on 4 workers: 8*4 = 32 pieces.
        assert_eq!(adaptive_grain(1 << 20, 4, 1), (1 << 20) / 32);
        // The pool floor wins when the heuristic would go finer.
        assert_eq!(adaptive_grain(1024, 64, 100), 100);
        // Degenerate inputs stay at least 1.
        assert_eq!(adaptive_grain(0, 4, 1), 1);
        assert_eq!(adaptive_grain(10, usize::MAX, 1), 1);
    }

    #[test]
    fn split_reduce_covers_range() {
        let mut pool: Pool = Pool::new(4);
        let total = pool.run(|h| {
            split_reduce(
                h,
                RangeProducer::new(0..100_000),
                64,
                &|p| p.fold_seq(0u64, |a, i| a + i as u64),
                &|a, b| a + b,
            )
        });
        assert_eq!(total, (0..100_000u64).sum::<u64>());
    }
}
