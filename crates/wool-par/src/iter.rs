//! Parallel iterators: lazy descriptions of a data-parallel loop,
//! consumed by `for_each`/`fold`/`reduce`/`sum`.
//!
//! Unlike rayon, consumers take the [`Fork`] context explicitly — the
//! executing worker is a capability in this codebase, not ambient
//! state — so the call shape is `par_iter(&xs).map(f).sum(h)`.

use std::marker::PhantomData;

use crate::producer::Producer;
use crate::split::{effective_grain, split_reduce};
use wool_core::Fork;

/// A lazy parallel iterator over a [`Producer`].
///
/// Construct with [`crate::par_iter`], [`crate::par_iter_mut`] or
/// [`crate::par_range`]; the grain (sequential-fallback cutoff) is
/// chosen adaptively unless pinned with [`with_grain`].
///
/// [`with_grain`]: ParIter::with_grain
pub struct ParIter<P> {
    p: P,
    grain: Option<usize>,
}

impl<P: Producer> ParIter<P> {
    pub(crate) fn new(p: P) -> Self {
        ParIter { p, grain: None }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Pins the sequential-fallback cutoff to `grain` items instead of
    /// the adaptive model (still floored by the pool's `min_grain`).
    ///
    /// # Panics
    /// Panics if `grain == 0`.
    pub fn with_grain(mut self, grain: usize) -> Self {
        assert!(grain >= 1, "grain must be at least 1");
        self.grain = Some(grain);
        self
    }

    /// Maps every item through `f` (lazy; composes with the same
    /// consumers).
    pub fn map<F, R>(self, f: F) -> ParMap<P, F, R>
    where
        F: Fn(P::Item) -> R + Sync,
        R: Send,
    {
        ParMap {
            p: self.p,
            f,
            grain: self.grain,
            _out: PhantomData,
        }
    }

    /// Runs `f` on every item, in parallel.
    pub fn for_each<C, F>(self, c: &mut C, f: F)
    where
        C: Fork,
        F: Fn(P::Item) + Sync,
    {
        let grain = effective_grain(c, self.p.len(), self.grain);
        split_reduce(
            c,
            self.p,
            grain,
            &|p: P| p.fold_seq((), |(), x| f(x)),
            &|(), ()| (),
        );
    }

    /// Parallel fold: each leaf starts from `identity()` and folds its
    /// items with `fold`; partial accumulators are merged with
    /// `combine`. `combine` must be associative and `identity` its
    /// unit, or the result depends on the split points.
    pub fn fold<C, A, ID, F, OP>(self, c: &mut C, identity: ID, fold: F, combine: OP) -> A
    where
        C: Fork,
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, P::Item) -> A + Sync,
        OP: Fn(A, A) -> A + Sync,
    {
        let grain = effective_grain(c, self.p.len(), self.grain);
        split_reduce(
            c,
            self.p,
            grain,
            &|p: P| p.fold_seq(identity(), &fold),
            &combine,
        )
    }

    /// Parallel reduction of the items themselves with an associative
    /// `op`; `identity()` must be `op`'s unit.
    pub fn reduce<C, ID, OP>(self, c: &mut C, identity: ID, op: OP) -> P::Item
    where
        C: Fork,
        P::Item: Send,
        ID: Fn() -> P::Item + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Sync,
    {
        self.fold(c, &identity, &op, &op)
    }

    /// Sums the items (`Default::default()` as the zero).
    pub fn sum<C>(self, c: &mut C) -> P::Item
    where
        C: Fork,
        P::Item: Send + Default + std::ops::Add<Output = P::Item>,
    {
        self.reduce(c, P::Item::default, |a, b| a + b)
    }
}

impl<'a, T, P> ParIter<P>
where
    T: Copy + Sync + 'a,
    P: Producer<Item = &'a T>,
{
    /// Copies out of a by-reference iterator, like `Iterator::copied`
    /// (`par_iter(&xs).copied().sum(h)`).
    pub fn copied(self) -> ParMap<P, fn(&'a T) -> T, T>
    where
        T: Send,
    {
        self.map(|x: &'a T| *x)
    }
}

/// A lazy mapped parallel iterator (see [`ParIter::map`]).
pub struct ParMap<P, F, R> {
    p: P,
    f: F,
    grain: Option<usize>,
    _out: PhantomData<fn() -> R>,
}

/// The producer a `ParMap` consumer actually splits: the base producer
/// plus a shared reference to the map closure.
struct MapProducer<'f, P, F, R> {
    base: P,
    f: &'f F,
    _out: PhantomData<fn() -> R>,
}

impl<'f, P, F, R> Producer for MapProducer<'f, P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(index);
        (
            MapProducer {
                base: l,
                f: self.f,
                _out: PhantomData,
            },
            MapProducer {
                base: r,
                f: self.f,
                _out: PhantomData,
            },
        )
    }

    #[inline]
    fn fold_seq<A, G: FnMut(A, R) -> A>(self, acc: A, mut g: G) -> A {
        let f = self.f;
        self.base.fold_seq(acc, |a, x| g(a, f(x)))
    }
}

impl<P, F, R> ParMap<P, F, R>
where
    P: Producer,
    F: Fn(P::Item) -> R + Sync,
    R: Send,
{
    /// Number of items.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// Whether there are no items.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Pins the sequential-fallback cutoff (see [`ParIter::with_grain`]).
    ///
    /// # Panics
    /// Panics if `grain == 0`.
    pub fn with_grain(mut self, grain: usize) -> Self {
        assert!(grain >= 1, "grain must be at least 1");
        self.grain = Some(grain);
        self
    }

    /// Runs `g` on every mapped item, in parallel.
    pub fn for_each<C, G>(self, c: &mut C, g: G)
    where
        C: Fork,
        G: Fn(R) + Sync,
    {
        let grain = effective_grain(c, self.p.len(), self.grain);
        let mp = MapProducer {
            base: self.p,
            f: &self.f,
            _out: PhantomData,
        };
        split_reduce(
            c,
            mp,
            grain,
            &|p: MapProducer<'_, P, F, R>| p.fold_seq((), |(), x| g(x)),
            &|(), ()| (),
        );
    }

    /// Parallel fold over the mapped items (see [`ParIter::fold`]).
    pub fn fold<C, A, ID, G, OP>(self, c: &mut C, identity: ID, fold: G, combine: OP) -> A
    where
        C: Fork,
        A: Send,
        ID: Fn() -> A + Sync,
        G: Fn(A, R) -> A + Sync,
        OP: Fn(A, A) -> A + Sync,
    {
        let grain = effective_grain(c, self.p.len(), self.grain);
        let mp = MapProducer {
            base: self.p,
            f: &self.f,
            _out: PhantomData,
        };
        split_reduce(
            c,
            mp,
            grain,
            &|p: MapProducer<'_, P, F, R>| p.fold_seq(identity(), &fold),
            &combine,
        )
    }

    /// Parallel reduction of the mapped items (see [`ParIter::reduce`]).
    pub fn reduce<C, ID, OP>(self, c: &mut C, identity: ID, op: OP) -> R
    where
        C: Fork,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        self.fold(c, &identity, &op, &op)
    }

    /// Sums the mapped items (`Default::default()` as the zero).
    pub fn sum<C>(self, c: &mut C) -> R
    where
        C: Fork,
        R: Default + std::ops::Add<Output = R>,
    {
        self.reduce(c, R::default, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use crate::{par_iter, par_iter_mut, par_range};
    use wool_core::Pool;

    #[test]
    fn empty_and_singleton() {
        let mut pool: Pool = Pool::new(2);
        let xs: [u64; 0] = [];
        assert_eq!(pool.run(|h| par_iter(&xs).copied().sum(h)), 0);
        assert!(par_iter(&xs).is_empty());
        let one = [41u64];
        assert_eq!(pool.run(|h| par_iter(&one).map(|x| x + 1).sum(h)), 42);
        assert_eq!(pool.run(|h| par_range(0..0).sum(h)), 0);
    }

    #[test]
    fn explicit_grain_still_covers() {
        let mut pool: Pool = Pool::new(4);
        for grain in [1usize, 3, 64, 1 << 20] {
            let total = pool.run(|h| par_range(0..10_001).with_grain(grain).sum(h));
            assert_eq!(total, (0..10_001).sum::<usize>(), "grain {grain}");
        }
    }

    #[test]
    fn fold_counts_leaves_consistently() {
        let mut pool: Pool = Pool::new(3);
        let xs: Vec<u32> = (0..997).collect();
        let (sum, n) = pool.run(|h| {
            par_iter(&xs).fold(
                h,
                || (0u64, 0u64),
                |(s, n), x| (s + *x as u64, n + 1),
                |a, b| (a.0 + b.0, a.1 + b.1),
            )
        });
        assert_eq!(n, 997);
        assert_eq!(sum, (0..997u64).sum::<u64>());
    }

    #[test]
    fn reduce_max() {
        let mut pool: Pool = Pool::new(3);
        let xs: Vec<u64> = (0..5000).map(|i| (i * 2654435761) % 10_007).collect();
        let expect = *xs.iter().max().unwrap();
        let got = pool.run(|h| par_iter(&xs).copied().reduce(h, || 0, u64::max));
        assert_eq!(got, expect);
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        let mut pool: Pool = Pool::new(4);
        let mut xs = vec![0u64; 12_345];
        pool.run(|h| par_iter_mut(&mut xs).for_each(h, |x| *x += 1));
        assert!(xs.iter().all(|&x| x == 1));
    }

    #[test]
    fn min_grain_floor_respected() {
        use wool_core::PoolConfig;
        // A pool-wide floor coarser than the explicit grain: the floor
        // wins. Correctness is unchanged; this exercises the clamp.
        let cfg = PoolConfig::with_workers(2).min_grain(256);
        let mut pool: Pool = Pool::with_config(cfg);
        let total = pool.run(|h| par_range(0..1000).with_grain(1).sum(h));
        assert_eq!(total, (0..1000).sum::<usize>());
    }

    #[test]
    #[should_panic(expected = "grain must be at least 1")]
    fn zero_grain_rejected() {
        let _ = par_range(0..10).with_grain(0);
    }
}
