//! Serve-pool stress and correctness tests: concurrent submission from
//! many client threads, graceful drain, panic propagation, Future
//! resolution, backpressure, and lifecycle edge cases.

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use wool_serve::strategy::{Strategy, SyncOnTask};
use wool_serve::{PoolConfig, ServePool, SubmitError, WorkerHandle};

fn fib<S: Strategy>(h: &mut WorkerHandle<S>, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = h.fork(move |h| fib(h, n - 1), move |h| fib(h, n - 2));
    a + b
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_seq(n - 1) + fib_seq(n - 2)
    }
}

/// The acceptance-criteria stress: >= 10k jobs from >= 4 submitter
/// threads, every handle resolving to the right value, clean drain.
#[test]
fn stress_many_submitters() {
    const CLIENTS: usize = 4;
    const JOBS: usize = 2_600; // 4 * 2600 = 10_400 total

    let mut pool = ServePool::start(4);
    std::thread::scope(|s| {
        for client in 0..CLIENTS {
            let pool = &pool;
            s.spawn(move || {
                let mut handles = Vec::with_capacity(JOBS);
                for i in 0..JOBS {
                    let n = 2 + ((client * JOBS + i) % 11) as u64; // fib(2..=12)
                    handles.push((n, pool.submit(move |h| fib(h, n)).unwrap()));
                }
                for (n, h) in handles {
                    assert_eq!(h.join(), fib_seq(n), "client {client} fib({n})");
                }
            });
        }
    });
    let report = pool.shutdown().expect("first shutdown returns a report");
    assert_eq!(report.jobs, (CLIENTS * JOBS) as u64);
    assert_eq!(pool.pending_jobs(), 0);
}

/// Jobs submitted right up to the drain are all completed by shutdown,
/// even when nobody joins their handles.
#[test]
fn shutdown_drains_queued_jobs() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut pool = ServePool::start(2);
    for _ in 0..500 {
        let counter = Arc::clone(&counter);
        pool.submit(move |_| {
            counter.fetch_add(1, SeqCst);
        })
        .unwrap();
    }
    let report = pool.shutdown().unwrap();
    assert_eq!(counter.load(SeqCst), 500);
    assert_eq!(report.jobs, 500);
    // Second shutdown is a no-op.
    assert!(pool.shutdown().is_none());
}

#[test]
fn panic_propagates_to_join_not_worker() {
    let pool = ServePool::start(2);
    let bad = pool
        .submit(|_| -> u64 { panic!("job exploded (expected)") })
        .unwrap();
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| bad.join()))
        .expect_err("join must re-raise the job's panic");
    let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
    assert!(msg.contains("job exploded"), "unexpected payload: {msg:?}");

    // The worker that ran the panicking job is still alive and serving.
    let ok = pool.submit(|h| fib(h, 10)).unwrap();
    assert_eq!(ok.join(), 55);
}

#[test]
fn try_join_polls_without_blocking() {
    let pool = ServePool::start(1);
    let gate = Arc::new(AtomicBool::new(false));
    let g = Arc::clone(&gate);
    let mut h = pool
        .submit(move |_| {
            while !g.load(SeqCst) {
                std::thread::yield_now();
            }
            7u32
        })
        .unwrap();
    // The job cannot have finished: it is parked on the gate.
    assert!(!h.is_finished());
    h = h.try_join().expect_err("job still running");
    gate.store(true, SeqCst);
    loop {
        match h.try_join() {
            Ok(v) => {
                assert_eq!(v, 7);
                break;
            }
            Err(back) => {
                h = back;
                std::thread::yield_now();
            }
        }
    }
}

/// Minimal executor: poll on this thread, sleep between polls on
/// thread-park, wake on unpark.
fn block_on<F: Future>(fut: F) -> F::Output {
    struct ThreadWaker(std::thread::Thread);
    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
    }
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut cx = Context::from_waker(&waker);
    let mut fut = Box::pin(fut);
    loop {
        match Pin::new(&mut fut).poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => std::thread::park_timeout(Duration::from_millis(50)),
        }
    }
}

#[test]
fn handle_is_a_future() {
    let pool = ServePool::start(2);
    let handles: Vec<_> = (0..64u64)
        .map(|i| pool.submit(move |h| fib(h, 8) + i).unwrap())
        .collect();
    let expected: u64 = (0..64).map(|i| fib_seq(8) + i).sum();
    let total: u64 = block_on(async {
        let mut sum = 0;
        for h in handles {
            sum += h.await;
        }
        sum
    });
    assert_eq!(total, expected);
}

/// Backpressure: with the lone worker wedged and the injector full,
/// `try_submit` sheds load with `Full`; once the worker is released,
/// everything that was accepted still completes.
#[test]
fn try_submit_reports_full_queue() {
    /// Releases the wedged worker even if an assertion unwinds, so the
    /// pool's drop-drain can finish and the real failure surfaces
    /// instead of a hang.
    struct GateRelease(Arc<AtomicBool>);
    impl Drop for GateRelease {
        fn drop(&mut self) {
            self.0.store(true, SeqCst);
        }
    }

    let cfg = PoolConfig::with_workers(1).injector_capacity(2);
    let pool: ServePool = ServePool::with_config(cfg);
    assert_eq!(pool.queue_capacity(), 2);

    let started = Arc::new(AtomicBool::new(false));
    let gate = Arc::new(AtomicBool::new(false));
    let release = GateRelease(Arc::clone(&gate));
    let (s, g) = (Arc::clone(&started), Arc::clone(&gate));
    let blocker = pool
        .submit(move |_| {
            s.store(true, SeqCst);
            while !g.load(SeqCst) {
                std::thread::yield_now();
            }
        })
        .unwrap();

    // Wait until the lone worker is provably wedged inside the blocker
    // (queue empty again), then fill the queue deterministically.
    while !started.load(SeqCst) {
        std::thread::yield_now();
    }
    let a = pool.try_submit(|h| fib(h, 5)).expect("slot 1 of 2");
    let b = pool.try_submit(|h| fib(h, 5)).expect("slot 2 of 2");
    assert_eq!(
        pool.try_submit(|h| fib(h, 5)).expect_err("queue is full"),
        SubmitError::Full
    );

    drop(release); // gate := true
    blocker.join();
    assert_eq!(a.join(), fib_seq(5));
    assert_eq!(b.join(), fib_seq(5));
}

#[test]
fn submit_after_shutdown_is_rejected() {
    let mut pool = ServePool::start(2);
    pool.submit(|h| fib(h, 10)).unwrap().join();
    pool.shutdown().unwrap();
    assert_eq!(
        pool.submit(|_| 1u32).expect_err("pool is stopped"),
        SubmitError::ShuttingDown
    );
    assert_eq!(
        pool.try_submit(|_| 1u32).expect_err("pool is stopped"),
        SubmitError::ShuttingDown
    );
}

/// Dropping the pool without an explicit shutdown still drains and
/// stops the workers (no leaked threads, no lost jobs).
#[test]
fn drop_is_graceful() {
    let counter = Arc::new(AtomicUsize::new(0));
    {
        let pool = ServePool::start(2);
        for _ in 0..200 {
            let counter = Arc::clone(&counter);
            pool.submit(move |_| {
                counter.fetch_add(1, SeqCst);
            })
            .unwrap();
        }
        // `pool` dropped here.
    }
    assert_eq!(counter.load(SeqCst), 200);
}

/// Dropping a handle detaches the job; it still runs.
#[test]
fn dropped_handle_detaches() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut pool = ServePool::start(2);
    for _ in 0..100 {
        let counter = Arc::clone(&counter);
        drop(
            pool.submit(move |_| {
                counter.fetch_add(1, SeqCst);
            })
            .unwrap(),
        );
    }
    pool.shutdown().unwrap();
    assert_eq!(counter.load(SeqCst), 100);
}

/// The serve pool is strategy-generic like the batch pool.
#[test]
fn non_default_strategy_serves() {
    let mut pool: ServePool<SyncOnTask> = ServePool::with_config(PoolConfig::with_workers(3));
    assert_eq!(pool.strategy_name(), "sync-on-task");
    let h = pool.submit(|h| fib(h, 15)).unwrap();
    assert_eq!(h.join(), fib_seq(15));
    pool.shutdown().unwrap();
}

/// Satellite: zero workers must be rejected loudly, not hang.
#[test]
fn zero_workers_rejected() {
    let err = match std::panic::catch_unwind(|| ServePool::start(0)) {
        Ok(_) => panic!("ServePool::start(0) must panic"),
        Err(e) => e,
    };
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("at least one worker"),
        "panic message should explain the fix: {msg:?}"
    );
}

/// Trace-feature smoke: the injector boundaries show up in the merged
/// trace as inject/dequeue/job_done events.
#[cfg(feature = "trace")]
#[test]
fn trace_records_injector_events() {
    use wool_core::wool_trace::EventKind;

    let cfg = PoolConfig::with_workers(2)
        .instrument_trace(true)
        .trace_capacity(4096);
    let mut pool: ServePool = ServePool::with_config(cfg);
    let jobs = 16;
    let handles: Vec<_> = (0..jobs)
        .map(|_| pool.submit(|h| fib(h, 8)).unwrap())
        .collect();
    for h in handles {
        assert_eq!(h.join(), fib_seq(8));
    }
    let report = pool.shutdown().unwrap();
    let trace = report.trace.expect("trace configured");
    let count = |k: EventKind| {
        trace
            .workers
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| e.kind == k)
            .count()
    };
    assert_eq!(count(EventKind::Dequeue), jobs, "one dequeue per job");
    assert_eq!(count(EventKind::JobDone), jobs, "one job_done per job");
    assert_eq!(count(EventKind::Inject), jobs, "one inject per job");
}
