//! The serve pool: lifecycle, submission, graceful drain.

use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use wool_core::sync::atomic::Ordering::SeqCst;
use wool_core::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize};

use wool_core::injector::Runnable;
use wool_core::serve::{ServeEngine, ServeReport};
use wool_core::strategy::{Strategy, WoolFull};
use wool_core::{cycles, Job, PoolConfig, WorkerHandle};

use crate::handle::{JobCore, JobHandle};

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The injector queue is at capacity (only returned by
    /// [`try_submit`](ServePool::try_submit); [`submit`](ServePool::submit)
    /// applies backpressure instead).
    Full,
    /// [`shutdown`](ServePool::shutdown) has begun (or completed): the
    /// pool no longer accepts jobs.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full => write!(f, "injector queue is full"),
            SubmitError::ShuttingDown => write!(f, "serve pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Submission gate: tracks in-flight jobs for the graceful drain and
/// rejects submissions once draining has begun.
struct Gate {
    /// Set by `shutdown`; checked by every submission.
    draining: AtomicBool,
    /// Jobs accepted but not yet completed (queued + running).
    pending: AtomicUsize,
    /// Sleep/wake pair for the drain wait.
    mx: Mutex<()>,
    cv: Condvar,
    /// Tag sequence for trace correlation.
    next_tag: AtomicU32,
}

impl Gate {
    /// Called on every job completion (run, or disposed at teardown).
    fn job_finished(&self) {
        if self.pending.fetch_sub(1, SeqCst) == 1 && self.draining.load(SeqCst) {
            let _g = self.mx.lock().unwrap();
            self.cv.notify_all();
        }
    }
}

/// The payload behind a [`Runnable`]: the user closure plus the wiring
/// to resolve its handle and the drain accounting.
struct Payload<S: Strategy, F, R> {
    f: F,
    core: Arc<JobCore<R>>,
    gate: Arc<Gate>,
    _strategy: PhantomData<fn(S)>,
}

/// Monomorphized job entry point; `ctx` is the executing worker's
/// `WorkerHandle<S>` (see `wool_core::injector::Runnable::new`).
unsafe fn run_payload<S, F, R>(data: *mut (), ctx: *mut ())
where
    S: Strategy,
    F: FnOnce(&mut WorkerHandle<S>) -> R + Send,
    R: Send,
{
    let Payload { f, core, gate, .. } = *Box::from_raw(data as *mut Payload<S, F, R>);
    let h = &mut *(ctx as *mut WorkerHandle<S>);
    // Contain the job's panic to the job: the worker survives, the
    // panic payload travels to whoever joins the handle.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| f(h)));
    core.complete(outcome);
    gate.job_finished();
}

/// Disposal path for a job that will never run (pool torn down with the
/// job still queued, or a failed `try_submit`): resolve the handle with
/// a panic payload so no waiter hangs, and balance the drain counter.
unsafe fn drop_payload<S, F, R>(data: *mut ())
where
    S: Strategy,
    F: FnOnce(&mut WorkerHandle<S>) -> R + Send,
    R: Send,
{
    let Payload { f, core, gate, .. } = *Box::from_raw(data as *mut Payload<S, F, R>);
    drop(f);
    core.complete(Err(Box::new(
        "wool-serve: job discarded without running (pool torn down)",
    )));
    gate.job_finished();
}

/// A persistent work-stealing pool accepting concurrent job submissions
/// from any thread.
///
/// Unlike the batch [`wool_core::Pool`], *all* workers are background
/// threads and there is no notion of a single parallel region: the pool
/// is started once, serves jobs submitted through the bounded global
/// injector for as long as it lives, and drains gracefully on
/// [`shutdown`](ServePool::shutdown). Each job runs as the root of its
/// own fork-join region — inside the job closure, `fork` /
/// `for_each_spawn` parallelism work exactly as under `Pool::run`, and
/// idle workers steal across concurrently running jobs.
///
/// ```
/// use wool_serve::ServePool;
///
/// let pool = ServePool::start(4);
/// let h = pool.submit(|h| {
///     let (a, b) = h.fork(|_| 21u64, |_| 21u64);
///     a + b
/// }).unwrap();
/// assert_eq!(h.join(), 42);
/// ```
pub struct ServePool<S: Strategy = WoolFull> {
    engine: Option<ServeEngine<S>>,
    gate: Arc<Gate>,
}

impl ServePool<WoolFull> {
    /// Starts a pool of `workers` workers with the default
    /// configuration and the full Wool strategy.
    ///
    /// # Panics
    /// Panics when `workers == 0` — a serve pool with no workers could
    /// never run a job (see [`PoolConfig::validated`]).
    pub fn start(workers: usize) -> Self {
        Self::with_config(PoolConfig::with_workers(workers))
    }
}

impl<S: Strategy> ServePool<S> {
    /// Starts a pool from an explicit configuration (any strategy).
    ///
    /// # Panics
    /// Panics when `cfg.workers == 0`.
    pub fn with_config(cfg: PoolConfig) -> Self {
        ServePool {
            engine: Some(ServeEngine::start(cfg)),
            gate: Arc::new(Gate {
                draining: AtomicBool::new(false),
                pending: AtomicUsize::new(0),
                mx: Mutex::new(()),
                cv: Condvar::new(),
                next_tag: AtomicU32::new(0),
            }),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.engine.as_ref().map_or(0, |e| e.workers())
    }

    /// Capacity of the injector queue (after power-of-two rounding).
    pub fn queue_capacity(&self) -> usize {
        self.engine.as_ref().map_or(0, |e| e.injector_capacity())
    }

    /// Jobs accepted but not yet completed (queued plus running).
    pub fn pending_jobs(&self) -> usize {
        self.gate.pending.load(SeqCst)
    }

    /// The strategy name (paper series label).
    pub fn strategy_name(&self) -> &'static str {
        S::NAME
    }

    /// Submits a job, blocking (yield-spinning) while the injector is
    /// full. Returns a [`JobHandle`] resolving to the closure's result.
    ///
    /// Safe to call from any thread, concurrently; `&self` is enough.
    pub fn submit<R, F>(&self, f: F) -> Result<JobHandle<R>, SubmitError>
    where
        F: FnOnce(&mut WorkerHandle<S>) -> R + Send + 'static,
        R: Send + 'static,
    {
        let engine = self.engine.as_ref().ok_or(SubmitError::ShuttingDown)?;
        let (mut job, handle) = self.make_job(f)?;
        loop {
            match engine.submit(job) {
                Ok(()) => return Ok(handle),
                Err(back) => {
                    if self.gate.draining.load(SeqCst) {
                        // Dropping the runnable resolves `handle` with a
                        // teardown panic; we never give it out.
                        drop(back);
                        return Err(SubmitError::ShuttingDown);
                    }
                    job = back;
                    wool_core::sync::thread::yield_now();
                }
            }
        }
    }

    /// Submits a job without blocking: fails with
    /// [`SubmitError::Full`] when the injector is at capacity (load
    /// shedding).
    pub fn try_submit<R, F>(&self, f: F) -> Result<JobHandle<R>, SubmitError>
    where
        F: FnOnce(&mut WorkerHandle<S>) -> R + Send + 'static,
        R: Send + 'static,
    {
        let engine = self.engine.as_ref().ok_or(SubmitError::ShuttingDown)?;
        let (job, handle) = self.make_job(f)?;
        match engine.submit(job) {
            Ok(()) => Ok(handle),
            Err(back) => {
                drop(back);
                Err(SubmitError::Full)
            }
        }
    }

    /// Submits an executor-agnostic [`Job`] (the interface the paper's
    /// workloads are written against).
    pub fn submit_job<R, J>(&self, job: J) -> Result<JobHandle<R>, SubmitError>
    where
        J: Job<R> + 'static,
        R: Send + 'static,
    {
        self.submit(move |h| job.call(h))
    }

    /// Packages a closure into an injectable runnable plus its handle,
    /// registering it with the drain gate.
    fn make_job<R, F>(&self, f: F) -> Result<(Runnable, JobHandle<R>), SubmitError>
    where
        F: FnOnce(&mut WorkerHandle<S>) -> R + Send + 'static,
        R: Send + 'static,
    {
        // Count the job *before* the drain check: `shutdown` sets
        // `draining` and then waits for `pending == 0`, so whichever
        // side wins this race, no accepted job is left behind.
        self.gate.pending.fetch_add(1, SeqCst);
        if self.gate.draining.load(SeqCst) {
            self.gate.job_finished();
            return Err(SubmitError::ShuttingDown);
        }
        let core = Arc::new(JobCore::new());
        let handle = JobHandle::new(Arc::clone(&core));
        let payload = Box::new(Payload::<S, F, R> {
            f,
            core,
            gate: Arc::clone(&self.gate),
            _strategy: PhantomData,
        });
        let tag = self.gate.next_tag.fetch_add(1, SeqCst);
        // SAFETY: the box pointer is consumed exactly once by either
        // `run_payload` (a worker of this pool, whose handle is a
        // `WorkerHandle<S>` — the type this call is monomorphized for)
        // or `drop_payload`; the payload is Send by the bounds above.
        let job = unsafe {
            Runnable::new(
                Box::into_raw(payload) as *mut (),
                run_payload::<S, F, R>,
                drop_payload::<S, F, R>,
                cycles::now(),
                tag,
            )
        };
        Ok((job, handle))
    }

    /// Graceful shutdown: stop accepting submissions, wait until every
    /// accepted job has completed, then stop the workers. Returns the
    /// session report (scheduler statistics, job count, and — when
    /// tracing was configured — the merged event trace), or `None` if
    /// the pool was already shut down.
    ///
    /// Submissions racing with shutdown either complete before the
    /// drain finishes or are rejected with
    /// [`SubmitError::ShuttingDown`]; none are silently lost.
    pub fn shutdown(&mut self) -> Option<ServeReport> {
        let engine = self.engine.take()?;
        self.gate.draining.store(true, SeqCst);
        {
            let mut g = self.gate.mx.lock().unwrap();
            while self.gate.pending.load(SeqCst) != 0 {
                // The timeout covers the completion-before-draining
                // race (a finisher that missed the notify condition).
                let (guard, _) = self
                    .gate
                    .cv
                    .wait_timeout(g, Duration::from_millis(10))
                    .unwrap();
                g = guard;
            }
        }
        Some(engine.stop())
    }
}

impl<S: Strategy> Drop for ServePool<S> {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

// Submission is `&self` and internally synchronized; handing references
// across threads (e.g. `thread::scope` clients) is the intended use.
// The auto-traits would already derive this, but spell the requirement
// out against accidental regressions:
const _: fn() = || {
    fn assert_sync<T: Sync + Send>() {}
    assert_sync::<ServePool<WoolFull>>();
};
