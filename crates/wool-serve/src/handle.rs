//! Job completion objects: the consumer half of a submission.
//!
//! A [`JobHandle`] is what [`submit`](crate::ServePool::submit) hands
//! back: a one-shot future resolving to the job's result. It supports
//! all three consumption styles a service needs — non-blocking polls
//! ([`try_join`](JobHandle::try_join)), blocking waits
//! ([`join`](JobHandle::join)), and `std::future::Future` for async
//! runtimes — and it propagates a panic raised inside the job to
//! whichever consumer resolves it, mirroring `std::thread::JoinHandle`.
//!
//! The completion path is lock-free for the common case: the worker
//! writes the result and flips one atomic; the mutex/condvar pair is
//! touched only when a consumer actually has to sleep (or registered an
//! async waker).

use std::cell::UnsafeCell;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Waker};
use wool_core::sync::atomic::AtomicU8;
use wool_core::sync::atomic::Ordering::{Acquire, Release};

const PENDING: u8 = 0;
const DONE: u8 = 1;

/// What the job produced: the result, or the panic it raised.
type Outcome<R> = std::thread::Result<R>; // lint-ok: type alias only, no thread API use

struct Waiters {
    /// Mirror of the DONE state, maintained under the lock so a
    /// sleeping `join` cannot miss the notify.
    done: bool,
    /// At most one async consumer (the handle is not cloneable).
    waker: Option<Waker>,
}

/// Shared completion cell between the worker that runs the job and the
/// handle that consumes it.
pub(crate) struct JobCore<R> {
    state: AtomicU8,
    outcome: UnsafeCell<Option<Outcome<R>>>,
    waiters: Mutex<Waiters>,
    cv: Condvar,
}

// SAFETY: `outcome` is written exactly once by the completing worker
// before the Release store of DONE, and read only by the single handle
// owner after an Acquire load of DONE — a classic one-shot hand-off.
unsafe impl<R: Send> Send for JobCore<R> {}
unsafe impl<R: Send> Sync for JobCore<R> {}

impl<R> JobCore<R> {
    pub(crate) fn new() -> Self {
        JobCore {
            state: AtomicU8::new(PENDING),
            outcome: UnsafeCell::new(None),
            waiters: Mutex::new(Waiters {
                done: false,
                waker: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Publishes the job's outcome and wakes every kind of waiter.
    /// Called exactly once, by the worker that ran the job (or by the
    /// teardown path for a job that will never run).
    pub(crate) fn complete(&self, outcome: Outcome<R>) {
        // SAFETY: single writer (exactly-once contract), and no reader
        // until the Release store below.
        unsafe { *self.outcome.get() = Some(outcome) };
        self.state.store(DONE, Release);
        let waker = {
            let mut w = self.waiters.lock().unwrap();
            w.done = true;
            w.waker.take()
        };
        self.cv.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }

    fn is_done(&self) -> bool {
        self.state.load(Acquire) == DONE
    }

    /// Takes the outcome. Caller must have observed `is_done()`.
    ///
    /// # Safety
    /// Requires exclusive access to the consuming handle (guaranteed:
    /// `JobHandle` is not cloneable and the takers borrow it mutably or
    /// consume it).
    unsafe fn take(&self) -> Outcome<R> {
        (*self.outcome.get())
            .take()
            .expect("job outcome already consumed")
    }
}

fn resolve<R>(outcome: Outcome<R>) -> R {
    match outcome {
        Ok(r) => r,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// A handle to a submitted job: poll it, block on it, or `.await` it.
///
/// Dropping the handle detaches the job (it still runs to completion;
/// the result is discarded) — the same semantics as
/// `std::thread::JoinHandle`.
pub struct JobHandle<R> {
    core: Arc<JobCore<R>>,
}

impl<R: Send> JobHandle<R> {
    pub(crate) fn new(core: Arc<JobCore<R>>) -> Self {
        JobHandle { core }
    }

    /// Whether the job has finished (successfully or by panicking).
    pub fn is_finished(&self) -> bool {
        self.core.is_done()
    }

    /// Non-blocking: returns the result if the job has finished, or
    /// the handle back if it is still running.
    ///
    /// # Panics
    /// Re-raises the job's panic, if it panicked.
    pub fn try_join(self) -> Result<R, Self> {
        if self.core.is_done() {
            // SAFETY: handle consumed by value — exclusive access.
            Ok(resolve(unsafe { self.core.take() }))
        } else {
            Err(self)
        }
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// # Panics
    /// Re-raises the job's panic, if it panicked.
    pub fn join(self) -> R {
        if !self.core.is_done() {
            let mut w = self.core.waiters.lock().unwrap();
            while !w.done {
                w = self.core.cv.wait(w).unwrap();
            }
        }
        // SAFETY: handle consumed by value — exclusive access.
        resolve(unsafe { self.core.take() })
    }
}

impl<R: Send> Future for JobHandle<R> {
    type Output = R;

    /// Resolves to the job's result; re-raises the job's panic.
    ///
    /// Like `std::thread`'s scoped join handles, polling again after
    /// `Ready` panics (the result has been moved out).
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<R> {
        let this = self.get_mut();
        if this.core.is_done() {
            // SAFETY: pinned exclusive borrow of the only handle.
            return Poll::Ready(resolve(unsafe { this.core.take() }));
        }
        let mut w = this.core.waiters.lock().unwrap();
        if w.done {
            drop(w);
            // SAFETY: as above.
            return Poll::Ready(resolve(unsafe { this.core.take() }));
        }
        w.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<R> std::fmt::Debug for JobHandle<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.core.is_done())
            .finish()
    }
}
