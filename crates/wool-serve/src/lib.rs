//! wool-serve: a persistent service layer over the Wool work-stealing
//! runtime.
//!
//! The paper's executor ([`wool_core::Pool`]) is batch-shaped: call
//! `run`, the calling thread becomes worker 0, the pool returns when
//! the single root job finishes. That is the right shape for
//! benchmarks, but a server wants the dual: a pool that outlives any
//! one computation and accepts jobs from many threads at once.
//!
//! [`ServePool`] provides that. Jobs enter through a bounded, lock-free
//! MPMC injector queue; workers only look at the injector *after* a
//! failed steal sweep, so the paper's direct-task-stack fast path —
//! private tasks, trip-wire publication, leapfrogging — is byte-for-
//! byte the one `Pool::run` uses. Each submission returns a
//! [`JobHandle`]: poll it, block on it, or `.await` it; panics inside
//! the job resurface at the join, never on the worker.
//!
//! ```
//! use wool_serve::ServePool;
//!
//! let pool = ServePool::start(4);
//!
//! // Submit from any thread; each job is a fork-join root.
//! let handles: Vec<_> = (0..8u64)
//!     .map(|i| {
//!         pool.submit(move |h| {
//!             let (a, b) = h.fork(move |_| i * i, move |_| i);
//!             a + b
//!         })
//!         .unwrap()
//!     })
//!     .collect();
//!
//! let total: u64 = handles.into_iter().map(|h| h.join()).sum();
//! assert_eq!(total, (0..8).map(|i| i * i + i).sum());
//! ```
//!
//! Design rationale for the injector (and why it is *not* a per-worker
//! structure) is in `DESIGN.md` §10; the `trace` feature records
//! `inject` / `dequeue` / `job_done` events at the queue boundaries
//! (see `docs/TRACING.md`).

mod handle;
mod pool;

pub use handle::JobHandle;
pub use pool::{ServePool, SubmitError};

// Everything needed to configure a pool and write a job closure.
pub use wool_core::serve::ServeReport;
pub use wool_core::strategy;
pub use wool_core::{Job, PoolConfig, Stats, WorkerHandle};
