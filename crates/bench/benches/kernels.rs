//! End-to-end kernels (small instances of the paper's workloads) on the
//! full Wool scheduler vs the baselines vs serial.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ws_bench::{System, SystemKind};
use workloads::{WorkloadKind, WorkloadSpec};

fn bench_kernel(c: &mut Criterion, spec: WorkloadSpec) {
    for kind in [
        SystemKind::Serial,
        SystemKind::Wool,
        SystemKind::TbbLike,
        SystemKind::CilkLike,
    ] {
        let mut sys = System::create(kind, 2);
        let name = spec.name();
        c.bench_with_input(
            BenchmarkId::new(format!("kernel/{name}"), kind.name()),
            &(),
            |b, _| {
                b.iter(|| sys.run_job(spec.job()));
            },
        );
    }
}

fn benches(c: &mut Criterion) {
    bench_kernel(
        c,
        WorkloadSpec { kind: WorkloadKind::Fib, p1: 20, p2: 0, reps: 1 },
    );
    bench_kernel(
        c,
        WorkloadSpec { kind: WorkloadKind::Stress, p1: 6, p2: 256, reps: 4 },
    );
    bench_kernel(
        c,
        WorkloadSpec { kind: WorkloadKind::Mm, p1: 48, p2: 0, reps: 1 },
    );
    bench_kernel(
        c,
        WorkloadSpec { kind: WorkloadKind::Ssf, p1: 11, p2: 0, reps: 1 },
    );
    bench_kernel(
        c,
        WorkloadSpec { kind: WorkloadKind::Cholesky, p1: 100, p2: 400, reps: 1 },
    );
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(group);
