//! End-to-end kernels (small instances of the paper's workloads) on the
//! full Wool scheduler vs the baselines vs serial.

use workloads::{WorkloadKind, WorkloadSpec};
use ws_bench::microbench::Bench;
use ws_bench::{System, SystemKind};

fn bench_kernel(b: &mut Bench, spec: WorkloadSpec) {
    for kind in [
        SystemKind::Serial,
        SystemKind::Wool,
        SystemKind::TbbLike,
        SystemKind::CilkLike,
    ] {
        let mut sys = System::create(kind, 2);
        let name = spec.name();
        b.bench(&format!("kernel/{name}/{}", kind.name()), || {
            std::hint::black_box(sys.run_job(spec.job()));
        });
    }
}

fn main() {
    let mut b = Bench::from_args();
    bench_kernel(
        &mut b,
        WorkloadSpec {
            kind: WorkloadKind::Fib,
            p1: 20,
            p2: 0,
            reps: 1,
        },
    );
    bench_kernel(
        &mut b,
        WorkloadSpec {
            kind: WorkloadKind::Stress,
            p1: 6,
            p2: 256,
            reps: 4,
        },
    );
    bench_kernel(
        &mut b,
        WorkloadSpec {
            kind: WorkloadKind::Mm,
            p1: 48,
            p2: 0,
            reps: 1,
        },
    );
    bench_kernel(
        &mut b,
        WorkloadSpec {
            kind: WorkloadKind::Ssf,
            p1: 11,
            p2: 0,
            reps: 1,
        },
    );
    bench_kernel(
        &mut b,
        WorkloadSpec {
            kind: WorkloadKind::Cholesky,
            p1: 100,
            p2: 400,
            reps: 1,
        },
    );
    b.finish();
}
