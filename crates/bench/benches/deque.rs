//! Microbenchmark: owner-end push/pop throughput of the task-pool
//! substrates — our Chase–Lev (fenced pop), the locked deque, and the
//! idempotent LIFO pool.

use ws_bench::microbench::Bench;
use ws_deque::chase_lev::OwnerToken;
use ws_deque::{ChaseLev, IdempotentLifo, LockedDeque, StealProtocol};

const N: usize = 1000;

fn main() {
    let mut b = Bench::from_args();
    b.bench("deque/chase-lev push+pop", || {
        let d = ChaseLev::new();
        // SAFETY: single-threaded bench owns the deque.
        let mut tok = unsafe { OwnerToken::new() };
        for i in 0..N {
            d.push(i, &mut tok);
        }
        for _ in 0..N {
            std::hint::black_box(d.pop(&mut tok));
        }
    });
    b.bench("deque/locked push+pop", || {
        let d = LockedDeque::new();
        for i in 0..N {
            d.push(i);
        }
        for _ in 0..N {
            std::hint::black_box(d.pop());
        }
    });
    b.bench("deque/locked steal(base)", || {
        let d = LockedDeque::new();
        for i in 0..N {
            d.push(i);
        }
        for _ in 0..N {
            std::hint::black_box(d.steal(StealProtocol::Base));
        }
    });
    b.bench("deque/idempotent put+take", || {
        let d = IdempotentLifo::new(2 * N);
        // SAFETY: single-threaded bench owns the pool.
        unsafe {
            for i in 0..N {
                let _ = d.put(i);
            }
            for _ in 0..N {
                std::hint::black_box(d.take());
            }
        }
    });
    b.finish();
}
