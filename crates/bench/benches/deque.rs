//! Microbenchmark: owner-end push/pop throughput of the task-pool
//! substrates — our Chase–Lev (fenced pop), the locked deque, and, for
//! context, crossbeam's production Chase–Lev.

use criterion::{criterion_group, criterion_main, Criterion};
use ws_deque::chase_lev::OwnerToken;
use ws_deque::{ChaseLev, IdempotentLifo, LockedDeque, StealProtocol};

const N: usize = 1000;

fn benches(c: &mut Criterion) {
    c.bench_function("deque/chase-lev push+pop", |b| {
        let d = ChaseLev::new();
        // SAFETY: single-threaded bench owns the deque.
        let mut tok = unsafe { OwnerToken::new() };
        b.iter(|| {
            for i in 0..N {
                d.push(i, &mut tok);
            }
            for _ in 0..N {
                std::hint::black_box(d.pop(&mut tok));
            }
        });
    });
    c.bench_function("deque/locked push+pop", |b| {
        let d = LockedDeque::new();
        b.iter(|| {
            for i in 0..N {
                d.push(i);
            }
            for _ in 0..N {
                std::hint::black_box(d.pop());
            }
        });
    });
    c.bench_function("deque/locked steal(base)", |b| {
        let d = LockedDeque::new();
        b.iter(|| {
            for i in 0..N {
                d.push(i);
            }
            for _ in 0..N {
                std::hint::black_box(d.steal(StealProtocol::Base));
            }
        });
    });
    c.bench_function("deque/idempotent put+take", |b| {
        let d = IdempotentLifo::new(2 * N);
        b.iter(|| {
            // SAFETY: single-threaded bench owns the pool.
            unsafe {
                for i in 0..N {
                    let _ = d.put(i);
                }
                for _ in 0..N {
                    std::hint::black_box(d.take());
                }
            }
        });
    });
    c.bench_function("deque/crossbeam push+pop", |b| {
        let d = crossbeam_deque::Worker::new_lifo();
        b.iter(|| {
            for i in 0..N {
                d.push(i);
            }
            for _ in 0..N {
                std::hint::black_box(d.pop());
            }
        });
    });
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(30);
    targets = benches
}
criterion_main!(group);
