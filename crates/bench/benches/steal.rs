//! Microbenchmark: load-balancing cost under the Figure 4 steal
//! protocols — small task trees with busy leaves on 2 workers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wool_core::{Pool, StealLockBase, StealLockPeek, StealLockTrylock, Strategy, TaskSpecific};
use workloads::stress::tree;

fn bench_steal<S: Strategy>(c: &mut Criterion, label: &str) {
    let mut pool: Pool<S> = Pool::new(2);
    c.bench_with_input(BenchmarkId::new("steal", label), &(), |b, _| {
        b.iter(|| pool.run(|h| tree(h, 6, std::hint::black_box(256))));
    });
}

fn benches(c: &mut Criterion) {
    bench_steal::<StealLockBase>(c, "base");
    bench_steal::<StealLockPeek>(c, "peek");
    bench_steal::<StealLockTrylock>(c, "trylock");
    bench_steal::<TaskSpecific>(c, "nolock");
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(15);
    targets = benches
}
criterion_main!(group);
