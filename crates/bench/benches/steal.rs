//! Microbenchmark: load-balancing cost under the Figure 4 steal
//! protocols — small task trees with busy leaves on 2 workers.

use wool_core::{Pool, StealLockBase, StealLockPeek, StealLockTrylock, Strategy, TaskSpecific};
use workloads::stress::tree;
use ws_bench::microbench::Bench;

fn bench_steal<S: Strategy>(b: &mut Bench, label: &str) {
    let mut pool: Pool<S> = Pool::new(2);
    b.bench(&format!("steal/{label}"), || {
        std::hint::black_box(pool.run(|h| tree(h, 6, std::hint::black_box(256))));
    });
}

fn main() {
    let mut b = Bench::from_args();
    bench_steal::<StealLockBase>(&mut b, "base");
    bench_steal::<StealLockPeek>(&mut b, "peek");
    bench_steal::<StealLockTrylock>(&mut b, "trylock");
    bench_steal::<TaskSpecific>(&mut b, "nolock");
    b.finish();
}
