//! Microbenchmark: cost of one spawn+inlined-join (the Table II fast
//! path) under every join strategy, plus the serial call baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wool_core::{
    Fork, LockedBase, Pool, PoolConfig, Strategy, SyncOnTask, TaskSpecific, WoolFull,
};

fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn bench_strategy<S: Strategy>(c: &mut Criterion, group: &str, force_public: bool) {
    let cfg = PoolConfig::with_workers(1).force_publish_all(force_public);
    let mut pool: Pool<S> = Pool::with_config(cfg);
    let label = if force_public {
        format!("{}+all-public", S::NAME)
    } else {
        S::NAME.to_string()
    };
    c.bench_with_input(BenchmarkId::new(group, label), &20u64, |b, &n| {
        b.iter(|| pool.run(|h| fib(h, std::hint::black_box(n))));
    });
}

fn benches(c: &mut Criterion) {
    c.bench_function("spawn_join/serial-call", |b| {
        b.iter(|| fib_serial(std::hint::black_box(20)))
    });
    bench_strategy::<LockedBase>(c, "spawn_join", false);
    bench_strategy::<SyncOnTask>(c, "spawn_join", false);
    bench_strategy::<TaskSpecific>(c, "spawn_join", false);
    bench_strategy::<WoolFull>(c, "spawn_join", true);
    bench_strategy::<WoolFull>(c, "spawn_join", false);
}

criterion_group! {
    name = group;
    config = Criterion::default().sample_size(20);
    targets = benches
}
criterion_main!(group);
