//! Microbenchmark: cost of one spawn+inlined-join (the Table II fast
//! path) under every join strategy, plus the serial call baseline.

use wool_core::{Fork, LockedBase, Pool, PoolConfig, Strategy, SyncOnTask, TaskSpecific, WoolFull};
use ws_bench::microbench::{repo_root_file, Bench};

fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn bench_strategy<S: Strategy>(b: &mut Bench, group: &str, force_public: bool) {
    let cfg = PoolConfig::with_workers(1).force_publish_all(force_public);
    let mut pool: Pool<S> = Pool::with_config(cfg);
    let label = if force_public {
        format!("{}+all-public", S::NAME)
    } else {
        S::NAME.to_string()
    };
    b.bench(&format!("{group}/{label}/20"), || {
        std::hint::black_box(pool.run(|h| fib(h, std::hint::black_box(20))));
    });
}

fn main() {
    let mut b = Bench::from_args();
    b.bench("spawn_join/serial-call", || {
        std::hint::black_box(fib_serial(std::hint::black_box(20)));
    });
    bench_strategy::<LockedBase>(&mut b, "spawn_join", false);
    bench_strategy::<SyncOnTask>(&mut b, "spawn_join", false);
    bench_strategy::<TaskSpecific>(&mut b, "spawn_join", false);
    bench_strategy::<WoolFull>(&mut b, "spawn_join", true);
    bench_strategy::<WoolFull>(&mut b, "spawn_join", false);
    b.finish();
    b.write_json(&repo_root_file("BENCH_spawn_join.json"));
}
