//! The paper's loop kernels, hand-rolled vs `wool-par` vs sequential.
//!
//! Two kernel shapes from `workloads::loops_par` — an in-place map
//! (`x <- x*x + 1`) and a dot-product reduce — each measured:
//!
//! * sequentially (the granularity model's `T_S`),
//! * with the hand-rolled recursive splitter at the same grain the
//!   adaptive model picks ("default") and across a grain sweep,
//! * with `wool-par` iterators, adaptive and across the same sweep.
//!
//! The acceptance bar for the iterator layer is to stay within 10% of
//! the hand-rolled splitter at the default grain: the abstraction may
//! not tax the fork path. Results land in `BENCH_par_loops.json` at
//! the repo root (median + p10/p90 per case) as the perf trajectory
//! future PRs compare against.

use wool_core::{config::default_workers, Pool, PoolConfig};
use workloads::loops_par::{
    dot_hand, dot_par, dot_par_grain, dot_seq, map_hand, map_par, map_par_grain, map_seq,
};
use ws_bench::microbench::{repo_root_file, Bench};

/// Items per kernel invocation: large enough to split 8 ways per
/// worker at default grain, small enough that one sample holds many
/// invocations.
const N: usize = 1 << 17;

/// Explicit leaf sizes for the grain sweep (items per leaf).
const GRAINS: [usize; 3] = [64, 1024, 16 * 1024];

fn main() {
    let mut b = Bench::from_args();
    let workers = default_workers();
    let mut pool: Pool = Pool::with_config(PoolConfig::with_workers(workers));
    let default_grain = wool_par::adaptive_grain(N, workers, 1);
    println!("par_loops: n = {N}, workers = {workers}, default grain = {default_grain}");

    // --- map kernel -------------------------------------------------
    let mut xs = vec![1u64; N];
    b.bench("par_loops/map/seq", || map_seq(&mut xs));
    b.bench("par_loops/map/hand/default", || {
        pool.run(|h| map_hand(h, &mut xs, default_grain));
    });
    b.bench("par_loops/map/wool-par/default", || {
        pool.run(|h| map_par(h, &mut xs));
    });
    for g in GRAINS {
        b.bench(&format!("par_loops/map/hand/grain{g}"), || {
            pool.run(|h| map_hand(h, &mut xs, g));
        });
        b.bench(&format!("par_loops/map/wool-par/grain{g}"), || {
            pool.run(|h| map_par_grain(h, &mut xs, g));
        });
    }

    // --- reduce kernel (dot product) --------------------------------
    let ys: Vec<u64> = (0..N as u64).map(|i| i.wrapping_mul(0x9E3779B9)).collect();
    let zs: Vec<u64> = (0..N as u64).rev().collect();
    let expect = dot_seq(&ys, &zs);
    b.bench("par_loops/reduce/seq", || {
        assert_eq!(dot_seq(&ys, &zs), expect);
    });
    b.bench("par_loops/reduce/hand/default", || {
        assert_eq!(pool.run(|h| dot_hand(h, &ys, &zs, default_grain)), expect);
    });
    b.bench("par_loops/reduce/wool-par/default", || {
        assert_eq!(pool.run(|h| dot_par(h, &ys, &zs)), expect);
    });
    for g in GRAINS {
        b.bench(&format!("par_loops/reduce/hand/grain{g}"), || {
            assert_eq!(pool.run(|h| dot_hand(h, &ys, &zs, g)), expect);
        });
        b.bench(&format!("par_loops/reduce/wool-par/grain{g}"), || {
            assert_eq!(pool.run(|h| dot_par_grain(h, &ys, &zs, g)), expect);
        });
    }

    b.finish();
    b.write_json(&repo_root_file("BENCH_par_loops.json"));
}
