//! The paper's simple steal-cost performance model (§IV-D2a, Table IV).
//!
//! For `p` processors the paper approximates the per-repetition cost as
//!
//! ```text
//! cost(p) = C_p + (W + 2 * (S_p - (p - 1)) * C_2) / p
//! ```
//!
//! where `C_2`/`C_p` are the measured steal costs for 2 and `p`
//! processors (Table III), `W` is the sequential work per repetition
//! (`RepSz`), and `S_p` the number of steals per repetition. The first
//! `p - 1` steals distribute work (cost `C_p`, paid once); each further
//! balancing steal costs `C_2` on both the thief and the joining victim
//! (factor 2). Predicted speedup is `W / cost(p)`.

/// Inputs of the Table IV model for one system and processor count.
#[derive(Debug, Clone, Copy)]
pub struct ModelInputs {
    /// Sequential work per repetition, cycles (`RepSz`).
    pub work: f64,
    /// Steal cost with 2 processors, cycles (Table III column "2").
    pub c2: f64,
    /// Steal cost with `p` processors, cycles (Table III column `p`).
    pub cp: f64,
    /// Steals per repetition at `p` processors.
    pub steals: f64,
    /// Processor count.
    pub p: usize,
}

minijson::impl_to_json!(ModelInputs {
    work,
    c2,
    cp,
    steals,
    p
});

/// Predicted speedup `W / cost(p)` under the paper's model.
pub fn steal_cost_model_speedup(m: ModelInputs) -> f64 {
    let p = m.p as f64;
    let balancing = (m.steals - (p - 1.0)).max(0.0);
    let cost = m.cp + (m.work + 2.0 * balancing * m.c2) / p;
    if cost <= 0.0 {
        0.0
    } else {
        m.work / cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduce the paper's own Table IV numbers from its published
    /// inputs: W = 976k cycles (mm(64) RepSz), ~17 steals at p = 8,
    /// Wool steal costs C_2 = 2200, C_8 = 10400 → model speedup 7.1.
    #[test]
    fn paper_wool_row() {
        let m = ModelInputs {
            work: 976_000.0,
            c2: 2_200.0,
            cp: 10_400.0,
            steals: 976_000.0 / 58_000.0, // ~16.8 steals (G_L(8) = 58k)
            p: 8,
        };
        let s = steal_cost_model_speedup(m);
        assert!((s - 7.1).abs() < 0.2, "wool model speedup {s}");
    }

    /// Cilk++ row: C_2 = 31050, C_8 = 110400 → 3.2.
    #[test]
    fn paper_cilk_row() {
        let m = ModelInputs {
            work: 976_000.0,
            c2: 31_050.0,
            cp: 110_400.0,
            steals: 976_000.0 / 58_000.0,
            p: 8,
        };
        let s = steal_cost_model_speedup(m);
        assert!((s - 3.2).abs() < 0.2, "cilk model speedup {s}");
    }

    /// TBB row: C_2 = 5800, C_8 = 30000 → 5.9.
    #[test]
    fn paper_tbb_row() {
        let m = ModelInputs {
            work: 976_000.0,
            c2: 5_800.0,
            cp: 30_000.0,
            steals: 976_000.0 / 58_000.0,
            p: 8,
        };
        let s = steal_cost_model_speedup(m);
        assert!((s - 5.9).abs() < 0.2, "tbb model speedup {s}");
    }

    /// Wool at p = 2 and p = 4 (paper: 2.0 and 3.9).
    #[test]
    fn paper_wool_smaller_p() {
        let w = 976_000.0;
        let s2 = steal_cost_model_speedup(ModelInputs {
            work: w,
            c2: 2_200.0,
            cp: 2_200.0,
            steals: w / 915_000.0, // G_L(2) = 915k
            p: 2,
        });
        assert!((s2 - 2.0).abs() < 0.1, "p=2: {s2}");
        let s4 = steal_cost_model_speedup(ModelInputs {
            work: w,
            c2: 2_200.0,
            cp: 5_600.0,
            steals: w / 211_000.0, // G_L(4) = 211k
            p: 4,
        });
        assert!((s4 - 3.9).abs() < 0.15, "p=4: {s4}");
    }

    #[test]
    fn few_steals_clamp_to_zero_balancing() {
        // steals < p-1: balancing term clamps at 0, cost = cp + W/p.
        let m = ModelInputs {
            work: 1_000_000.0,
            c2: 1_000.0,
            cp: 10_000.0,
            steals: 1.0,
            p: 8,
        };
        let s = steal_cost_model_speedup(m);
        let expect = 1_000_000.0 / (10_000.0 + 1_000_000.0 / 8.0);
        assert!((s - expect).abs() < 1e-9);
    }
}
