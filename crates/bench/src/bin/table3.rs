//! Regenerates Table III (costs of inlined and stolen tasks).
use ws_bench::experiments::table3;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = table3::run(&args);
    table3::render(&result).print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
