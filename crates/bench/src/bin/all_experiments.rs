//! Runs every table and figure in sequence (one-stop reproduction).
//!
//! ```text
//! cargo run --release -p ws-bench --bin all_experiments -- --scale 0.01 --workers 4
//! ```
use ws_bench::experiments::*;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let dir = args.json.clone().unwrap_or_else(|| "results".to_string());

    let t2 = table2::run(&args);
    table2::render(&t2).print();
    dump_json(&format!("{dir}/table2.json"), &t2);

    let t3 = table3::run(&args);
    table3::render(&t3).print();
    dump_json(&format!("{dir}/table3.json"), &t3);

    let t4 = table4::run(&args);
    table4::render(&t4).print();
    dump_json(&format!("{dir}/table4.json"), &t4);

    let f1 = fig1::run(&args);
    let (l, r) = fig1::render(&f1);
    l.print();
    r.print();
    dump_json(&format!("{dir}/fig1.json"), &f1);

    let f4 = fig4::run(&args);
    for t in fig4::render(&f4) {
        t.print();
    }
    dump_json(&format!("{dir}/fig4.json"), &f4);

    let t1 = table1::run(&args);
    table1::render(&t1).print();
    dump_json(&format!("{dir}/table1.json"), &t1);

    let f5 = fig5::run(&args);
    for t in fig5::render(&f5) {
        t.print();
    }
    dump_json(&format!("{dir}/fig5.json"), &f5);

    let f6 = fig6::run(&args);
    for t in fig6::render(&f6) {
        t.print();
    }
    dump_json(&format!("{dir}/fig6.json"), &f6);

    let ab = ablation::run(&args);
    ablation::render(&ab).print();
    ablation::render_join_policy(&ab).print();
    dump_json(&format!("{dir}/ablation.json"), &ab);
    ws_bench::tracing::maybe_trace(&args);
}
