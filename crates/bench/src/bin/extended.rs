//! Extended workload suite: the non-paper programs (nqueens, sorts,
//! Strassen, heat, knapsack) timed on every scheduler — a broader
//! version of Figure 5 over irregular and data-parallel programs.

use std::time::Instant;

use wool_core::{Fork, Job};
use workloads::extra::heat::{simulate_par, Grid};
use workloads::extra::knapsack::{knapsack_par, Instance};
use workloads::extra::nqueens::nqueens_par;
use workloads::extra::sort::{merge_sort, quick_sort, random_input};
use workloads::extra::strassen::{strassen, Sq};
use workloads::mm::Matrix;
use ws_bench::report::Table;
use ws_bench::{BenchArgs, System, SystemKind};

/// Which extended program to run.
#[derive(Debug, Clone, Copy)]
enum Prog {
    Nqueens(usize),
    MergeSort(usize),
    QuickSort(usize),
    Strassen(usize),
    Heat(usize, usize),
    Knapsack(usize),
}

impl Prog {
    fn name(self) -> String {
        match self {
            Prog::Nqueens(n) => format!("nqueens({n})"),
            Prog::MergeSort(n) => format!("mergesort({n})"),
            Prog::QuickSort(n) => format!("quicksort({n})"),
            Prog::Strassen(n) => format!("strassen({n})"),
            Prog::Heat(n, t) => format!("heat({n},{t})"),
            Prog::Knapsack(n) => format!("knapsack({n})"),
        }
    }
}

struct ProgJob(Prog);

impl Job<f64> for ProgJob {
    fn call<C: Fork>(self, ctx: &mut C) -> f64 {
        match self.0 {
            Prog::Nqueens(n) => nqueens_par(ctx, n, n) as f64,
            Prog::MergeSort(n) => {
                let mut xs = random_input(n, 42);
                let mut scratch = vec![0; n];
                merge_sort(ctx, &mut xs, &mut scratch);
                xs[n / 2] as f64 % 1e9
            }
            Prog::QuickSort(n) => {
                let mut xs = random_input(n, 43);
                quick_sort(ctx, &mut xs);
                xs[n / 2] as f64 % 1e9
            }
            Prog::Strassen(n) => {
                let a = Sq::from_matrix(&Matrix::random(n, 1));
                let b = Sq::from_matrix(&Matrix::random(n, 2));
                let c = strassen(ctx, &a, &b);
                c.at(0, 0)
            }
            Prog::Heat(n, steps) => {
                let g = Grid::hot_edge(n, n);
                simulate_par(ctx, g, steps).checksum()
            }
            Prog::Knapsack(n) => {
                let inst = Instance::random(n, 7);
                knapsack_par(ctx, &inst, 16) as f64
            }
        }
    }
}

fn main() {
    let args = BenchArgs::parse();
    let progs = [
        Prog::Nqueens(11),
        Prog::MergeSort(1 << 20),
        Prog::QuickSort(1 << 20),
        Prog::Strassen(256),
        Prog::Heat(256, 64),
        Prog::Knapsack(40),
    ];
    let systems = [
        SystemKind::Serial,
        SystemKind::Wool,
        SystemKind::TbbLike,
        SystemKind::CilkLike,
        SystemKind::OmpLike,
        SystemKind::Central,
    ];

    let mut header = vec!["program".to_string()];
    for k in systems {
        header.push(k.name().to_string());
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(
        &format!("Extended suite, {} workers (ms, best of 2)", args.workers),
        &hdr,
    );

    for prog in progs {
        eprintln!("[extended] {}", prog.name());
        let mut cells = vec![prog.name()];
        let mut reference: Option<f64> = None;
        for kind in systems {
            let mut sys = System::create(kind, args.workers);
            let mut best = f64::INFINITY;
            let mut check = 0.0;
            for _ in 0..2 {
                let t0 = Instant::now();
                check = sys.run_job(ProgJob(prog));
                best = best.min(t0.elapsed().as_secs_f64());
            }
            match reference {
                None => reference = Some(check),
                Some(r) => assert_eq!(r, check, "{} on {}", prog.name(), kind.name()),
            }
            cells.push(format!("{:.1}", best * 1e3));
        }
        table.row(cells);
    }
    table.print();
    ws_bench::tracing::maybe_trace(&args);
}
