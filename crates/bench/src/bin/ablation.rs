//! Runs the private-task parameter ablation sweep.
use ws_bench::experiments::ablation;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = ablation::run(&args);
    ablation::render(&result).print();
    ablation::render_join_policy(&result).print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
