//! Regenerates Table II (optimizing inlined tasks).
use ws_bench::experiments::table2;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = table2::run(&args);
    table2::render(&result).print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
