//! Serve-mode throughput and latency: an open-loop load generator for
//! `wool-serve`.
//!
//! Sweeps the number of submitter threads from 1 up to `--workers`;
//! each submitter pushes its share of jobs through the global injector
//! as fast as it can (open loop: submission never waits for
//! completion), then joins every handle. Per job we measure the
//! submit-to-completion latency; the row reports completed jobs per
//! second plus the p50/p99 latency of the batch.
//!
//! ```text
//! cargo run --release -p ws-bench --bin serve_throughput -- --workers 4
//! ```
//!
//! Each job is a small fork-join region (parallel fib), so the bench
//! exercises exactly the boundary the design cares about: root jobs
//! arrive through the injector, their children stay on the paper's
//! direct task stack.

use std::time::Instant;

use minijson::{Json, ToJson};
use wool_core::Fork;
use wool_serve::ServePool;
use ws_bench::{dump_json, BenchArgs, Table};

fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
    a + b
}

/// One sweep point: `submitters` client threads against one pool.
struct Row {
    submitters: usize,
    jobs: usize,
    elapsed_s: f64,
    jobs_per_s: f64,
    p50_us: f64,
    p99_us: f64,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("submitters".into(), Json::Num(self.submitters as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            ("jobs_per_s".into(), Json::Num(self.jobs_per_s)),
            ("p50_us".into(), Json::Num(self.p50_us)),
            ("p99_us".into(), Json::Num(self.p99_us)),
        ])
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn run_point(workers: usize, submitters: usize, jobs: usize, fib_n: u64) -> Row {
    let pool = ServePool::start(workers);
    let per_client = jobs.div_ceil(submitters);
    let t0 = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let clients: Vec<_> = (0..submitters)
            .map(|_| {
                let pool = &pool;
                s.spawn(move || {
                    let mut handles = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        let submitted = Instant::now();
                        let h = pool
                            .submit(move |h| {
                                std::hint::black_box(fib(h, fib_n));
                                submitted.elapsed()
                            })
                            .expect("pool is serving");
                        handles.push(h);
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().as_secs_f64() * 1e6)
                        .collect::<Vec<f64>>()
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("submitter thread"))
            .collect()
    });
    let elapsed_s = t0.elapsed().as_secs_f64();
    drop(pool); // graceful drain (all handles already joined)

    latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let total = latencies_us.len();
    Row {
        submitters,
        jobs: total,
        elapsed_s,
        jobs_per_s: total as f64 / elapsed_s,
        p50_us: percentile(&latencies_us, 0.50),
        p99_us: percentile(&latencies_us, 0.99),
    }
}

fn main() {
    let args = BenchArgs::parse();
    // ~50k jobs at paper scale; floor keeps percentiles meaningful at
    // --quick.
    let jobs = ((50_000.0 * args.scale) as usize).max(1_000);
    let fib_n = 12; // ~a few microseconds of fork-join work per job

    let mut table = Table::new(
        &format!(
            "serve_throughput: {} workers, {} jobs per point, fib({}) jobs",
            args.workers, jobs, fib_n
        ),
        &["submitters", "jobs/s", "p50 us", "p99 us", "elapsed s"],
    );
    let mut rows = Vec::new();
    for submitters in sweep(args.workers) {
        let row = run_point(args.workers, submitters, jobs, fib_n);
        table.row(vec![
            row.submitters.to_string(),
            format!("{:.0}", row.jobs_per_s),
            format!("{:.1}", row.p50_us),
            format!("{:.1}", row.p99_us),
            format!("{:.3}", row.elapsed_s),
        ]);
        rows.push(row);
    }
    table.print();
    if let Some(path) = &args.json {
        dump_json(path, &Json::Arr(rows.iter().map(|r| r.to_json()).collect()));
    }
}

/// Submitter counts: 1, 2, 4, ... up to the worker count.
fn sweep(max: usize) -> Vec<usize> {
    let mut v = vec![1usize];
    let mut p = 2;
    while p <= max {
        v.push(p);
        p *= 2;
    }
    if *v.last().unwrap() != max && max > 1 {
        v.push(max);
    }
    v
}
