//! Regenerates Table IV (steal-cost model vs measured speedups).
use ws_bench::experiments::table4;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = table4::run(&args);
    table4::render(&result).print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
