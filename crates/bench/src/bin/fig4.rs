//! Regenerates Figure 4 (steal implementation comparison).
use ws_bench::experiments::fig4;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = fig4::run(&args);
    for t in fig4::render(&result) {
        t.print();
    }
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
