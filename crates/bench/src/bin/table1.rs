//! Regenerates Table I (workload characteristics).
use ws_bench::experiments::table1;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = table1::run(&args);
    table1::render(&result).print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
