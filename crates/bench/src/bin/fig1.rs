//! Regenerates Figure 1 (fib and stress headline speedups).
use ws_bench::experiments::fig1;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = fig1::run(&args);
    let (left, right) = fig1::render(&result);
    left.print();
    right.print();
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
