//! Regenerates Figure 6 (CPU-time breakdown).
use ws_bench::experiments::fig6;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = fig6::run(&args);
    for t in fig6::render(&result) {
        t.print();
    }
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
