//! Regenerates Figure 5 (application speedups on all systems).
use ws_bench::experiments::fig5;
use ws_bench::{dump_json, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    let result = fig5::run(&args);
    for t in fig5::render(&result) {
        t.print();
    }
    if let Some(path) = &args.json {
        dump_json(path, &result);
    }
    ws_bench::tracing::maybe_trace(&args);
}
