//! Minimal shared argument parsing for the experiment binaries.
//!
//! All binaries accept:
//!
//! ```text
//! --workers N     maximum worker count to sweep to  (default: 4)
//! --scale F       repetition scale factor vs the paper (default: 0.01)
//! --paper         full paper-sized parameters (scale = 1.0)
//! --quick         tiny smoke-test parameters (scale = 0.001)
//! --json PATH      also dump machine-readable results to PATH
//! --trace-out PATH record a scheduler event trace of a representative
//!                  run and write it as Chrome/Perfetto trace JSON
//!                  (needs the `trace` cargo feature; see docs/TRACING.md)
//! ```
//!
//! The paper's repetition counts target roughly one second per workload
//! on a 2009 8-core Opteron; `--scale` shrinks them proportionally so a
//! full table regenerates in minutes on a small host.

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Maximum worker count to sweep to.
    pub workers: usize,
    /// Repetition scale factor relative to the paper's counts.
    pub scale: f64,
    /// Optional JSON output path.
    pub json: Option<String>,
    /// Optional Chrome-trace output path (`--trace-out`). Parsed
    /// unconditionally; acting on it requires the `trace` feature.
    pub trace_out: Option<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            workers: 4,
            scale: 0.01,
            json: None,
            trace_out: None,
        }
    }
}

impl BenchArgs {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = BenchArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--workers" => {
                    out.workers = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--workers needs a number"));
                }
                "--scale" => {
                    out.scale = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number"));
                }
                "--paper" => out.scale = 1.0,
                "--quick" => out.scale = 0.001,
                "--json" => {
                    out.json = Some(it.next().unwrap_or_else(|| usage("--json needs a path")));
                }
                "--trace-out" => {
                    out.trace_out = Some(
                        it.next()
                            .unwrap_or_else(|| usage("--trace-out needs a path")),
                    );
                    if cfg!(not(feature = "trace")) {
                        eprintln!(
                            "warning: --trace-out ignored; rebuild with \
                             `--features trace` to record traces"
                        );
                    }
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument: {other}")),
            }
        }
        out
    }

    /// Worker counts to sweep: 1, 2, 4, ... up to `workers`.
    pub fn worker_sweep(&self) -> Vec<usize> {
        let mut v = vec![1usize];
        let mut p = 2;
        while p <= self.workers {
            v.push(p);
            p *= 2;
        }
        if *v.last().unwrap() != self.workers && self.workers > 1 {
            v.push(self.workers);
        }
        v
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <bin> [--workers N] [--scale F | --paper | --quick] [--json PATH] \
         [--trace-out PATH]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> BenchArgs {
        BenchArgs::parse_from(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults() {
        let a = parse("");
        assert_eq!(a.workers, 4);
        assert!(a.json.is_none());
    }

    #[test]
    fn flags() {
        let a = parse("--workers 8 --scale 0.5 --json out.json");
        assert_eq!(a.workers, 8);
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.json.as_deref(), Some("out.json"));
        assert!(a.trace_out.is_none());
    }

    #[test]
    fn trace_out_flag() {
        let a = parse("--trace-out results/trace.json");
        assert_eq!(a.trace_out.as_deref(), Some("results/trace.json"));
    }

    #[test]
    fn paper_and_quick() {
        assert_eq!(parse("--paper").scale, 1.0);
        assert_eq!(parse("--quick").scale, 0.001);
    }

    #[test]
    fn sweep_is_powers_of_two_plus_max() {
        assert_eq!(parse("--workers 8").worker_sweep(), vec![1, 2, 4, 8]);
        assert_eq!(parse("--workers 6").worker_sweep(), vec![1, 2, 4, 6]);
        assert_eq!(parse("--workers 1").worker_sweep(), vec![1]);
    }
}
