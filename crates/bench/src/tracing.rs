//! `--trace-out` support: record a scheduler event trace and export it.
//!
//! Every experiment binary calls [`maybe_trace`] after its main work.
//! When `--trace-out PATH` was given (and the harness was built with
//! `--features trace`), a representative run — the §IV-A `stress` tree
//! on the full Wool scheduler — is executed once with per-worker event
//! tracing enabled, the merged trace is written to `PATH` as
//! Chrome/Perfetto trace JSON (load it at <https://ui.perfetto.dev> or
//! `chrome://tracing`), and a steal-graph summary is printed.
//!
//! See `docs/TRACING.md` for the event schema and workflow.

use crate::BenchArgs;

/// Records and exports a trace if `--trace-out` was given; otherwise a
/// no-op. Without the `trace` cargo feature this only warns.
pub fn maybe_trace(args: &BenchArgs) {
    let Some(path) = &args.trace_out else { return };
    imp::run_and_write(args, path);
}

#[cfg(not(feature = "trace"))]
mod imp {
    pub fn run_and_write(_args: &crate::BenchArgs, path: &str) {
        eprintln!(
            "--trace-out {path}: tracing is not compiled into this binary; \
             rebuild with `--features trace`"
        );
    }
}

#[cfg(feature = "trace")]
pub use imp::{print_summary, record_fib_trace, record_stress_trace, write_chrome};

#[cfg(feature = "trace")]
mod imp {
    use std::path::Path;

    use wool_core::{Pool, PoolConfig, Stats, WoolFull};
    use wool_trace::Trace;

    use crate::report::{steal_summary_table, Table};
    use crate::BenchArgs;

    /// Parameters of the representative traced run: a `stress` tree
    /// (§IV-A) whose leaves are busy enough (~2K cycles) that thieves
    /// have time to engage, so the trace shows real stealing traffic —
    /// but small enough that the exported JSON stays in the megabyte
    /// range.
    const TRACED_HEIGHT: u32 = 12;
    const TRACED_LEAF_ITERS: u64 = 2000;
    const TRACED_REPS: u64 = 4;

    /// Per-worker ring capacity for `--trace-out` runs; holds the whole
    /// representative run with room to spare, so counts are exact.
    const TRACE_CAPACITY: usize = 1 << 20;

    /// Runs a traced job on a freshly configured full-Wool pool and
    /// returns the merged trace plus the run's aggregate statistics.
    fn record<R: Send, F>(workers: usize, job: F) -> (Trace, Stats)
    where
        F: FnOnce(&mut wool_core::WorkerHandle<WoolFull>) -> R + Send,
    {
        let cfg = PoolConfig::with_workers(workers.max(2))
            .instrument_trace(true)
            .trace_capacity(TRACE_CAPACITY);
        let mut pool: Pool<WoolFull> = Pool::with_config(cfg);
        pool.run(job);
        let stats = pool
            .last_report()
            .map(|r| r.total)
            .expect("run just completed");
        let trace = pool.take_trace().expect("tracing was configured");
        (trace, stats)
    }

    /// Traces `fib(n)`: very fine-grained, join-fast-path dominated.
    pub fn record_fib_trace(workers: usize, n: u64) -> (Trace, Stats) {
        record(workers, move |h| workloads::fib::fib(h, n))
    }

    /// Traces the §IV-A `stress` tree: controllable granularity, with
    /// busy leaves that give thieves time to steal.
    pub fn record_stress_trace(
        workers: usize,
        height: u32,
        leaf_iters: u64,
        reps: u64,
    ) -> (Trace, Stats) {
        record(workers, move |h| {
            workloads::stress::stress(h, height, leaf_iters, reps)
        })
    }

    /// Writes a trace as compact Chrome trace JSON, creating parent
    /// directories as needed.
    pub fn write_chrome(path: &str, trace: &Trace) -> std::io::Result<()> {
        if let Some(dir) = Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut text = trace.to_chrome_json().compact();
        text.push('\n');
        std::fs::write(path, text)
    }

    /// Prints the per-kind event counts and the steal-graph summary.
    pub fn print_summary(trace: &Trace) {
        let mut counts = Table::new("Trace events", &["event", "count"]);
        for (name, n) in trace.counts() {
            counts.row(vec![name.to_string(), n.to_string()]);
        }
        counts.row(vec!["dropped".into(), trace.dropped().to_string()]);
        counts.print();
        steal_summary_table(&trace.analyze()).print();
    }

    pub fn run_and_write(args: &BenchArgs, path: &str) {
        let workers = args.workers.max(2);
        // `--quick` keeps the exported file small (fewer, coarser
        // tasks) while still showing stealing traffic.
        let (height, leaf_iters, reps) = if args.scale <= 0.001 {
            (8, 200_000, 2)
        } else {
            (TRACED_HEIGHT, TRACED_LEAF_ITERS, TRACED_REPS)
        };
        let (trace, stats) = record_stress_trace(workers, height, leaf_iters, reps);
        match write_chrome(path, &trace) {
            Ok(()) => eprintln!(
                "trace: stress(h={height}, {leaf_iters} iters, \
                 {reps} reps) on {workers} workers, {} events \
                 ({} steals) -> {path}",
                trace.len(),
                stats.total_steals(),
            ),
            Err(e) => {
                eprintln!("trace: failed to write {path}: {e}");
                return;
            }
        }
        print_summary(&trace);
    }
}
