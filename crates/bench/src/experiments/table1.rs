//! Table I — *Workload characteristics.*
//!
//! For every workload row: the average parallelism under the 0-cycle
//! and 2000-cycle overhead models (measured by the span instrumentation
//! during a one-worker Wool run), the per-repetition sequential size
//! `RepSz`, the task granularity `G_T = T_S / N_T`, and the
//! load-balancing granularity `G_L(p) = T_S / N_M` for each processor
//! count in the sweep (steals counted on Wool runs with `p` workers).

use wool_core::PoolConfig;
use workloads::{all_table1_specs, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_kcycles, fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One regenerated Table I row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name with parameters.
    pub workload: String,
    /// Repetitions used.
    pub reps: u64,
    /// Parallelism with zero scheduling overhead.
    pub parallelism0: f64,
    /// Parallelism under the 2000-cycle model.
    pub parallelism_2000: f64,
    /// Sequential size of one repetition, kilocycles.
    pub rep_kcycles: f64,
    /// Task granularity `G_T`, cycles.
    pub g_t: f64,
    /// Load-balancing granularity per worker count, kilocycles
    /// (`(workers, G_L)` pairs).
    pub g_l: Vec<(usize, f64)>,
}

/// The full result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Worker counts measured for `G_L`.
    pub sweep: Vec<usize>,
    /// Rows in Table I order.
    pub rows: Vec<Row>,
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let sweep: Vec<usize> = args.worker_sweep().into_iter().filter(|&p| p > 1).collect();
    let specs: Vec<WorkloadSpec> = all_table1_specs()
        .iter()
        .map(|s| s.scale_reps(args.scale))
        .collect();

    let mut rows = Vec::new();
    for spec in &specs {
        eprintln!("[table1] {}", spec.name());
        // Sequential time (T_S) without any task constructs.
        let mut serial = System::create(SystemKind::Serial, 1);
        let ms = measure_job(&mut serial, spec, 2);
        let t_s_cycles = ms.cycles;

        // Instrumented single-worker Wool run: work/span + N_T.
        let cfg = PoolConfig::with_workers(1).instrument_span(true);
        let mut wool1 = System::create_with(SystemKind::Wool, cfg);
        let m1 = measure_job(&mut wool1, spec, 1);
        assert_eq!(
            ms.checksum,
            m1.checksum,
            "serial and wool disagree on {}",
            spec.name()
        );
        let report = wool1.last_report().expect("instrumented run");
        let (par0, par_c) = (report.parallelism0(), report.parallelism_c());

        let g_t = t_s_cycles / m1.spawns.max(1) as f64;
        let rep_kcycles = t_s_cycles / spec.reps as f64 / 1e3;

        // Steal counts at each worker count.
        let mut g_l = Vec::new();
        for &p in &sweep {
            let mut wool_p = System::create(SystemKind::Wool, p);
            let mp = measure_job(&mut wool_p, spec, 1);
            let steals = mp.steals.max(1);
            g_l.push((p, t_s_cycles / steals as f64 / 1e3));
        }

        rows.push(Row {
            workload: spec.name(),
            reps: spec.reps,
            parallelism0: par0,
            parallelism_2000: par_c,
            rep_kcycles,
            g_t,
            g_l,
        });
    }
    Result { sweep, rows }
}

/// Renders the paper-style table.
pub fn render(r: &Result) -> Table {
    let mut header: Vec<String> = vec![
        "Workload".into(),
        "Par(0)".into(),
        "Par(2k)".into(),
        "RepSz(kcyc)".into(),
        "G_T(cyc)".into(),
    ];
    for p in &r.sweep {
        header.push(format!("G_L({p})k"));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new("Table I: workload characteristics", &hdr);
    for row in &r.rows {
        let mut cells = vec![
            row.workload.clone(),
            fmt_sig(row.parallelism0),
            fmt_sig(row.parallelism_2000),
            fmt_sig(row.rep_kcycles),
            fmt_sig(row.g_t),
        ];
        for &(_, gl) in &row.g_l {
            cells.push(fmt_kcycles(gl * 1e3));
        }
        t.row(cells);
    }
    t
}

minijson::impl_to_json!(Row {
    workload,
    reps,
    parallelism0,
    parallelism_2000,
    rep_kcycles,
    g_t,
    g_l,
});
minijson::impl_to_json!(Result { sweep, rows });
