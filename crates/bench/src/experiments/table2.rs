//! Table II — *Optimizing inlined tasks; single processor executions.*
//!
//! Runs `fib(n)` on one worker under each rung of the implementation
//! ladder and reports execution time plus the per-task overhead over a
//! plain procedure call, `(T_1 - T_S) / N_T`, in cycles:
//!
//! | paper row                    | this repo                         |
//! |------------------------------|-----------------------------------|
//! | Base                         | `Pool<LockedBase>`                |
//! | Synchronize on task          | `Pool<SyncOnTask>`                |
//! | Task specific join           | `Pool<TaskSpecific>`              |
//! | Private tasks (no private)   | `Pool<WoolFull>` + force-publish  |
//! | Private tasks (all private)  | `Pool<WoolFull>` (1 worker ⇒ all  |
//! |                              | tasks stay private)               |
//! | Serial                       | plain recursion, no constructs    |

use wool_core::PoolConfig;
use workloads::fib::fib_spawn_count;
use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One row of the regenerated table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Paper row label.
    pub version: String,
    /// Execution time, seconds.
    pub seconds: f64,
    /// Per-task overhead over a procedure call, cycles.
    pub overhead_cycles: f64,
}

/// The full result.
#[derive(Debug, Clone)]
pub struct Result {
    /// fib argument used.
    pub n: u64,
    /// Tasks spawned.
    pub tasks: u64,
    /// Rows in paper order.
    pub rows: Vec<Row>,
}

/// fib argument for a given scale (paper: 42; scaled down so the
/// default run finishes in seconds).
pub fn fib_n_for_scale(scale: f64) -> u64 {
    if scale >= 1.0 {
        42
    } else if scale >= 0.1 {
        38
    } else if scale >= 0.01 {
        34
    } else {
        27
    }
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let n = fib_n_for_scale(args.scale);
    let tasks = fib_spawn_count(n);
    let spec = WorkloadSpec {
        kind: WorkloadKind::Fib,
        p1: n as usize,
        p2: 0,
        reps: 1,
    };
    let repeats = 3;

    // Serial baseline first: T_S.
    let mut serial = System::create(SystemKind::Serial, 1);
    let t_s = measure_job(&mut serial, &spec, repeats).seconds;

    let ladder: Vec<(String, System)> = vec![
        ("Base".into(), System::create(SystemKind::WoolLockedBase, 1)),
        (
            "Synchronize on task".into(),
            System::create(SystemKind::WoolSyncOnTask, 1),
        ),
        (
            "Task specific join".into(),
            System::create(SystemKind::WoolTaskSpecific, 1),
        ),
        (
            "Private tasks (no private)".into(),
            System::create_with(
                SystemKind::Wool,
                PoolConfig::with_workers(1).force_publish_all(true),
            ),
        ),
        (
            "Private tasks (all private)".into(),
            System::create(SystemKind::Wool, 1),
        ),
    ];

    let mut rows = Vec::new();
    for (label, mut sys) in ladder {
        let m = measure_job(&mut sys, &spec, repeats);
        let overhead =
            (m.seconds - t_s).max(0.0) * 1e9 * wool_core::cycles::ticks_per_ns() / tasks as f64;
        rows.push(Row {
            version: label,
            seconds: m.seconds,
            overhead_cycles: overhead,
        });
    }
    rows.push(Row {
        version: "Serial".into(),
        seconds: t_s,
        overhead_cycles: 0.0,
    });

    Result { n, tasks, rows }
}

/// Renders the paper-style table.
pub fn render(r: &Result) -> Table {
    let mut t = Table::new(
        &format!("Table II: optimizing inlined tasks, fib({}), 1 worker", r.n),
        &["Version", "Time (s)", "Overhead (cyc)"],
    );
    for row in &r.rows {
        t.row(vec![
            row.version.clone(),
            format!("{:.3}", row.seconds),
            fmt_sig(row.overhead_cycles),
        ]);
    }
    t
}

minijson::impl_to_json!(Row {
    version,
    seconds,
    overhead_cycles
});
minijson::impl_to_json!(Result { n, tasks, rows });
