//! Figure 6 — *Breakdown of CPU time, selected workloads.*
//!
//! Instrumented Wool runs classify every worker's time into the paper's
//! categories: NA (application), LA (application acquired through leap
//! frogging), ST (stealing), LF (leap-frog overhead), with TR (startup/
//! shutdown and untracked remainder) computed as region wall time times
//! workers minus the tracked categories. Values are normalized to the
//! single-worker NA time, as in the paper.

use wool_core::timebreak::Category;
use wool_core::PoolConfig;
use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// Breakdown at one worker count, normalized to 1-worker NA.
#[derive(Debug, Clone)]
pub struct Bar {
    /// Worker count.
    pub workers: usize,
    /// Normalized `[TR, NA, LA, ST, LF]`.
    pub fractions: [f64; 5],
}

/// One workload's set of bars.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Workload name.
    pub workload: String,
    /// Bars per worker count.
    pub bars: Vec<Bar>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Result {
    /// Panels.
    pub panels: Vec<Panel>,
}

/// The paper's Figure 6 workload selection, scaled.
pub fn default_specs(scale: f64) -> Vec<WorkloadSpec> {
    let s = |kind, p1, p2, reps: u64| WorkloadSpec {
        kind,
        p1,
        p2,
        reps: ((reps as f64 * scale) as u64).max(4),
    };
    vec![
        s(WorkloadKind::Cholesky, 500, 2000, 1024),
        s(WorkloadKind::Mm, 64, 0, 16384),
        s(WorkloadKind::Ssf, 13, 0, 8192),
        s(WorkloadKind::Stress, 8, 256, 65536),
        s(WorkloadKind::Stress, 5, 4096, 32768),
    ]
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let specs = default_specs(args.scale);
    let sweep = args.worker_sweep();
    let mut panels = Vec::new();
    for spec in &specs {
        eprintln!("[fig6] {}", spec.name());
        let mut bars = Vec::new();
        let mut na1 = f64::NAN;
        for &p in &sweep {
            let cfg = PoolConfig::with_workers(p).instrument_time(true);
            let mut sys = System::create_with(SystemKind::Wool, cfg);
            let m = measure_job(&mut sys, spec, 1);
            let report = sys.last_report().expect("instrumented wool run");
            let na = report.breakdown.get(Category::Na) as f64;
            let la = report.breakdown.get(Category::La) as f64;
            let st = report.breakdown.get(Category::St) as f64;
            let lf = report.breakdown.get(Category::Lf) as f64;
            // TR: untracked remainder of (wall * workers).
            let wall_total = report.wall_ticks as f64 * p as f64;
            let tr = (wall_total - (na + la + st + lf)).max(0.0);
            if p == 1 {
                na1 = na.max(1.0);
            }
            bars.push(Bar {
                workers: p,
                fractions: [tr / na1, na / na1, la / na1, st / na1, lf / na1],
            });
            let _ = m;
        }
        panels.push(Panel {
            workload: spec.name(),
            bars,
        });
    }
    Result { panels }
}

/// Renders one table per panel (rows = categories, columns = workers).
pub fn render(r: &Result) -> Vec<Table> {
    r.panels
        .iter()
        .map(|panel| {
            let mut header = vec!["Category".to_string()];
            for b in &panel.bars {
                header.push(format!("p={}", b.workers));
            }
            let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let mut t = Table::new(
                &format!(
                    "Figure 6: {} — CPU time (normalized to 1-worker NA)",
                    panel.workload
                ),
                &hdr,
            );
            let labels = ["TR", "NA", "LA", "ST", "LF"];
            for (i, label) in labels.iter().enumerate() {
                let mut cells = vec![label.to_string()];
                for b in &panel.bars {
                    cells.push(fmt_sig(b.fractions[i]));
                }
                t.row(cells);
            }
            t
        })
        .collect()
}

minijson::impl_to_json!(Bar { workers, fractions });
minijson::impl_to_json!(Panel { workload, bars });
minijson::impl_to_json!(Result { panels });
