//! One module per paper exhibit; the binaries under `src/bin/` are thin
//! wrappers so the integration tests can run every experiment at tiny
//! scale.

pub mod ablation;
pub mod fig1;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
