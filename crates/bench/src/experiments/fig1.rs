//! Figure 1 — *Absolute speedup of fib(42) with no cutoff and relative
//! speedup of stress(4096, 3, 128K) on Wool, Cilk++, TBB and OpenMP.*
//!
//! Left panel: fib with no cutoff, speedup relative to the **serial**
//! program (absolute speedup). Right panel: stress with 4096-iteration
//! leaves, tree height 3, 128K repetitions — speedup relative to the
//! same system's one-worker time (relative speedup), which is how the
//! paper plots it.

use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One speedup series.
#[derive(Debug, Clone)]
pub struct Series {
    /// System name.
    pub system: String,
    /// `(workers, speedup)` points.
    pub points: Vec<(usize, f64)>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Result {
    /// fib argument used.
    pub fib_n: u64,
    /// Absolute-speedup series for fib.
    pub fib: Vec<Series>,
    /// Relative-speedup series for stress.
    pub stress: Vec<Series>,
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let fib_n = super::table2::fib_n_for_scale(args.scale);
    let fib_spec = WorkloadSpec {
        kind: WorkloadKind::Fib,
        p1: fib_n as usize,
        p2: 0,
        reps: 1,
    };
    let stress_spec = WorkloadSpec {
        kind: WorkloadKind::Stress,
        p1: 3,
        p2: 4096,
        reps: ((131_072.0 * args.scale) as u64).max(16),
    };

    let mut serial = System::create(SystemKind::Serial, 1);
    let fib_ts = measure_job(&mut serial, &fib_spec, 2).seconds;

    let sweep = args.worker_sweep();
    let mut fib_series = Vec::new();
    let mut stress_series = Vec::new();
    for kind in SystemKind::PAPER_SYSTEMS {
        eprintln!("[fig1] {}", kind.name());
        let mut fib_points = Vec::new();
        let mut stress_points = Vec::new();
        let mut stress_t1 = f64::NAN;
        for &p in &sweep {
            let mut sys = System::create(kind, p);
            let tf = measure_job(&mut sys, &fib_spec, 1).seconds;
            fib_points.push((p, fib_ts / tf));
            let ts = measure_job(&mut sys, &stress_spec, 1).seconds;
            if p == 1 {
                stress_t1 = ts;
            }
            stress_points.push((p, stress_t1 / ts));
        }
        fib_series.push(Series {
            system: kind.name().to_string(),
            points: fib_points,
        });
        stress_series.push(Series {
            system: kind.name().to_string(),
            points: stress_points,
        });
    }
    Result {
        fib_n,
        fib: fib_series,
        stress: stress_series,
    }
}

/// Renders both panels as tables (one row per system, one column per
/// worker count).
pub fn render(r: &Result) -> (Table, Table) {
    let render_panel = |title: &str, series: &[Series]| {
        let mut header = vec!["System".to_string()];
        for &(p, _) in &series[0].points {
            header.push(format!("p={p}"));
        }
        let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(title, &hdr);
        for s in series {
            let mut cells = vec![s.system.clone()];
            for &(_, v) in &s.points {
                cells.push(fmt_sig(v));
            }
            t.row(cells);
        }
        t
    };
    (
        render_panel(
            &format!("Figure 1 (left): fib({}) absolute speedup", r.fib_n),
            &r.fib,
        ),
        render_panel(
            "Figure 1 (right): stress(4096,3) relative speedup",
            &r.stress,
        ),
    )
}

minijson::impl_to_json!(Series { system, points });
minijson::impl_to_json!(Result { fib_n, fib, stress });
