//! Table III — *Costs (cycles) of inlined and stolen tasks.*
//!
//! **Inlined column**: the Table II methodology applied to each system:
//! per-task overhead of a spawn+join over a procedure call, measured
//! with `fib` on one worker. For Wool the paper quotes a range
//! "3–19" (all-private to all-public); we report both ends.
//!
//! **Steal columns (2, 4, 8)**: the Podobas et al. methodology — a
//! binary tree of height `k` whose `2^k` leaves each run a sequential
//! computation `C`, executed with `2^k` workers; the load-balancing
//! overhead is the difference against running the same work without
//! scheduling. On hosts with fewer hardware threads than workers the
//! tree cannot actually run in parallel, so we compare against
//! `2^k * T_C / min(p, hw)` — on a big machine this reduces to the
//! paper's `T_tree - T_C`, on a uniprocessor it isolates the same
//! scheduling overhead from a serialized execution.

use wool_core::PoolConfig;
use workloads::fib::fib_spawn_count;
use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One row: a system's inlined and steal costs.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: String,
    /// Inlined task overhead, cycles (Wool: best case, all private).
    pub inlined_cycles: f64,
    /// Wool only: worst case (all public); `None` elsewhere.
    pub inlined_cycles_public: Option<f64>,
    /// Steal overhead per `(workers, cycles)` pair.
    pub steal_cycles: Vec<(usize, f64)>,
}

/// The full result.
#[derive(Debug, Clone)]
pub struct Result {
    /// fib argument used for the inlined column.
    pub fib_n: u64,
    /// Leaf iterations used for the steal columns.
    pub leaf_iters: u64,
    /// Hardware threads available (affects the steal formula).
    pub hw_threads: usize,
    /// Rows: wool, cilk-like, tbb-like, omp-like.
    pub rows: Vec<Row>,
}

fn inlined_overhead(kind: SystemKind, n: u64, force_public: bool, t_s: f64) -> f64 {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Fib,
        p1: n as usize,
        p2: 0,
        reps: 1,
    };
    let cfg = PoolConfig::with_workers(1).force_publish_all(force_public);
    let mut sys = System::create_with(kind, cfg);
    let m = measure_job(&mut sys, &spec, 3);
    (m.seconds - t_s).max(0.0) * 1e9 * wool_core::cycles::ticks_per_ns() / fib_spawn_count(n) as f64
}

/// Measures the steal overhead for `p = 2^k` workers on `kind`.
fn steal_overhead(kind: SystemKind, k: u32, leaf_iters: u64, hw: usize) -> f64 {
    let p = 1usize << k;
    let spec = WorkloadSpec {
        kind: WorkloadKind::Stress,
        p1: k as usize,
        p2: leaf_iters as usize,
        reps: 1,
    };
    // Reference: the same tree with no task constructs.
    let mut serial = System::create(SystemKind::Serial, 1);
    let t_serial_tree = measure_job(&mut serial, &spec, 3).seconds;

    let mut sys = System::create(kind, p);
    let t_tree = measure_job(&mut sys, &spec, 3).seconds;

    let ideal = t_serial_tree / p.min(hw) as f64;
    (t_tree - ideal).max(0.0) * 1e9 * wool_core::cycles::ticks_per_ns()
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let fib_n = super::table2::fib_n_for_scale(args.scale);
    // Large leaves so the overhead is measured against substantial work
    // (paper's C); scaled for quick runs.
    let leaf_iters = if args.scale >= 1.0 {
        4_000_000
    } else {
        400_000
    };
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Serial fib time for the inlined column.
    let spec = WorkloadSpec {
        kind: WorkloadKind::Fib,
        p1: fib_n as usize,
        p2: 0,
        reps: 1,
    };
    let mut serial = System::create(SystemKind::Serial, 1);
    let t_s = measure_job(&mut serial, &spec, 3).seconds;

    let ks: Vec<u32> = args
        .worker_sweep()
        .into_iter()
        .filter(|&p| p > 1 && p.is_power_of_two())
        .map(|p| p.trailing_zeros())
        .collect();

    let mut rows = Vec::new();
    for kind in SystemKind::PAPER_SYSTEMS {
        eprintln!("[table3] {}", kind.name());
        let inlined = inlined_overhead(kind, fib_n, false, t_s);
        let inlined_public =
            (kind == SystemKind::Wool).then(|| inlined_overhead(kind, fib_n, true, t_s));
        let mut steal_cycles = Vec::new();
        for &k in &ks {
            steal_cycles.push((1usize << k, steal_overhead(kind, k, leaf_iters, hw)));
        }
        rows.push(Row {
            system: kind.name().to_string(),
            inlined_cycles: inlined,
            inlined_cycles_public: inlined_public,
            steal_cycles,
        });
    }
    Result {
        fib_n,
        leaf_iters,
        hw_threads: hw,
        rows,
    }
}

/// Renders the paper-style table.
pub fn render(r: &Result) -> Table {
    let mut header = vec!["System".to_string(), "Inlined".to_string()];
    for (p, _) in &r.rows[0].steal_cycles {
        header.push(format!("{p}"));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        &format!(
            "Table III: costs (cycles) of inlined and stolen tasks (hw={})",
            r.hw_threads
        ),
        &hdr,
    );
    for row in &r.rows {
        let inlined = match row.inlined_cycles_public {
            Some(pubc) => format!("{}-{}", fmt_sig(row.inlined_cycles), fmt_sig(pubc)),
            None => fmt_sig(row.inlined_cycles),
        };
        let mut cells = vec![row.system.clone(), inlined];
        for &(_, c) in &row.steal_cycles {
            cells.push(fmt_sig(c));
        }
        t.row(cells);
    }
    t
}

minijson::impl_to_json!(Row {
    system,
    inlined_cycles,
    inlined_cycles_public,
    steal_cycles,
});
minijson::impl_to_json!(Result {
    fib_n,
    leaf_iters,
    hw_threads,
    rows
});
