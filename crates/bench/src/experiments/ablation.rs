//! Ablation sweeps over the design parameters of §III-B.
//!
//! The paper fixes the trip-wire distance and publication batch by
//! construction; this experiment sweeps them (plus the force-public
//! switch) on a steal-intensive workload and reports run time, steal
//! counts and publication counts, quantifying how much each knob
//! matters — the ablation DESIGN.md calls out for the private-task
//! scheme.

use wool_core::PoolConfig;
use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One configuration's outcome.
#[derive(Debug, Clone)]
pub struct Row {
    /// Trip-wire distance.
    pub trip_distance: usize,
    /// Publication batch size.
    pub publish_batch: usize,
    /// Whether all tasks were forced public.
    pub force_public: bool,
    /// Run time, seconds.
    pub seconds: f64,
    /// Successful steals.
    pub steals: u64,
    /// Publications performed by owners.
    pub publishes: u64,
    /// Fraction of joins on the no-atomic private path.
    pub private_ratio: f64,
}

/// Join-policy comparison entry (leapfrog vs plain waiting).
#[derive(Debug, Clone)]
pub struct JoinPolicyRow {
    /// System name.
    pub system: String,
    /// Run time, seconds.
    pub seconds: f64,
    /// Successful steals.
    pub steals: u64,
    /// Steals performed while leap-frogging.
    pub leap_steals: u64,
}

/// The full result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Workload used.
    pub workload: String,
    /// Worker count used.
    pub workers: usize,
    /// Rows, one per configuration.
    pub rows: Vec<Row>,
    /// Leapfrog-vs-waiting comparison (the paper's Figure 6 claim that
    /// "simply waiting would be adequate").
    pub join_policy: Vec<JoinPolicyRow>,
}

/// Runs the sweep.
pub fn run(args: &BenchArgs) -> Result {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Stress,
        p1: 8,
        p2: 256,
        reps: ((65_536.0 * args.scale) as u64).max(16),
    };
    let workers = args.workers.max(2);

    let mut rows = Vec::new();
    let mut run_one = |trip: usize, batch: usize, force: bool| {
        let cfg = PoolConfig::with_workers(workers).force_publish_all(force);
        let cfg = PoolConfig {
            trip_distance: trip,
            publish_batch: batch,
            ..cfg
        };
        let mut sys = System::create_with(SystemKind::Wool, cfg);
        let m = measure_job(&mut sys, &spec, 2);
        let t = sys.last_stats();
        rows.push(Row {
            trip_distance: trip,
            publish_batch: batch,
            force_public: force,
            seconds: m.seconds,
            steals: t.total_steals(),
            publishes: t.publishes,
            private_ratio: t.private_join_ratio(),
        });
    };

    for trip in [1usize, 2, 4, 8] {
        for batch in [1usize, 2, 4, 8, 16] {
            run_one(trip, batch, false);
        }
    }
    run_one(2, 4, true); // everything public: the no-private extreme

    // Join-policy ablation: leapfrogging vs plain waiting at blocked
    // joins, on the same steal-heavy workload.
    let mut join_policy = Vec::new();
    for kind in [SystemKind::Wool, SystemKind::WoolNoLeapfrog] {
        let mut sys = System::create(kind, workers);
        let m = measure_job(&mut sys, &spec, 2);
        let t = sys.last_stats();
        join_policy.push(JoinPolicyRow {
            system: kind.name().to_string(),
            seconds: m.seconds,
            steals: t.total_steals(),
            leap_steals: t.leap_steals,
        });
    }

    Result {
        workload: spec.name(),
        workers,
        rows,
        join_policy,
    }
}

/// Renders the join-policy table.
pub fn render_join_policy(r: &Result) -> Table {
    let mut t = Table::new(
        &format!(
            "Ablation: join policy on {} ({} workers)",
            r.workload, r.workers
        ),
        &["policy", "time(s)", "steals", "leap-steals"],
    );
    for row in &r.join_policy {
        t.row(vec![
            row.system.clone(),
            format!("{:.4}", row.seconds),
            row.steals.to_string(),
            row.leap_steals.to_string(),
        ]);
    }
    t
}

/// Renders the sweep table.
pub fn render(r: &Result) -> Table {
    let mut t = Table::new(
        &format!(
            "Ablation: private-task parameters on {} ({} workers)",
            r.workload, r.workers
        ),
        &[
            "trip",
            "batch",
            "public",
            "time(s)",
            "steals",
            "publishes",
            "private%",
        ],
    );
    for row in &r.rows {
        t.row(vec![
            row.trip_distance.to_string(),
            row.publish_batch.to_string(),
            if row.force_public { "all" } else { "-" }.into(),
            format!("{:.4}", row.seconds),
            row.steals.to_string(),
            row.publishes.to_string(),
            fmt_sig(100.0 * row.private_ratio),
        ]);
    }
    t
}

minijson::impl_to_json!(Row {
    trip_distance,
    publish_batch,
    force_public,
    seconds,
    steals,
    publishes,
    private_ratio,
});
minijson::impl_to_json!(JoinPolicyRow {
    system,
    seconds,
    steals,
    leap_steals
});
minijson::impl_to_json!(Result {
    workload,
    workers,
    rows,
    join_policy
});
