//! Table IV — *A simple steal cost model, computed and measured
//! speed ups.*
//!
//! For `mm(64)`: combine the measured steal costs (Table III) and steal
//! counts with the §IV-D2a model and compare the predicted speedup to
//! the measured one, per system and worker count.

use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::model::{steal_cost_model_speedup, ModelInputs};
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// Model-vs-measured for one system.
#[derive(Debug, Clone)]
pub struct Row {
    /// System name.
    pub system: String,
    /// `(workers, predicted speedup, measured speedup)` triples.
    pub entries: Vec<(usize, f64, f64)>,
}

/// The full result.
#[derive(Debug, Clone)]
pub struct Result {
    /// Per-repetition work, kilocycles.
    pub rep_kcycles: f64,
    /// Rows for wool, cilk-like, tbb-like (the paper omits OpenMP here:
    /// its mm is a work-sharing loop, not tasks; ours is task-based so
    /// we include it for completeness).
    pub rows: Vec<Row>,
    /// Steal costs reused from the Table III procedure.
    pub steal_costs: Vec<(String, Vec<(usize, f64)>)>,
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    let spec = WorkloadSpec {
        kind: WorkloadKind::Mm,
        p1: 64,
        p2: 0,
        reps: ((16384.0 * args.scale) as u64).max(4),
    };

    // Sequential work per repetition.
    let mut serial = System::create(SystemKind::Serial, 1);
    let ms = measure_job(&mut serial, &spec, 2);
    let work_per_rep = ms.cycles / spec.reps as f64;

    // Steal costs via the Table III procedure (reused).
    let t3 = super::table3::run(args);

    let sweep: Vec<usize> = args.worker_sweep().into_iter().filter(|&p| p > 1).collect();
    let mut rows = Vec::new();
    for kind in SystemKind::PAPER_SYSTEMS {
        eprintln!("[table4] {}", kind.name());
        let costs = t3
            .rows
            .iter()
            .find(|r| r.system == kind.name())
            .expect("system measured in table3");
        let c2 = costs
            .steal_cycles
            .iter()
            .find(|&&(p, _)| p == 2)
            .map(|&(_, c)| c)
            .unwrap_or(0.0);

        let mut entries = Vec::new();
        for &p in &sweep {
            // Measured speedup and steal count on this system.
            let mut sys = System::create(kind, p);
            let mp = measure_job(&mut sys, &spec, 1);
            let measured = ms.seconds / mp.seconds;
            let steals_per_rep = mp.steals as f64 / spec.reps as f64;
            let cp = costs
                .steal_cycles
                .iter()
                .find(|&&(q, _)| q == p)
                .map(|&(_, c)| c)
                .unwrap_or(c2);
            let predicted = steal_cost_model_speedup(ModelInputs {
                work: work_per_rep,
                c2,
                cp,
                steals: steals_per_rep,
                p,
            });
            entries.push((p, predicted, measured));
        }
        rows.push(Row {
            system: kind.name().to_string(),
            entries,
        });
    }

    Result {
        rep_kcycles: work_per_rep / 1e3,
        rows,
        steal_costs: t3
            .rows
            .iter()
            .map(|r| (r.system.clone(), r.steal_cycles.clone()))
            .collect(),
    }
}

/// Renders the paper-style table (measured values in parentheses).
pub fn render(r: &Result) -> Table {
    let mut header = vec!["System".to_string()];
    for &(p, _, _) in &r.rows[0].entries {
        header.push(format!("{p}"));
    }
    let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        &format!(
            "Table IV: steal-cost model vs measured, mm(64), RepSz={}k cycles",
            fmt_sig(r.rep_kcycles)
        ),
        &hdr,
    );
    for row in &r.rows {
        let mut cells = vec![row.system.clone()];
        for &(_, pred, meas) in &row.entries {
            cells.push(format!("{} ({})", fmt_sig(pred), fmt_sig(meas)));
        }
        t.row(cells);
    }
    t
}

minijson::impl_to_json!(Row { system, entries });
minijson::impl_to_json!(Result {
    rep_kcycles,
    rows,
    steal_costs
});
