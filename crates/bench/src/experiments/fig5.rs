//! Figure 5 — *Speedup of fine grained applications on Wool, Cilk++,
//! TBB and OpenMP.*
//!
//! For cholesky, mm and ssf the paper plots **absolute** speedup
//! (against the sequential program); for stress, speedup relative to
//! single-processor Wool. One panel per workload row of Table I.

use workloads::{all_table1_specs, WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One panel: a workload, speedups per system and worker count.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Workload name.
    pub workload: String,
    /// Whether the baseline is the serial program (absolute) or
    /// one-worker Wool (relative, stress only).
    pub absolute: bool,
    /// Series: `(system, [(workers, speedup)])`.
    pub series: Vec<(String, Vec<(usize, f64)>)>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Result {
    /// Panels, one per Table I workload row measured.
    pub panels: Vec<Panel>,
}

/// Runs the experiment over `specs` (pass `None` to use all 24 Table I
/// rows — at small scales a subset keeps runtime reasonable).
pub fn run_specs(args: &BenchArgs, specs: &[WorkloadSpec]) -> Result {
    let sweep = args.worker_sweep();
    let mut panels = Vec::new();
    for spec in specs {
        eprintln!("[fig5] {}", spec.name());
        let absolute = spec.kind != WorkloadKind::Stress;
        // Baseline time.
        let base = if absolute {
            let mut serial = System::create(SystemKind::Serial, 1);
            measure_job(&mut serial, spec, 2).seconds
        } else {
            let mut wool1 = System::create(SystemKind::Wool, 1);
            measure_job(&mut wool1, spec, 2).seconds
        };

        let mut series = Vec::new();
        for kind in SystemKind::PAPER_SYSTEMS {
            let mut points = Vec::new();
            for &p in &sweep {
                let mut sys = System::create(kind, p);
                let t = measure_job(&mut sys, spec, 1).seconds;
                points.push((p, base / t));
            }
            series.push((kind.name().to_string(), points));
        }
        panels.push(Panel {
            workload: spec.name(),
            absolute,
            series,
        });
    }
    Result { panels }
}

/// Runs over all Table I rows, reps scaled by `args.scale`.
pub fn run(args: &BenchArgs) -> Result {
    let specs: Vec<WorkloadSpec> = all_table1_specs()
        .iter()
        .map(|s| s.scale_reps(args.scale))
        .collect();
    run_specs(args, &specs)
}

/// Renders one table per panel.
pub fn render(r: &Result) -> Vec<Table> {
    r.panels
        .iter()
        .map(|panel| {
            let mut header = vec!["System".to_string()];
            for &(p, _) in &panel.series[0].1 {
                header.push(format!("p={p}"));
            }
            let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let kind = if panel.absolute {
                "absolute"
            } else {
                "relative"
            };
            let mut t = Table::new(
                &format!("Figure 5: {} — {kind} speedup", panel.workload),
                &hdr,
            );
            for (name, points) in &panel.series {
                let mut cells = vec![name.clone()];
                for &(_, v) in points {
                    cells.push(fmt_sig(v));
                }
                t.row(cells);
            }
            t
        })
        .collect()
}

minijson::impl_to_json!(Panel {
    workload,
    absolute,
    series
});
minijson::impl_to_json!(Result { panels });
