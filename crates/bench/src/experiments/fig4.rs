//! Figure 4 — *Different implementations of stealing.*
//!
//! The four steal-side implementations (§IV-C: base, peek, trylock,
//! nolock) on the stress benchmark with 256-iteration leaves. The
//! paper plots one panel per parallel-region size (heights 7–11 with
//! repetitions 64K down to 4K) with worker count on the x-axis and
//! relative speedup on the y-axis.

use workloads::{WorkloadKind, WorkloadSpec};

use crate::cli::BenchArgs;
use crate::measure::measure_job;
use crate::report::{fmt_sig, Table};
use crate::system::{System, SystemKind};

/// One panel: a fixed region size, speedups per system and worker count.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Tree height.
    pub height: usize,
    /// Repetitions.
    pub reps: u64,
    /// Series: `(system, [(workers, relative speedup)])`.
    pub series: Vec<(String, Vec<(usize, f64)>)>,
}

/// The figure's data.
#[derive(Debug, Clone)]
pub struct Result {
    /// Leaf iterations (paper: 256).
    pub leaf_iters: usize,
    /// Panels, small regions to large.
    pub panels: Vec<Panel>,
}

/// Runs the experiment.
pub fn run(args: &BenchArgs) -> Result {
    // Paper: heights 7..11 with reps shifted to 64K..4K.
    let configs = [
        (7usize, 65536u64),
        (8, 32768),
        (9, 16384),
        (10, 8192),
        (11, 4096),
    ];
    let sweep = args.worker_sweep();
    let mut panels = Vec::new();
    for (height, base_reps) in configs {
        let reps = ((base_reps as f64 * args.scale) as u64).max(8);
        let spec = WorkloadSpec {
            kind: WorkloadKind::Stress,
            p1: height,
            p2: 256,
            reps,
        };
        eprintln!("[fig4] height={height} reps={reps}");
        let mut series = Vec::new();
        for kind in SystemKind::FIG4_LADDER {
            let mut points = Vec::new();
            let mut t1 = f64::NAN;
            for &p in &sweep {
                let mut sys = System::create(kind, p);
                let t = measure_job(&mut sys, &spec, 1).seconds;
                if p == 1 {
                    t1 = t;
                }
                points.push((p, t1 / t));
            }
            let label = if kind == SystemKind::WoolTaskSpecific {
                "nolock".to_string()
            } else {
                kind.name().trim_start_matches("steal:").to_string()
            };
            series.push((label, points));
        }
        panels.push(Panel {
            height,
            reps,
            series,
        });
    }
    Result {
        leaf_iters: 256,
        panels,
    }
}

/// Renders one table per panel.
pub fn render(r: &Result) -> Vec<Table> {
    r.panels
        .iter()
        .map(|panel| {
            let mut header = vec!["Steal impl".to_string()];
            for &(p, _) in &panel.series[0].1 {
                header.push(format!("p={p}"));
            }
            let hdr: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
            let mut t = Table::new(
                &format!(
                    "Figure 4: stress(256, h={}) x{} — relative speedup",
                    panel.height, panel.reps
                ),
                &hdr,
            );
            for (name, points) in &panel.series {
                let mut cells = vec![name.clone()];
                for &(_, v) in points {
                    cells.push(fmt_sig(v));
                }
                t.row(cells);
            }
            t
        })
        .collect()
}

minijson::impl_to_json!(Panel {
    height,
    reps,
    series
});
minijson::impl_to_json!(Result { leaf_iters, panels });
