//! # ws-bench — the experiment harness
//!
//! Regenerates every table and figure of the Wool paper's evaluation
//! (§IV). Each binary under `src/bin/` corresponds to one exhibit; this
//! library provides the shared machinery:
//!
//! * [`system`] — a closed enum over every scheduler in the repository
//!   (all Wool strategy rungs, the TBB/Cilk++/OpenMP-like baselines and
//!   the serial executor) with uniform run/measure/statistics access.
//! * [`measure`] — wall-clock + cycle measurement of a [`Job`] on a
//!   system, with repeat-and-take-best methodology.
//! * [`model`] — the paper's simple steal-cost performance model
//!   (Table IV).
//! * [`report`] — plain-text table rendering plus JSON dumping of every
//!   result (consumed by EXPERIMENTS.md).
//! * [`cli`] — a tiny argument parser shared by the binaries.
//!
//! [`Job`]: wool_core::Job

#![warn(missing_docs)]

pub mod cli;
pub mod experiments;
pub mod measure;
pub mod microbench;
pub mod model;
pub mod report;
pub mod system;
pub mod tracing;

pub use cli::BenchArgs;
pub use measure::{measure_job, Measurement};
pub use model::steal_cost_model_speedup;
pub use report::{dump_json, Table};
pub use system::{System, SystemKind};
