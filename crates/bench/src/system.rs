//! A closed enum over every scheduler in the repository.
//!
//! `Executor::run_job` is generic, so trait objects cannot dispatch it;
//! the benches instead enumerate the systems here. `SystemKind` also
//! carries the paper's display names so table rows match the original
//! exhibits ("Wool", "Cilk++", "TBB", "OpenMP" become our honest
//! "wool", "cilk-like", "tbb-like", "omp-like").

use wool_core::{
    Executor, Job, LockedBase, Pool, PoolConfig, Stats, StealLockBase, StealLockPeek,
    StealLockTrylock, SyncOnTask, TaskSpecific, WoolFull, WoolNoLeap,
};
use ws_baseline::{
    cilk_like, omp_like, tbb_like, CentralPool, CilkLikePool, OmpLikePool, SerialExecutor,
    TbbLikePool,
};

/// Which scheduler to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Full Wool: direct task stack + task-specific join + private tasks.
    Wool,
    /// Wool without private tasks (Table II "task specific join",
    /// Figure 4 "nolock").
    WoolTaskSpecific,
    /// Wool without task-specific join (Table II "synchronize on task").
    WoolSyncOnTask,
    /// Table II "base": per-worker locks, shared top.
    WoolLockedBase,
    /// Figure 4 "base": lock-immediately stealing.
    WoolStealLockBase,
    /// Figure 4 "peek".
    WoolStealLockPeek,
    /// Figure 4 "trylock".
    WoolStealLockTrylock,
    /// Wool with plain waiting instead of leap-frogging (ablation).
    WoolNoLeapfrog,
    /// TBB stand-in: Chase–Lev pointer deque, heap task objects.
    TbbLike,
    /// Cilk++ stand-in: locked deques, heap task objects.
    CilkLike,
    /// icc OpenMP stand-in: locked deques plus a global steal lock.
    OmpLike,
    /// Carbon-style software analogue: one global task queue.
    Central,
    /// Sequential execution with zero task overhead (T_S).
    Serial,
}

impl SystemKind {
    /// The four systems of the paper's headline comparisons
    /// (Figures 1 and 5, Table III).
    pub const PAPER_SYSTEMS: [SystemKind; 4] = [
        SystemKind::Wool,
        SystemKind::CilkLike,
        SystemKind::TbbLike,
        SystemKind::OmpLike,
    ];

    /// The Figure 4 steal-implementation ladder.
    pub const FIG4_LADDER: [SystemKind; 4] = [
        SystemKind::WoolStealLockBase,
        SystemKind::WoolStealLockPeek,
        SystemKind::WoolStealLockTrylock,
        SystemKind::WoolTaskSpecific, // "nolock"
    ];

    /// Display name (table row / plot series label).
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Wool => "wool",
            SystemKind::WoolTaskSpecific => "wool/task-specific",
            SystemKind::WoolSyncOnTask => "wool/sync-on-task",
            SystemKind::WoolLockedBase => "wool/base",
            SystemKind::WoolStealLockBase => "steal:base",
            SystemKind::WoolStealLockPeek => "steal:peek",
            SystemKind::WoolStealLockTrylock => "steal:trylock",
            SystemKind::WoolNoLeapfrog => "wool/no-leapfrog",
            SystemKind::TbbLike => "tbb-like",
            SystemKind::CilkLike => "cilk-like",
            SystemKind::OmpLike => "omp-like",
            SystemKind::Central => "central",
            SystemKind::Serial => "serial",
        }
    }
}

/// An instantiated scheduler.
pub enum System {
    /// See [`SystemKind::Wool`].
    Wool(Pool<WoolFull>),
    /// See [`SystemKind::WoolTaskSpecific`].
    WoolTaskSpecific(Pool<TaskSpecific>),
    /// See [`SystemKind::WoolSyncOnTask`].
    WoolSyncOnTask(Pool<SyncOnTask>),
    /// See [`SystemKind::WoolLockedBase`].
    WoolLockedBase(Pool<LockedBase>),
    /// See [`SystemKind::WoolStealLockBase`].
    WoolStealLockBase(Pool<StealLockBase>),
    /// See [`SystemKind::WoolStealLockPeek`].
    WoolStealLockPeek(Pool<StealLockPeek>),
    /// See [`SystemKind::WoolStealLockTrylock`].
    WoolStealLockTrylock(Pool<StealLockTrylock>),
    /// See [`SystemKind::WoolNoLeapfrog`].
    WoolNoLeapfrog(Pool<WoolNoLeap>),
    /// See [`SystemKind::TbbLike`].
    TbbLike(TbbLikePool),
    /// See [`SystemKind::CilkLike`].
    CilkLike(CilkLikePool),
    /// See [`SystemKind::OmpLike`].
    OmpLike(OmpLikePool),
    /// See [`SystemKind::Central`].
    Central(CentralPool),
    /// See [`SystemKind::Serial`].
    Serial(SerialExecutor),
}

impl System {
    /// Instantiates `kind` with `workers` workers.
    pub fn create(kind: SystemKind, workers: usize) -> System {
        Self::create_with(kind, PoolConfig::with_workers(workers))
    }

    /// Instantiates `kind` with an explicit Wool pool configuration
    /// (baselines only honor `cfg.workers`).
    pub fn create_with(kind: SystemKind, cfg: PoolConfig) -> System {
        let w = cfg.workers;
        match kind {
            SystemKind::Wool => System::Wool(Pool::with_config(cfg)),
            SystemKind::WoolTaskSpecific => System::WoolTaskSpecific(Pool::with_config(cfg)),
            SystemKind::WoolSyncOnTask => System::WoolSyncOnTask(Pool::with_config(cfg)),
            SystemKind::WoolLockedBase => System::WoolLockedBase(Pool::with_config(cfg)),
            SystemKind::WoolStealLockBase => System::WoolStealLockBase(Pool::with_config(cfg)),
            SystemKind::WoolStealLockPeek => System::WoolStealLockPeek(Pool::with_config(cfg)),
            SystemKind::WoolStealLockTrylock => {
                System::WoolStealLockTrylock(Pool::with_config(cfg))
            }
            SystemKind::WoolNoLeapfrog => System::WoolNoLeapfrog(Pool::with_config(cfg)),
            SystemKind::TbbLike => System::TbbLike(tbb_like(w)),
            SystemKind::CilkLike => System::CilkLike(cilk_like(w)),
            SystemKind::OmpLike => System::OmpLike(omp_like(w)),
            SystemKind::Central => System::Central(CentralPool::new(w)),
            SystemKind::Serial => System::Serial(SerialExecutor::new()),
        }
    }

    /// The kind this system was created as.
    pub fn kind(&self) -> SystemKind {
        match self {
            System::Wool(_) => SystemKind::Wool,
            System::WoolTaskSpecific(_) => SystemKind::WoolTaskSpecific,
            System::WoolSyncOnTask(_) => SystemKind::WoolSyncOnTask,
            System::WoolLockedBase(_) => SystemKind::WoolLockedBase,
            System::WoolStealLockBase(_) => SystemKind::WoolStealLockBase,
            System::WoolStealLockPeek(_) => SystemKind::WoolStealLockPeek,
            System::WoolStealLockTrylock(_) => SystemKind::WoolStealLockTrylock,
            System::WoolNoLeapfrog(_) => SystemKind::WoolNoLeapfrog,
            System::TbbLike(_) => SystemKind::TbbLike,
            System::CilkLike(_) => SystemKind::CilkLike,
            System::OmpLike(_) => SystemKind::OmpLike,
            System::Central(_) => SystemKind::Central,
            System::Serial(_) => SystemKind::Serial,
        }
    }

    /// Runs a job to completion.
    pub fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R {
        match self {
            System::Wool(p) => p.run_job(job),
            System::WoolTaskSpecific(p) => p.run_job(job),
            System::WoolSyncOnTask(p) => p.run_job(job),
            System::WoolLockedBase(p) => p.run_job(job),
            System::WoolStealLockBase(p) => p.run_job(job),
            System::WoolStealLockPeek(p) => p.run_job(job),
            System::WoolStealLockTrylock(p) => p.run_job(job),
            System::WoolNoLeapfrog(p) => p.run_job(job),
            System::TbbLike(p) => p.run_job(job),
            System::CilkLike(p) => p.run_job(job),
            System::OmpLike(p) => p.run_job(job),
            System::Central(p) => p.run_job(job),
            System::Serial(e) => e.run_job(job),
        }
    }

    /// Scheduler statistics for the most recent run (Wool pools) or
    /// since the last reset (baselines). Serial returns zeros.
    pub fn last_stats(&self) -> Stats {
        match self {
            System::Wool(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolTaskSpecific(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolSyncOnTask(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolLockedBase(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolStealLockBase(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolStealLockPeek(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolStealLockTrylock(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::WoolNoLeapfrog(p) => p.last_report().map(|r| r.total).unwrap_or_default(),
            System::TbbLike(p) => p.stats(),
            System::CilkLike(p) => p.stats(),
            System::OmpLike(p) => p.stats(),
            System::Central(p) => p.stats(),
            System::Serial(_) => Stats::default(),
        }
    }

    /// Full run report, if this is a Wool pool (span/breakdown data).
    pub fn last_report(&self) -> Option<&wool_core::RunReport> {
        match self {
            System::Wool(p) => p.last_report(),
            System::WoolTaskSpecific(p) => p.last_report(),
            System::WoolSyncOnTask(p) => p.last_report(),
            System::WoolLockedBase(p) => p.last_report(),
            System::WoolStealLockBase(p) => p.last_report(),
            System::WoolStealLockPeek(p) => p.last_report(),
            System::WoolStealLockTrylock(p) => p.last_report(),
            System::WoolNoLeapfrog(p) => p.last_report(),
            _ => None,
        }
    }

    /// Resets the baselines' cumulative counters (no-op on Wool pools,
    /// whose reports are per-run already).
    pub fn reset_stats(&mut self) {
        match self {
            System::TbbLike(p) => p.reset_stats(),
            System::CilkLike(p) => p.reset_stats(),
            System::OmpLike(p) => p.reset_stats(),
            System::Central(p) => p.reset_stats(),
            _ => {}
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        self.kind().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Fork;

    struct FibJob(u64);
    impl Job<u64> for FibJob {
        fn call<C: Fork>(self, ctx: &mut C) -> u64 {
            fn go<C: Fork>(c: &mut C, n: u64) -> u64 {
                if n < 2 {
                    return n;
                }
                let (a, b) = c.fork(|c| go(c, n - 1), |c| go(c, n - 2));
                a + b
            }
            go(ctx, self.0)
        }
    }

    #[test]
    fn every_system_computes_fib() {
        let kinds = [
            SystemKind::Wool,
            SystemKind::WoolTaskSpecific,
            SystemKind::WoolSyncOnTask,
            SystemKind::WoolLockedBase,
            SystemKind::WoolStealLockBase,
            SystemKind::WoolStealLockPeek,
            SystemKind::WoolStealLockTrylock,
            SystemKind::TbbLike,
            SystemKind::CilkLike,
            SystemKind::OmpLike,
            SystemKind::Serial,
        ];
        for kind in kinds {
            let mut s = System::create(kind, 2);
            assert_eq!(s.run_job(FibJob(16)), 987, "{}", s.name());
            assert_eq!(s.kind(), kind);
        }
    }

    #[test]
    fn wool_stats_available_after_run() {
        let mut s = System::create(SystemKind::Wool, 2);
        s.run_job(FibJob(15));
        assert!(s.last_stats().spawns > 500);
        assert!(s.last_report().is_some());
    }

    #[test]
    fn baseline_stats_reset() {
        let mut s = System::create(SystemKind::TbbLike, 1);
        s.run_job(FibJob(12));
        assert!(s.last_stats().spawns > 0);
        s.reset_stats();
        assert_eq!(s.last_stats().spawns, 0);
    }

    #[test]
    fn names_are_distinct() {
        use std::collections::HashSet;
        let names: HashSet<_> = [
            SystemKind::Wool,
            SystemKind::WoolTaskSpecific,
            SystemKind::WoolSyncOnTask,
            SystemKind::WoolLockedBase,
            SystemKind::WoolStealLockBase,
            SystemKind::WoolStealLockPeek,
            SystemKind::WoolStealLockTrylock,
            SystemKind::TbbLike,
            SystemKind::CilkLike,
            SystemKind::OmpLike,
            SystemKind::Serial,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 11);
    }
}
