//! Timing methodology.
//!
//! Each measurement runs a job several times and keeps the **best**
//! wall-clock time (the standard noise-rejection choice for throughput
//! kernels: external interference only ever adds time). Times are
//! reported both in seconds and in cycle ticks so overheads can be
//! quoted per-task in cycles as the paper does.

use std::time::Instant;

use wool_core::cycles;

use crate::system::System;
use workloads::WorkloadSpec;

/// One timed result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// System display name.
    pub system: String,
    /// Workload name (with parameters and reps).
    pub workload: String,
    /// Worker count.
    pub workers: usize,
    /// Best wall time, seconds.
    pub seconds: f64,
    /// Best wall time, cycle ticks.
    pub cycles: f64,
    /// Successful steals observed in the best run (Wool: per run;
    /// baselines: per run via reset).
    pub steals: u64,
    /// Tasks spawned in the best run.
    pub spawns: u64,
    /// Checksum of the computed result (cross-system validation).
    pub checksum: f64,
}

minijson::impl_to_json!(Measurement {
    system,
    workload,
    workers,
    seconds,
    cycles,
    steals,
    spawns,
    checksum,
});

/// Runs `spec` on `system` `repeats` times, keeping the fastest run.
pub fn measure_job(system: &mut System, spec: &WorkloadSpec, repeats: usize) -> Measurement {
    assert!(repeats >= 1);
    let mut best_secs = f64::INFINITY;
    let mut best = Measurement {
        system: system.name().to_string(),
        workload: spec.name(),
        workers: 1,
        seconds: f64::INFINITY,
        cycles: f64::INFINITY,
        steals: 0,
        spawns: 0,
        checksum: 0.0,
    };
    for _ in 0..repeats {
        system.reset_stats();
        let t0 = Instant::now();
        let checksum = system.run_job(spec.job());
        let dt = t0.elapsed();
        let secs = dt.as_secs_f64();
        if secs < best_secs {
            best_secs = secs;
            let stats = system.last_stats();
            best.seconds = secs;
            best.cycles = cycles::duration_to_ticks(dt);
            best.steals = stats.total_steals();
            best.spawns = stats.spawns;
            best.checksum = checksum;
        }
    }
    best
}

/// Convenience: seconds → cycles per `n` events.
pub fn cycles_per(seconds: f64, n: u64) -> f64 {
    if n == 0 {
        0.0
    } else {
        seconds * 1e9 * cycles::ticks_per_ns() / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;
    use workloads::{WorkloadKind, WorkloadSpec};

    #[test]
    fn measures_and_validates() {
        let spec = WorkloadSpec {
            kind: WorkloadKind::Fib,
            p1: 15,
            p2: 0,
            reps: 2,
        };
        let mut serial = System::create(SystemKind::Serial, 1);
        let mut wool = System::create(SystemKind::Wool, 2);
        let a = measure_job(&mut serial, &spec, 2);
        let b = measure_job(&mut wool, &spec, 2);
        assert!(a.seconds > 0.0 && b.seconds > 0.0);
        assert_eq!(a.checksum, b.checksum, "results must agree");
        assert_eq!(b.spawns, 2 * workloads::fib::fib_spawn_count(15));
    }

    #[test]
    fn cycles_per_handles_zero() {
        assert_eq!(cycles_per(1.0, 0), 0.0);
        assert!(cycles_per(1.0, 1_000_000) > 0.0);
    }
}
