//! A tiny Criterion-style harness for the `harness = false` bench
//! targets, since the workspace builds without external dependencies.
//!
//! Usage inside a bench target:
//!
//! ```ignore
//! fn main() {
//!     let mut b = ws_bench::microbench::Bench::from_args();
//!     b.bench("group/name", || do_work());
//!     b.finish();
//! }
//! ```
//!
//! Each benchmark is auto-calibrated to a target sample duration, then
//! timed over several samples; the harness reports the best and median
//! nanoseconds per iteration (best-of is the standard noise-rejection
//! choice for throughput kernels — interference only ever adds time).
//! A positional CLI argument filters benchmarks by substring, matching
//! `cargo bench -- <filter>` usage.

use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 12;
/// Target wall-clock duration of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Collects and reports benchmark timings.
#[derive(Default)]
pub struct Bench {
    filter: Option<String>,
    ran: usize,
}

impl Bench {
    /// Builds a harness from `std::env::args`, accepting the flags
    /// cargo passes to bench binaries (`--bench`) and an optional
    /// positional substring filter.
    pub fn from_args() -> Self {
        let mut filter = None;
        for a in std::env::args().skip(1) {
            if a == "--bench" || a.starts_with("--") {
                continue;
            }
            filter = Some(a);
        }
        Bench { filter, ran: 0 }
    }

    /// Runs one benchmark unless filtered out.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Calibrate: find an iteration count filling the target sample.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Grow towards the target with a 2x cap per step.
            let scale = (TARGET_SAMPLE.as_secs_f64() / dt.as_secs_f64().max(1e-9)).min(2.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let best = per_iter[0];
        let median = per_iter[SAMPLES / 2];
        println!(
            "{name:<44} {:>12}/iter  (median {}, {iters} iters x {SAMPLES} samples)",
            fmt_ns(best),
            fmt_ns(median),
        );
    }

    /// Prints a footer; call after the last benchmark.
    pub fn finish(&self) {
        if self.ran == 0 {
            println!("(no benchmarks matched the filter)");
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench {
            filter: Some("match-me".into()),
            ran: 0,
        };
        let mut hits = 0;
        b.bench("other/benchmark", || hits += 1);
        assert_eq!(hits, 0);
        assert_eq!(b.ran, 0);
    }

    #[test]
    fn runs_and_counts() {
        let mut b = Bench::default();
        let mut hits = 0u64;
        b.bench("fast/no-op", || hits = hits.wrapping_add(1));
        assert!(hits > 0);
        assert_eq!(b.ran, 1);
        b.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.340 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.340 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
