//! A tiny Criterion-style harness for the `harness = false` bench
//! targets, since the workspace builds without external dependencies.
//!
//! Usage inside a bench target:
//!
//! ```ignore
//! fn main() {
//!     let mut b = ws_bench::microbench::Bench::from_args();
//!     b.bench("group/name", || do_work());
//!     b.finish();
//! }
//! ```
//!
//! Each benchmark is auto-calibrated to a target sample duration, then
//! timed over several samples; the harness reports the best and median
//! nanoseconds per iteration (best-of is the standard noise-rejection
//! choice for throughput kernels — interference only ever adds time).
//! A positional CLI argument filters benchmarks by substring, matching
//! `cargo bench -- <filter>` usage.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use minijson::Json;

/// Number of timed samples per benchmark (also the run count behind
/// the JSON trajectory's median/p10/p90).
pub const SAMPLES: usize = 12;
/// Target wall-clock duration of one sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(25);

/// Timing summary of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name (`group/case`).
    pub name: String,
    /// Fastest sample.
    pub best_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 10th-percentile sample (nearest rank).
    pub p10_ns: f64,
    /// 90th-percentile sample (nearest rank).
    pub p90_ns: f64,
    /// Iterations per sample (from calibration).
    pub iters: u64,
}

/// Collects and reports benchmark timings.
#[derive(Default)]
pub struct Bench {
    filter: Option<String>,
    ran: usize,
    results: Vec<BenchResult>,
}

impl Bench {
    /// Builds a harness from `std::env::args`, accepting the flags
    /// cargo passes to bench binaries (`--bench`) and an optional
    /// positional substring filter.
    pub fn from_args() -> Self {
        let mut filter = None;
        for a in std::env::args().skip(1) {
            if a == "--bench" || a.starts_with("--") {
                continue;
            }
            filter = Some(a);
        }
        Bench {
            filter,
            ran: 0,
            results: Vec::new(),
        }
    }

    /// Runs one benchmark unless filtered out.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        self.ran += 1;

        // Calibrate: find an iteration count filling the target sample.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            // Grow towards the target with a 2x cap per step.
            let scale = (TARGET_SAMPLE.as_secs_f64() / dt.as_secs_f64().max(1e-9)).min(2.0);
            iters = ((iters as f64 * scale).ceil() as u64).max(iters + 1);
        }

        let mut per_iter: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t0.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));

        let best = per_iter[0];
        let median = per_iter[SAMPLES / 2];
        self.results.push(BenchResult {
            name: name.to_string(),
            best_ns: best,
            median_ns: median,
            p10_ns: per_iter[(SAMPLES - 1) * 10 / 100],
            p90_ns: per_iter[(SAMPLES - 1) * 90 / 100],
            iters,
        });
        println!(
            "{name:<44} {:>12}/iter  (median {}, {iters} iters x {SAMPLES} samples)",
            fmt_ns(best),
            fmt_ns(median),
        );
    }

    /// All results recorded so far, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Serializes the recorded results as the machine-readable
    /// trajectory format future PRs diff against: an object with the
    /// sampling parameters and one entry per benchmark carrying
    /// median/p10/p90/best nanoseconds per iteration.
    pub fn to_json(&self) -> Json {
        let benchmarks = self
            .results
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(r.name.clone())),
                    ("median_ns".into(), Json::Num(r.median_ns)),
                    ("p10_ns".into(), Json::Num(r.p10_ns)),
                    ("p90_ns".into(), Json::Num(r.p90_ns)),
                    ("best_ns".into(), Json::Num(r.best_ns)),
                    ("iters".into(), Json::Num(r.iters as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("samples_per_benchmark".into(), Json::Num(SAMPLES as f64)),
            ("benchmarks".into(), Json::Arr(benchmarks)),
        ])
    }

    /// Writes [`to_json`](Bench::to_json) to `path` (pretty-printed).
    /// Errors are reported, not fatal: a read-only checkout must not
    /// fail the bench run itself.
    pub fn write_json(&self, path: &Path) {
        match std::fs::write(path, self.to_json().pretty() + "\n") {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }

    /// Prints a footer; call after the last benchmark.
    pub fn finish(&self) {
        if self.ran == 0 {
            println!("(no benchmarks matched the filter)");
        }
    }
}

/// Absolute path of `file` at the repository root (two levels above
/// this crate), where the `BENCH_*.json` perf trajectories live.
pub fn repo_root_file(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench lives at <root>/crates/bench")
        .join(file)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_skips_nonmatching() {
        let mut b = Bench {
            filter: Some("match-me".into()),
            ..Bench::default()
        };
        let mut hits = 0;
        b.bench("other/benchmark", || hits += 1);
        assert_eq!(hits, 0);
        assert_eq!(b.ran, 0);
        assert!(b.results().is_empty());
    }

    #[test]
    fn records_ordered_stats_and_json() {
        let mut b = Bench::default();
        b.bench("fast/stats", || {
            std::hint::black_box(1 + 1);
        });
        let r = &b.results()[0];
        assert_eq!(r.name, "fast/stats");
        assert!(r.best_ns <= r.p10_ns && r.p10_ns <= r.median_ns);
        assert!(r.median_ns <= r.p90_ns);
        assert!(r.iters >= 1);

        let json = b.to_json();
        assert_eq!(
            json.get("samples_per_benchmark").and_then(|j| j.as_u64()),
            Some(SAMPLES as u64)
        );
        let arr = json.get("benchmarks").and_then(|j| j.as_array()).unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(
            arr[0].get("name").and_then(|j| j.as_str()),
            Some("fast/stats")
        );
        // Round-trips through the parser.
        let parsed = minijson::parse(&json.pretty()).unwrap();
        assert!(parsed.get("benchmarks").is_some());
    }

    #[test]
    fn repo_root_file_points_above_crates() {
        let p = repo_root_file("BENCH_x.json");
        let root = p.parent().unwrap();
        assert!(
            root.join("crates").is_dir(),
            "{} has no crates/",
            root.display()
        );
    }

    #[test]
    fn runs_and_counts() {
        let mut b = Bench::default();
        let mut hits = 0u64;
        b.bench("fast/no-op", || hits = hits.wrapping_add(1));
        assert!(hits > 0);
        assert_eq!(b.ran, 1);
        b.finish();
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.340 us");
        assert_eq!(fmt_ns(12_340_000.0), "12.340 ms");
        assert_eq!(fmt_ns(2.5e9), "2.500 s");
    }
}
