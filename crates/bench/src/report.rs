//! Table rendering and result persistence.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

use minijson::ToJson;

/// A simple fixed-width text table matching the paper's exhibits.
#[derive(Debug, Default, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders to a string.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    let _ = write!(out, "{:<w$}", c, w = widths[i]);
                } else {
                    let _ = write!(out, "  {:>w$}", c, w = widths[i]);
                }
            }
            let _ = writeln!(out);
        };
        line(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Serializes `value` as pretty JSON to `path`, creating parent dirs.
pub fn dump_json<T: ToJson>(path: &str, value: &T) {
    let p = Path::new(path);
    if let Some(dir) = p.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let mut f = std::fs::File::create(p).unwrap_or_else(|e| panic!("cannot create {path}: {e}"));
    let s = value.to_json().pretty();
    f.write_all(s.as_bytes()).expect("write json");
    eprintln!("[json] wrote {path}");
}

/// Renders the steal-graph summary computed from a run trace: the top
/// thief→victim edges, the failed-steal ratio, and the back-off ratio
/// the paper claims stays "considerably less than 1%" (§III-A).
#[cfg(feature = "trace")]
pub fn steal_summary_table(analysis: &wool_trace::Analysis) -> Table {
    let mut t = Table::new("Steal graph (from trace)", &["edge", "steals", "share"]);
    let total = analysis.steals.max(1) as f64;
    for e in analysis.steal_graph.iter().take(10) {
        t.row(vec![
            format!("w{} <- w{}", e.thief, e.victim),
            e.count.to_string(),
            format!("{:.1}%", e.count as f64 / total * 100.0),
        ]);
    }
    t.row(vec![
        "total steals".into(),
        analysis.steals.to_string(),
        String::new(),
    ]);
    t.row(vec![
        "failed-steal ratio".into(),
        fmt_sig(analysis.failed_ratio() * 100.0) + "%",
        String::new(),
    ]);
    t.row(vec![
        "back-off ratio".into(),
        fmt_sig(analysis.backoff_ratio() * 100.0) + "%",
        "paper: <1%".into(),
    ]);
    t
}

/// Formats a float with 3 significant-ish digits for table cells.
pub fn fmt_sig(v: f64) -> String {
    if !v.is_finite() {
        return "-".into();
    }
    let a = v.abs();
    if a >= 1000.0 {
        format!("{:.0}", v)
    } else if a >= 100.0 {
        format!("{:.1}", v)
    } else if a >= 1.0 {
        format!("{:.2}", v)
    } else {
        format!("{:.3}", v)
    }
}

/// Formats a cycle count the way the paper does (k = 1000).
pub fn fmt_kcycles(cycles: f64) -> String {
    if cycles >= 1e6 {
        format!("{:.0}k", cycles / 1e3)
    } else if cycles >= 1e3 {
        format!("{:.1}k", cycles / 1e3)
    } else {
        format!("{:.0}", cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer-name"));
        // All data lines have equal length.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        assert_eq!(lines[1].len(), lines[3].len().max(lines[2].len()));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn sig_formatting() {
        assert_eq!(fmt_sig(12345.6), "12346");
        assert_eq!(fmt_sig(123.45), "123.5");
        assert_eq!(fmt_sig(12.345), "12.35");
        assert_eq!(fmt_sig(0.1234), "0.123");
        assert_eq!(fmt_sig(f64::NAN), "-");
    }

    #[test]
    fn kcycle_formatting() {
        assert_eq!(fmt_kcycles(500.0), "500");
        assert_eq!(fmt_kcycles(2500.0), "2.5k");
        assert_eq!(fmt_kcycles(2_500_000.0), "2500k");
    }

    #[test]
    fn json_roundtrip() {
        let path = std::env::temp_dir().join("ws_bench_test.json");
        let path = path.to_str().unwrap();
        dump_json(path, &vec![1, 2, 3]);
        let s = std::fs::read_to_string(path).unwrap();
        let v = minijson::parse(&s).unwrap();
        let nums: Vec<u64> = v
            .as_array()
            .unwrap()
            .iter()
            .map(|x| x.as_u64().unwrap())
            .collect();
        assert_eq!(nums, vec![1, 2, 3]);
    }
}
