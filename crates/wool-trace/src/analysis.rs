//! Offline analysis of a merged [`Trace`]: the steal graph
//! (thief→victim edge weights), steal-interval histograms, and
//! per-worker utilization timelines.

use std::collections::BTreeMap;

use minijson::Json;

use crate::{EventKind, Trace};

/// One thief→victim edge of the steal graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEdge {
    /// The stealing worker.
    pub thief: usize,
    /// The worker stolen from.
    pub victim: usize,
    /// Successful steals along this edge.
    pub count: u64,
}

/// Utilization summary of one worker over the traced interval.
#[derive(Debug, Clone)]
pub struct WorkerUtilization {
    /// Worker index.
    pub worker: usize,
    /// Fraction of the traced interval spent outside idle spans
    /// (0.0–1.0). 1.0 when the worker never went idle.
    pub busy_fraction: f64,
    /// Busy fraction per timeline bucket (equal slices of the traced
    /// interval), for plotting.
    pub timeline: Vec<f64>,
}

/// The result of [`analyze`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Steal-graph edges sorted by descending count.
    pub steal_graph: Vec<StealEdge>,
    /// Total successful steals in the trace (sum of edge counts).
    pub steals: u64,
    /// Total steal attempts.
    pub attempts: u64,
    /// Attempts that found nothing.
    pub failed: u64,
    /// Back-off events.
    pub backoffs: u64,
    /// Publish-request (trip-wire) events.
    pub publish_requests: u64,
    /// Leapfrog entries.
    pub leapfrogs: u64,
    /// Data-parallel splits (`wool-par` fork points).
    pub splits: u64,
    /// Histogram of intervals between consecutive successful steals by
    /// the same thief: bucket `i` counts intervals in
    /// `[2^i, 2^(i+1))` cycles (bucket 0 also holds 0-cycle intervals).
    pub steal_interval_hist: Vec<u64>,
    /// Per-worker utilization, indexed by worker.
    pub utilization: Vec<WorkerUtilization>,
}

/// Number of timeline buckets in [`WorkerUtilization::timeline`].
pub const TIMELINE_BUCKETS: usize = 32;

/// Runs the full analysis pass over a merged trace.
pub fn analyze(trace: &Trace) -> Analysis {
    let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut attempts = 0;
    let mut failed = 0;
    let mut backoffs = 0;
    let mut publish_requests = 0;
    let mut leapfrogs = 0;
    let mut splits = 0;
    let mut hist = vec![0u64; 64];
    let mut max_bucket = 0;

    for w in &trace.workers {
        let mut last_steal: Option<u64> = None;
        for e in &w.events {
            match e.kind {
                EventKind::StealAttempt => attempts += 1,
                EventKind::StealFail => failed += 1,
                EventKind::Backoff => backoffs += 1,
                EventKind::PublishRequest => publish_requests += 1,
                EventKind::Leapfrog => leapfrogs += 1,
                EventKind::Split => splits += 1,
                EventKind::StealSuccess => {
                    *edges.entry((w.worker, e.arg as usize)).or_insert(0) += 1;
                    if let Some(prev) = last_steal {
                        let dt = e.ts.saturating_sub(prev);
                        let b = (64 - dt.leading_zeros()).saturating_sub(1) as usize;
                        hist[b] += 1;
                        max_bucket = max_bucket.max(b);
                    }
                    last_steal = Some(e.ts);
                }
                _ => {}
            }
        }
    }
    hist.truncate(max_bucket + 1);

    let mut steal_graph: Vec<StealEdge> = edges
        .into_iter()
        .map(|((thief, victim), count)| StealEdge {
            thief,
            victim,
            count,
        })
        .collect();
    steal_graph.sort_by(|a, b| {
        b.count
            .cmp(&a.count)
            .then(a.thief.cmp(&b.thief))
            .then(a.victim.cmp(&b.victim))
    });
    let steals = steal_graph.iter().map(|e| e.count).sum();

    Analysis {
        steal_graph,
        steals,
        attempts,
        failed,
        backoffs,
        publish_requests,
        leapfrogs,
        splits,
        steal_interval_hist: hist,
        utilization: utilization(trace),
    }
}

/// Computes per-worker busy fractions and bucketed timelines from
/// idle/park → unpark/steal-success spans.
fn utilization(trace: &Trace) -> Vec<WorkerUtilization> {
    let (Some(start), Some(end)) = (
        trace.epoch(),
        trace
            .workers
            .iter()
            .flat_map(|w| w.events.iter().map(|e| e.ts))
            .max(),
    ) else {
        return Vec::new();
    };
    let span = (end - start).max(1) as f64;

    trace
        .workers
        .iter()
        .map(|w| {
            // Collect this worker's idle spans.
            let mut spans: Vec<(u64, u64)> = Vec::new();
            let mut idle_since: Option<u64> = None;
            for e in &w.events {
                match e.kind {
                    EventKind::Idle | EventKind::Park => {
                        idle_since.get_or_insert(e.ts);
                    }
                    EventKind::Unpark | EventKind::StealSuccess | EventKind::Dequeue => {
                        if let Some(s) = idle_since.take() {
                            spans.push((s, e.ts));
                        }
                    }
                    _ => {}
                }
            }
            if let Some(s) = idle_since {
                spans.push((s, end));
            }

            let idle_total: u64 = spans.iter().map(|(a, b)| b - a).sum();
            let busy_fraction = (1.0 - idle_total as f64 / span).clamp(0.0, 1.0);

            // Bucketed timeline: subtract each idle span's overlap with
            // each bucket.
            let bucket_w = span / TIMELINE_BUCKETS as f64;
            let mut timeline = vec![1.0f64; TIMELINE_BUCKETS];
            for &(a, b) in &spans {
                let (a, b) = ((a - start) as f64, (b - start) as f64);
                let first = ((a / bucket_w) as usize).min(TIMELINE_BUCKETS - 1);
                let last = ((b / bucket_w) as usize).min(TIMELINE_BUCKETS - 1);
                for (i, slot) in timeline.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = (i as f64) * bucket_w;
                    let hi = lo + bucket_w;
                    let overlap = (b.min(hi) - a.max(lo)).max(0.0);
                    *slot = (*slot - overlap / bucket_w).clamp(0.0, 1.0);
                }
            }

            WorkerUtilization {
                worker: w.worker,
                busy_fraction,
                timeline,
            }
        })
        .collect()
}

impl Analysis {
    /// Failed attempts as a fraction of all attempts (0 when none).
    pub fn failed_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.failed as f64 / self.attempts as f64
        }
    }

    /// Back-offs as a fraction of all attempts — the quantity the paper
    /// reports as "considerably less than 1%" on its workloads.
    pub fn backoff_ratio(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.backoffs as f64 / self.attempts as f64
        }
    }

    /// JSON form of the analysis (steal graph, ratios, histogram,
    /// utilization) for embedding in reports.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "steal_graph".into(),
                Json::Arr(
                    self.steal_graph
                        .iter()
                        .map(|e| {
                            Json::Obj(vec![
                                ("thief".into(), Json::Num(e.thief as f64)),
                                ("victim".into(), Json::Num(e.victim as f64)),
                                ("count".into(), Json::Num(e.count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("steals".into(), Json::Num(self.steals as f64)),
            ("attempts".into(), Json::Num(self.attempts as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("backoffs".into(), Json::Num(self.backoffs as f64)),
            (
                "publish_requests".into(),
                Json::Num(self.publish_requests as f64),
            ),
            ("leapfrogs".into(), Json::Num(self.leapfrogs as f64)),
            ("failed_ratio".into(), Json::Num(self.failed_ratio())),
            ("backoff_ratio".into(), Json::Num(self.backoff_ratio())),
            (
                "steal_interval_hist".into(),
                Json::Arr(
                    self.steal_interval_hist
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
            (
                "utilization".into(),
                Json::Arr(
                    self.utilization
                        .iter()
                        .map(|u| {
                            Json::Obj(vec![
                                ("worker".into(), Json::Num(u.worker as f64)),
                                ("busy_fraction".into(), Json::Num(u.busy_fraction)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRing;

    #[test]
    fn steal_graph_edges_and_totals() {
        let mut t1 = TraceRing::new(64);
        t1.set_enabled(true);
        for _ in 0..3 {
            t1.record(EventKind::StealAttempt, 10, 0);
            t1.record(EventKind::StealSuccess, 20, 0);
        }
        t1.record(EventKind::StealAttempt, 30, 2);
        t1.record(EventKind::StealFail, 31, 2);
        let mut t2 = TraceRing::new(64);
        t2.set_enabled(true);
        t2.record(EventKind::StealAttempt, 15, 0);
        t2.record(EventKind::StealSuccess, 25, 0);
        t2.record(EventKind::Backoff, 40, 1);

        let trace = Trace::new(vec![t1.snapshot(1), t2.snapshot(2)], 1.0);
        let a = trace.analyze();
        assert_eq!(a.steals, 4);
        assert_eq!(a.attempts, 5);
        assert_eq!(a.failed, 1);
        assert_eq!(a.backoffs, 1);
        assert_eq!(
            a.steal_graph[0],
            StealEdge {
                thief: 1,
                victim: 0,
                count: 3
            }
        );
        assert_eq!(
            a.steal_graph[1],
            StealEdge {
                thief: 2,
                victim: 0,
                count: 1
            }
        );
        assert!((a.failed_ratio() - 0.2).abs() < 1e-12);
        assert!((a.backoff_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn interval_histogram_buckets_log2() {
        let mut r = TraceRing::new(64);
        r.set_enabled(true);
        // Steals at t = 0, 1, 5, 1029: intervals 1 (bucket 0),
        // 4 (bucket 2), 1024 (bucket 10).
        for ts in [0u64, 1, 5, 1029] {
            r.record(EventKind::StealSuccess, ts, 0);
        }
        let a = Trace::new(vec![r.snapshot(1)], 1.0).analyze();
        assert_eq!(a.steal_interval_hist.len(), 11);
        assert_eq!(a.steal_interval_hist[0], 1);
        assert_eq!(a.steal_interval_hist[2], 1);
        assert_eq!(a.steal_interval_hist[10], 1);
    }

    #[test]
    fn utilization_counts_idle_spans() {
        let mut r = TraceRing::new(64);
        r.set_enabled(true);
        r.record(EventKind::Spawn, 0, 1);
        r.record(EventKind::Idle, 100, 0);
        r.record(EventKind::Unpark, 300, 0);
        r.record(EventKind::Spawn, 400, 1);
        // Span 0..400; idle 100..300 → busy 200/400 = 0.5.
        let a = Trace::new(vec![r.snapshot(0)], 1.0).analyze();
        assert_eq!(a.utilization.len(), 1);
        assert!((a.utilization[0].busy_fraction - 0.5).abs() < 1e-9);
        let tl = &a.utilization[0].timeline;
        assert_eq!(tl.len(), TIMELINE_BUCKETS);
        // Buckets fully inside the idle span are 0.
        assert!(tl[TIMELINE_BUCKETS / 2].abs() < 1e-9);
        assert!((tl[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trailing_idle_span_counts_to_trace_end() {
        let mut r = TraceRing::new(16);
        r.set_enabled(true);
        r.record(EventKind::Spawn, 0, 1);
        r.record(EventKind::Idle, 100, 0);
        let mut other = TraceRing::new(16);
        other.set_enabled(true);
        other.record(EventKind::Spawn, 200, 1);
        // Trace span 0..200, worker 0 idle 100..200 → busy 0.5.
        let a = Trace::new(vec![r.snapshot(0), other.snapshot(1)], 1.0).analyze();
        assert!((a.utilization[0].busy_fraction - 0.5).abs() < 1e-9);
        assert!((a.utilization[1].busy_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn analysis_json_is_valid() {
        let mut r = TraceRing::new(16);
        r.set_enabled(true);
        r.record(EventKind::StealAttempt, 1, 0);
        r.record(EventKind::StealSuccess, 2, 0);
        let a = Trace::new(vec![r.snapshot(1)], 1.0).analyze();
        let parsed = minijson::parse(&a.to_json().pretty()).unwrap();
        assert_eq!(parsed.get("steals").unwrap().as_u64(), Some(1));
    }
}
