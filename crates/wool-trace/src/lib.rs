//! # wool-trace — timeline tracing for the direct task stack scheduler
//!
//! The aggregate counters in `wool-core::Stats` say *how many* steals,
//! publishes and back-offs a run performed; this crate records *when*
//! each of them happened and *who* was involved, so the protocol can be
//! inspected on a timeline (the observability the paper's §V evaluation
//! methodology is built on).
//!
//! Design constraints, in order:
//!
//! 1. **Owner-writes-only.** Each worker records into its own
//!    [`TraceRing`], which lives inside the worker's owner-private
//!    state. Recording is two plain stores and an increment — no
//!    atomics, no sharing, no allocation. The coordinator reads the
//!    rings only after it has observed the worker's end-of-run report
//!    publication (an acquire on `report_epoch` in `wool-core`), which
//!    orders every prior plain store.
//! 2. **Fixed capacity, newest-wins.** The ring never reallocates; when
//!    it wraps, the oldest events are overwritten and counted in
//!    `dropped`. Sequence numbers stay monotone across wraps.
//! 3. **Compiled out when unused.** This crate is only linked under the
//!    `trace` cargo feature of `wool-core`; the recording macro there
//!    expands to nothing without it.
//!
//! The offline side ([`Trace`]) merges per-worker snapshots and offers
//! a Chrome/Perfetto JSON exporter ([`Trace::to_chrome_json`]) plus an
//! analysis pass ([`Trace::analyze`]) computing the steal graph,
//! steal-interval histograms and per-worker utilization timelines.

#![warn(missing_docs)]

use std::collections::BTreeMap;

use minijson::Json;

pub use minijson;

pub mod analysis;
pub mod chrome;

pub use analysis::{Analysis, StealEdge, WorkerUtilization};

/// What happened. The `arg` field of [`Event`] is kind-specific (see
/// each variant's doc).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A task was pushed onto the owner's task stack. `arg` = stack
    /// depth after the push.
    Spawn = 0,
    /// A join resolved on the private fast path (task above the public
    /// boundary; no synchronization). `arg` = stack depth.
    JoinFastPrivate = 1,
    /// A join resolved on the public fast path (atomic swap saw the
    /// task unstolen). `arg` = stack depth.
    JoinFastPublic = 2,
    /// A join found its task stolen and entered the slow path. `arg` =
    /// the thief's worker index.
    JoinSlow = 3,
    /// A steal attempt started on a victim. `arg` = victim index.
    StealAttempt = 4,
    /// A steal attempt succeeded. `arg` = victim index.
    StealSuccess = 5,
    /// A steal attempt did not acquire a task — empty victim, lost
    /// race, or back-off. `arg` = victim index.
    StealFail = 6,
    /// A steal attempt backed off after losing a race or seeing the
    /// victim's state move. `arg` = victim index.
    Backoff = 7,
    /// The owner made private tasks stealable. `arg` = number of tasks
    /// published.
    Publish = 8,
    /// A thief asked a victim with only private tasks to publish
    /// (tripped the wire). `arg` = victim index.
    PublishRequest = 9,
    /// A blocked joiner started leapfrogging: stealing back from the
    /// thief that holds its task. `arg` = the thief's worker index.
    Leapfrog = 10,
    /// The worker ran out of local work and entered the steal loop.
    /// `arg` = 0.
    Idle = 11,
    /// The worker parked (blocked) waiting for work. `arg` = 0.
    Park = 12,
    /// The worker resumed after finding work or being woken. `arg` = 0.
    Unpark = 13,
    /// A root job was pushed into the serve pool's global injector.
    /// Recorded by the *dequeuing* worker (rings are owner-writes-only)
    /// with the submission timestamp the job carried, so queueing
    /// latency is visible on the exported timeline. `arg` = job tag.
    Inject = 14,
    /// A root job was popped from the global injector by this worker.
    /// `arg` = job tag.
    Dequeue = 15,
    /// A root job ran to completion on this worker. `arg` = job tag.
    JobDone = 16,
    /// A data-parallel splitter (`wool-par`) forked a range in half.
    /// `arg` = range length (in items) before the split, saturated to
    /// `u32::MAX`.
    Split = 17,
}

impl EventKind {
    /// All kinds, in discriminant order.
    pub const ALL: [EventKind; 18] = [
        EventKind::Spawn,
        EventKind::JoinFastPrivate,
        EventKind::JoinFastPublic,
        EventKind::JoinSlow,
        EventKind::StealAttempt,
        EventKind::StealSuccess,
        EventKind::StealFail,
        EventKind::Backoff,
        EventKind::Publish,
        EventKind::PublishRequest,
        EventKind::Leapfrog,
        EventKind::Idle,
        EventKind::Park,
        EventKind::Unpark,
        EventKind::Inject,
        EventKind::Dequeue,
        EventKind::JobDone,
        EventKind::Split,
    ];

    /// Stable lowercase name used in exported JSON.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Spawn => "spawn",
            EventKind::JoinFastPrivate => "join_fast_private",
            EventKind::JoinFastPublic => "join_fast_public",
            EventKind::JoinSlow => "join_slow",
            EventKind::StealAttempt => "steal_attempt",
            EventKind::StealSuccess => "steal_success",
            EventKind::StealFail => "steal_fail",
            EventKind::Backoff => "backoff",
            EventKind::Publish => "publish",
            EventKind::PublishRequest => "publish_request",
            EventKind::Leapfrog => "leapfrog",
            EventKind::Idle => "idle",
            EventKind::Park => "park",
            EventKind::Unpark => "unpark",
            EventKind::Inject => "inject",
            EventKind::Dequeue => "dequeue",
            EventKind::JobDone => "job_done",
            EventKind::Split => "split",
        }
    }

    /// Whether `arg` names another worker (victim or thief).
    pub fn arg_is_worker(self) -> bool {
        matches!(
            self,
            EventKind::JoinSlow
                | EventKind::StealAttempt
                | EventKind::StealSuccess
                | EventKind::StealFail
                | EventKind::Backoff
                | EventKind::PublishRequest
                | EventKind::Leapfrog
        )
    }
}

/// One recorded scheduler event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Per-worker sequence number, monotone from 0, never reset by
    /// wraparound.
    pub seq: u64,
    /// Timestamp in CPU cycles (the scheduler's `cycles::now()`).
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific argument (victim/thief index, depth, count).
    pub arg: u32,
}

/// A fixed-capacity, owner-writes-only ring of [`Event`]s.
///
/// Not `Sync` and not meant to be: exactly one thread writes, and
/// readers take a [`snapshot`](TraceRing::snapshot) only after an
/// external happens-before edge (the worker's report publication).
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<Event>,
    /// Next sequence number == total events ever recorded.
    seq: u64,
    /// Recording gate; when false, [`TraceRing::record`] is a no-op.
    enabled: bool,
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (rounded up to
    /// 1). Recording starts disabled.
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            buf: Vec::with_capacity(capacity.max(1)),
            seq: 0,
            enabled: false,
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Turns recording on or off.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Forgets all recorded events and restarts sequence numbers.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.seq = 0;
    }

    /// Records one event. Owner thread only; two stores and an add on
    /// the hot path, no allocation after the ring has filled once.
    #[inline]
    pub fn record(&mut self, kind: EventKind, ts: u64, arg: u32) {
        if !self.enabled {
            return;
        }
        let ev = Event {
            seq: self.seq,
            ts,
            kind,
            arg,
        };
        if self.buf.len() < self.buf.capacity() {
            self.buf.push(ev);
        } else {
            let cap = self.buf.capacity() as u64;
            let idx = (self.seq % cap) as usize;
            self.buf[idx] = ev;
        }
        self.seq += 1;
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events lost to wraparound.
    pub fn dropped(&self) -> u64 {
        self.seq - self.buf.len() as u64
    }

    /// Copies the retained events out, oldest first, tagged with the
    /// recording worker's index.
    pub fn snapshot(&self, worker: usize) -> WorkerTrace {
        let mut events = self.buf.clone();
        // After wraparound the vector is rotated; seq order restores
        // chronological order.
        events.sort_by_key(|e| e.seq);
        WorkerTrace {
            worker,
            events,
            dropped: self.dropped(),
        }
    }
}

/// The retained events of one worker.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker index.
    pub worker: usize,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring wraparound.
    pub dropped: u64,
}

/// A merged multi-worker trace, plus the cycle-to-nanosecond scale
/// needed to export wall-clock timestamps.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-worker snapshots, indexed by worker.
    pub workers: Vec<WorkerTrace>,
    /// CPU cycles per nanosecond (from the scheduler's calibration).
    pub ticks_per_ns: f64,
}

impl Trace {
    /// Merges per-worker snapshots. `ticks_per_ns` converts event
    /// timestamps to wall-clock time on export.
    pub fn new(workers: Vec<WorkerTrace>, ticks_per_ns: f64) -> Self {
        Trace {
            workers,
            ticks_per_ns,
        }
    }

    /// Total retained events across workers.
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// Whether no events were retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to wraparound across workers.
    pub fn dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// The earliest timestamp in the trace, used as the zero point on
    /// export.
    pub fn epoch(&self) -> Option<u64> {
        self.workers
            .iter()
            .flat_map(|w| w.events.iter().map(|e| e.ts))
            .min()
    }

    /// Counts retained events per kind.
    pub fn counts(&self) -> BTreeMap<&'static str, u64> {
        let mut m = BTreeMap::new();
        for w in &self.workers {
            for e in &w.events {
                *m.entry(e.kind.name()).or_insert(0) += 1;
            }
        }
        m
    }

    /// Counts retained events of one kind.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.workers
            .iter()
            .flat_map(|w| w.events.iter())
            .filter(|e| e.kind == kind)
            .count() as u64
    }

    /// Exports the Chrome/Perfetto trace-event document. See
    /// [`chrome::to_chrome_json`].
    pub fn to_chrome_json(&self) -> Json {
        chrome::to_chrome_json(self)
    }

    /// Runs the offline analysis pass. See [`analysis`].
    pub fn analyze(&self) -> Analysis {
        analysis::analyze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled_ring(cap: usize, n: u64) -> TraceRing {
        let mut r = TraceRing::new(cap);
        r.set_enabled(true);
        for i in 0..n {
            r.record(EventKind::Spawn, 1000 + i, i as u32);
        }
        r
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut r = TraceRing::new(8);
        r.record(EventKind::Spawn, 1, 0);
        assert_eq!(r.recorded(), 0);
        assert!(r.snapshot(0).events.is_empty());
    }

    #[test]
    fn fills_without_dropping_below_capacity() {
        let r = filled_ring(8, 5);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 0);
        let snap = r.snapshot(3);
        assert_eq!(snap.worker, 3);
        assert_eq!(snap.events.len(), 5);
        assert!(snap.events.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
    }

    #[test]
    fn wraparound_keeps_newest_and_monotone_seq() {
        let r = filled_ring(8, 21);
        assert_eq!(r.recorded(), 21);
        assert_eq!(r.dropped(), 21 - 8);
        let snap = r.snapshot(0);
        assert_eq!(snap.events.len(), 8);
        // Newest 8 events survive: seqs 13..=20, in order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<_>>());
        // Payloads moved with them.
        assert!(snap.events.iter().all(|e| e.arg as u64 == e.seq));
        assert!(snap.events.iter().all(|e| e.ts == 1000 + e.seq));
    }

    #[test]
    fn clear_resets_seq() {
        let mut r = filled_ring(4, 10);
        r.clear();
        assert_eq!(r.recorded(), 0);
        assert_eq!(r.dropped(), 0);
        r.record(EventKind::Idle, 5, 0);
        assert_eq!(r.snapshot(0).events[0].seq, 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let r = filled_ring(0, 3);
        assert_eq!(r.capacity(), 1);
        let snap = r.snapshot(0);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].seq, 2);
        assert_eq!(snap.dropped, 2);
    }

    /// Randomized wraparound check: for arbitrary capacities and event
    /// counts the snapshot is exactly the newest `min(n, cap)` events
    /// with strictly monotone sequence numbers. (Deterministic
    /// xorshift64* exploration instead of an external proptest dep.)
    #[test]
    fn randomized_wraparound() {
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        for _ in 0..200 {
            let cap = (rng() % 33) as usize; // 0..=32, incl. clamp case
            let n = rng() % 100;
            let r = filled_ring(cap, n);
            let snap = r.snapshot(0);
            let kept = n.min(cap.max(1) as u64);
            assert_eq!(snap.events.len() as u64, kept, "cap={cap} n={n}");
            assert_eq!(snap.dropped, n - kept);
            for (i, e) in snap.events.iter().enumerate() {
                assert_eq!(e.seq, n - kept + i as u64, "cap={cap} n={n}");
            }
        }
    }

    #[test]
    fn trace_counts_and_epoch() {
        let mut a = TraceRing::new(16);
        a.set_enabled(true);
        a.record(EventKind::StealSuccess, 50, 1);
        a.record(EventKind::StealFail, 60, 1);
        let mut b = TraceRing::new(16);
        b.set_enabled(true);
        b.record(EventKind::StealSuccess, 40, 0);
        let t = Trace::new(vec![a.snapshot(0), b.snapshot(1)], 1.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.epoch(), Some(40));
        assert_eq!(t.count(EventKind::StealSuccess), 2);
        assert_eq!(t.counts()["steal_fail"], 1);
    }
}
