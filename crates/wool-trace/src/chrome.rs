//! Chrome trace-event (a.k.a. `chrome://tracing` / Perfetto) export.
//!
//! Emits the JSON object form of the [Trace Event Format]: a top-level
//! object with a `traceEvents` array. Every scheduler event becomes an
//! instant event (`ph: "i"`) on the recording worker's thread lane, and
//! idle periods (from an `idle`/`park` event to the next `unpark` or
//! `steal_success` on the same worker) additionally become duration
//! events (`ph: "X"`) so stalls are visible as solid blocks on the
//! timeline. Timestamps are microseconds relative to the earliest event
//! in the trace.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use minijson::Json;

use crate::{EventKind, Trace};

/// Builds the Chrome trace document for `trace`.
pub fn to_chrome_json(trace: &Trace) -> Json {
    let epoch = trace.epoch().unwrap_or(0);
    // Guard against an uncalibrated (zero) scale.
    let ticks_per_us = (trace.ticks_per_ns * 1e3).max(1e-9);
    let us = |ts: u64| (ts - epoch) as f64 / ticks_per_us;

    let mut events = Vec::new();
    for w in &trace.workers {
        // Thread-name metadata so Perfetto labels the lanes.
        events.push(Json::Obj(vec![
            ("name".into(), Json::Str("thread_name".into())),
            ("ph".into(), Json::Str("M".into())),
            ("pid".into(), Json::Num(0.0)),
            ("tid".into(), Json::Num(w.worker as f64)),
            (
                "args".into(),
                Json::Obj(vec![(
                    "name".into(),
                    Json::Str(format!("worker {}", w.worker)),
                )]),
            ),
        ]));

        let mut idle_since: Option<u64> = None;
        for e in &w.events {
            match e.kind {
                EventKind::Idle | EventKind::Park => {
                    idle_since.get_or_insert(e.ts);
                }
                EventKind::Unpark | EventKind::StealSuccess | EventKind::Dequeue => {
                    if let Some(start) = idle_since.take() {
                        events.push(duration_event("idle", w.worker, us(start), us(e.ts)));
                    }
                }
                _ => {}
            }
            events.push(instant_event(e, w.worker, us(e.ts)));
        }
        // An idle span still open at the end of the trace is closed at
        // the worker's last timestamp so it remains visible.
        if let (Some(start), Some(last)) = (idle_since, w.events.last()) {
            if last.ts > start {
                events.push(duration_event("idle", w.worker, us(start), us(last.ts)));
            }
        }
    }

    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::Str("ns".into())),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("ticks_per_ns".into(), Json::Num(trace.ticks_per_ns)),
                ("dropped_events".into(), Json::Num(trace.dropped() as f64)),
            ]),
        ),
    ])
}

fn instant_event(e: &crate::Event, worker: usize, ts_us: f64) -> Json {
    let mut args = vec![("seq".into(), Json::Num(e.seq as f64))];
    if e.kind.arg_is_worker() {
        args.push(("peer".into(), Json::Num(e.arg as f64)));
    } else if e.arg != 0 {
        args.push(("arg".into(), Json::Num(e.arg as f64)));
    }
    Json::Obj(vec![
        ("name".into(), Json::Str(e.kind.name().into())),
        ("cat".into(), Json::Str(category(e.kind).into())),
        ("ph".into(), Json::Str("i".into())),
        ("s".into(), Json::Str("t".into())), // thread-scoped instant
        ("ts".into(), Json::Num(ts_us)),
        ("pid".into(), Json::Num(0.0)),
        ("tid".into(), Json::Num(worker as f64)),
        ("args".into(), Json::Obj(args)),
    ])
}

fn duration_event(name: &str, worker: usize, start_us: f64, end_us: f64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(name.into())),
        ("cat".into(), Json::Str("state".into())),
        ("ph".into(), Json::Str("X".into())),
        ("ts".into(), Json::Num(start_us)),
        ("dur".into(), Json::Num((end_us - start_us).max(0.0))),
        ("pid".into(), Json::Num(0.0)),
        ("tid".into(), Json::Num(worker as f64)),
    ])
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Spawn
        | EventKind::JoinFastPrivate
        | EventKind::JoinFastPublic
        | EventKind::JoinSlow
        | EventKind::Split => "task",
        EventKind::StealAttempt
        | EventKind::StealSuccess
        | EventKind::StealFail
        | EventKind::Backoff
        | EventKind::Leapfrog => "steal",
        EventKind::Publish | EventKind::PublishRequest => "publish",
        EventKind::Idle | EventKind::Park | EventKind::Unpark => "state",
        EventKind::Inject | EventKind::Dequeue | EventKind::JobDone => "serve",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceRing;

    fn sample_trace() -> Trace {
        let mut r0 = TraceRing::new(32);
        r0.set_enabled(true);
        r0.record(EventKind::Spawn, 100, 1);
        r0.record(EventKind::Idle, 200, 0);
        r0.record(EventKind::StealAttempt, 250, 1);
        r0.record(EventKind::StealSuccess, 300, 1);
        r0.record(EventKind::JoinFastPrivate, 400, 1);
        let mut r1 = TraceRing::new(32);
        r1.set_enabled(true);
        r1.record(EventKind::Publish, 150, 2);
        Trace::new(vec![r0.snapshot(0), r1.snapshot(1)], 2.0)
    }

    #[test]
    fn document_shape_is_valid_and_reparses() {
        let doc = sample_trace().to_chrome_json();
        let text = doc.pretty();
        let parsed = minijson::parse(&text).expect("valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        // 6 instants + 2 thread_name metadata + 1 idle duration.
        assert_eq!(events.len(), 9);
        for ev in events {
            assert!(ev.get("ph").is_some());
            assert!(ev.get("pid").is_some());
            assert!(ev.get("tid").is_some());
        }
    }

    #[test]
    fn timestamps_are_relative_microseconds() {
        let doc = sample_trace().to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // Epoch is ts=100 cycles at 2 ticks/ns = 2000 ticks/us. The
        // spawn at cycle 100 exports as ts 0; publish at 150 as 0.025us.
        let spawn = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("spawn"))
            .unwrap();
        assert_eq!(spawn.get("ts").unwrap().as_f64(), Some(0.0));
        let publish = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("publish"))
            .unwrap();
        assert!((publish.get("ts").unwrap().as_f64().unwrap() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn idle_span_closed_by_steal_success() {
        let doc = sample_trace().to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let idle = events
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("X")
                    && e.get("name").and_then(Json::as_str) == Some("idle")
            })
            .expect("idle duration event");
        // Idle from cycle 200 to 300 = 100 cycles = 0.05us at 2t/ns.
        assert!((idle.get("dur").unwrap().as_f64().unwrap() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn steal_events_carry_peer() {
        let doc = sample_trace().to_chrome_json();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let steal = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("steal_success"))
            .unwrap();
        assert_eq!(
            steal.get("args").unwrap().get("peer").unwrap().as_u64(),
            Some(1)
        );
    }
}
