//! # ws-baseline — comparison schedulers for the Wool reproduction
//!
//! The Wool paper (Faxén, ICPP 2010) evaluates its direct task stack
//! against Cilk++ 4.3.4, Intel TBB 2.1 and icc's OpenMP 3.0 runtime.
//! Those systems are unavailable (and not Rust), so this crate rebuilds
//! schedulers embodying the *mechanisms* the paper attributes to them:
//!
//! * [`TbbLikePool`] — child stealing with **heap-allocated task
//!   objects** and a **Chase–Lev pointer deque** whose owner pop pays a
//!   sequentially-consistent fence (the Dijkstra-protocol cost family
//!   the paper discusses in §III-A).
//! * [`CilkLikePool`] — the same heap task frames behind a **mutex-
//!   protected deque**: owner pushes/pops and thief steals all take the
//!   victim's lock, reproducing the "extensive locking" the paper
//!   identifies as the source of Cilk++'s high steal cost.
//! * [`OmpLikePool`] — the locked pool plus a **global steal lock**,
//!   standing in for the more centralized icc OpenMP runtime.
//! * [`CentralPool`] — a single global task queue shared by all
//!   workers (the software analogue of the Carbon design point the
//!   paper discusses in §I).
//! * [`SerialExecutor`] — the no-overhead sequential baseline (`T_S`).
//!
//! All of them implement `wool_core::{Fork, Executor}`, so the
//! `workloads` crate runs identical programs on every system.
//!
//! See DESIGN.md §3 for the substitution argument and its limits.

#![warn(missing_docs)]

pub mod central;
pub mod node;
pub mod npool;
pub mod queues;
pub mod serial;

pub use central::{CentralCtx, CentralPool};
pub use npool::{NodeCtx, NodePool, NodePoolConfig};
pub use queues::{protocol, ChaseLevQueue, LockedQueue, NodeQueue};
pub use serial::{SerialCtx, SerialExecutor};

/// TBB-like scheduler: Chase–Lev deque of boxed task pointers.
pub type TbbLikePool = NodePool<ChaseLevQueue>;

/// Cilk++-like scheduler: per-worker locked deque of boxed tasks.
pub type CilkLikePool = NodePool<LockedQueue<{ protocol::BASE }>>;

/// OpenMP-like scheduler: locked deques plus a global steal lock.
pub type OmpLikePool = NodePool<LockedQueue<{ protocol::BASE }>>;

/// Creates a TBB-like pool with `workers` workers.
pub fn tbb_like(workers: usize) -> TbbLikePool {
    NodePool::with_config(NodePoolConfig {
        workers,
        global_steal_lock: false,
        name: "tbb-like",
    })
}

/// Creates a Cilk++-like pool with `workers` workers.
pub fn cilk_like(workers: usize) -> CilkLikePool {
    NodePool::with_config(NodePoolConfig {
        workers,
        global_steal_lock: false,
        name: "cilk-like",
    })
}

/// Creates an OpenMP-like pool with `workers` workers.
pub fn omp_like(workers: usize) -> OmpLikePool {
    NodePool::with_config(NodePoolConfig {
        workers,
        global_steal_lock: true,
        name: "omp-like",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wool_core::Fork;

    fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    fn fib_ref(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_ref(n - 1) + fib_ref(n - 2)
        }
    }

    #[test]
    fn tbb_like_fib_single() {
        let mut p = tbb_like(1);
        assert_eq!(p.run(|c| fib(c, 18)), fib_ref(18));
    }

    #[test]
    fn tbb_like_fib_multi() {
        let mut p = tbb_like(4);
        assert_eq!(p.run(|c| fib(c, 21)), fib_ref(21));
    }

    #[test]
    fn cilk_like_fib() {
        let mut p = cilk_like(3);
        assert_eq!(p.run(|c| fib(c, 20)), fib_ref(20));
    }

    #[test]
    fn omp_like_fib() {
        let mut p = omp_like(3);
        assert_eq!(p.run(|c| fib(c, 20)), fib_ref(20));
    }

    #[test]
    fn repeated_regions() {
        let mut p = tbb_like(2);
        for _ in 0..30 {
            assert_eq!(p.run(|c| fib(c, 12)), 144);
        }
    }

    #[test]
    fn for_each_spawn_all_pools() {
        use std::sync::atomic::{AtomicU64, Ordering};
        fn check<Q: crate::queues::NodeQueue>(mut p: NodePool<Q>) {
            let hits: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
            p.run(|c| {
                c.for_each_spawn(64, &|_c, i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
        check(tbb_like(3));
        check(cilk_like(3));
        check(omp_like(3));
    }

    #[test]
    fn stats_accumulate() {
        let mut p = tbb_like(1);
        p.reset_stats();
        p.run(|c| fib(c, 15));
        let s = p.stats();
        assert!(s.spawns > 500, "spawns = {}", s.spawns);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let mut p = tbb_like(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.run(|c| {
                let ((), ()) = c.fork(|_| {}, |_| panic!("boom"));
            })
        }));
        assert!(r.is_err());
        assert_eq!(p.run(|c| fib(c, 10)), 55);
    }

    #[test]
    fn panic_in_call_branch_cleans_up() {
        let mut p = tbb_like(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.run(|c| {
                let (_, _): ((), u64) = c.fork(|_| panic!("call branch"), |_| 42u64);
            })
        }));
        assert!(r.is_err());
        assert_eq!(p.run(|c| fib(c, 10)), 55);
    }

    #[test]
    fn nested_for_each_mixed_with_fork() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut p = tbb_like(3);
        let total = AtomicU64::new(0);
        p.run(|c| {
            c.for_each_spawn(8, &|c, i| {
                let (x, y) = c.fork(|c| fib(c, 10), |_| i as u64);
                total.fetch_add(x + y, Ordering::Relaxed);
            });
        });
        // 8 * fib(10) + sum(0..8)
        assert_eq!(total.load(Ordering::Relaxed), 8 * 55 + 28);
    }
}
