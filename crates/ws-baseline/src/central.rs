//! A central-queue scheduler: the software analogue of Carbon.
//!
//! The Wool paper's related work (§I) discusses Carbon (Kumar et al.,
//! ISCA 2007), which "collect[s] all of the work queues in a central
//! location; the cores have to get and put tasks there". This module
//! provides the software version of that design point: **one** global
//! task pool shared by all workers, protected by a single lock. It
//! completes the repository's spectrum of task-pool organizations:
//!
//! ```text
//! wool-core   per-worker stacks, synchronization on the descriptor
//! tbb-like    per-worker Chase–Lev deques (fences)
//! cilk-like   per-worker locked deques
//! omp-like    per-worker locked deques + global steal lock
//! central     one global locked deque            <- this module
//! ```
//!
//! Without hardware support, every spawn and join crosses the global
//! lock, so this scheduler exhibits the contention Carbon's dedicated
//! hardware was designed to eliminate — which is precisely the
//! interesting measurement.
//!
//! Joins use **helping**: a worker whose awaited task is buried in (or
//! taken from) the global pool pops and executes *other* tasks until
//! its own completes, so progress is always made.

use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::thread::JoinHandle;

use wool_core::{Executor, Fork, Job, Stats};
use ws_deque::LockedDeque;

use crate::node::{
    alloc_node, is_done, take_body_and_free, take_panic_and_free, take_result_and_free,
    ClosureBody, ForEachBody, NodeBody, TaskHeader, DONE, DONE_PANIC, STOLEN_BASE,
};

/// Pointer wrapper for deque storage (ownership handled by the node
/// protocol).
struct Ptr(*mut TaskHeader);
// SAFETY: the node protocol serializes all accesses to the pointee.
unsafe impl Send for Ptr {}

/// Shared state of the central pool.
struct CentralInner {
    /// The single, global task pool (the "centralized queue").
    queue: LockedDeque<Ptr>,
    /// Total worker count (for `Fork::num_workers`).
    workers: usize,
    active: AtomicBool,
    shutdown: AtomicBool,
    spawns: AtomicU64,
    executed: AtomicU64,
    helped: AtomicU64,
}

/// A scheduler with one global task queue shared by all workers.
pub struct CentralPool {
    inner: Arc<CentralInner>,
    threads: Vec<JoinHandle<()>>,
    workers: usize,
}

impl CentralPool {
    /// Creates a pool with `workers` workers (including the `run`
    /// caller).
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1);
        let inner = Arc::new(CentralInner {
            queue: LockedDeque::new(),
            workers,
            active: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            spawns: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            helped: AtomicU64::new(0),
        });
        let threads = (1..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("central-{i}"))
                    .spawn(move || background_loop(inner, i))
                    .expect("spawn worker")
            })
            .collect();
        CentralPool {
            inner,
            threads,
            workers,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` as the root of a parallel region.
    pub fn run<R, F>(&mut self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&mut CentralCtx) -> R + Send,
    {
        let inner = &*self.inner;
        inner.active.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }
        // SAFETY: pool outlives ctx; `&mut self` means one region at a
        // time and this thread is the unique worker 0.
        let mut ctx = unsafe { CentralCtx::new(inner, 0) };
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
        inner.active.store(false, Release);
        match r {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Cumulative statistics (spawns; executions; helped executions
    /// folded into `leap_steals` for uniform reporting).
    pub fn stats(&self) -> Stats {
        Stats {
            spawns: self.inner.spawns.load(Relaxed),
            steals: self.inner.executed.load(Relaxed),
            leap_steals: self.inner.helped.load(Relaxed),
            ..Stats::default()
        }
    }

    /// Zeroes the counters.
    pub fn reset_stats(&mut self) {
        self.inner.spawns.store(0, Relaxed);
        self.inner.executed.store(0, Relaxed);
        self.inner.helped.store(0, Relaxed);
    }
}

impl Drop for CentralPool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Executor for CentralPool {
    fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R {
        self.run(move |c| job.call(c))
    }
    fn workers(&self) -> usize {
        self.workers
    }
    fn name(&self) -> String {
        "central".into()
    }
}

/// Execution context of a central-pool worker.
pub struct CentralCtx {
    inner: *const CentralInner,
    idx: usize,
    _not_send: PhantomData<*mut ()>,
}

impl CentralCtx {
    /// # Safety
    /// `inner` must outlive the context; one context per worker thread.
    unsafe fn new(inner: &CentralInner, idx: usize) -> Self {
        CentralCtx {
            inner,
            idx,
            _not_send: PhantomData,
        }
    }

    #[inline(always)]
    fn inner<'a>(&self) -> &'a CentralInner {
        // SAFETY: constructor contract.
        unsafe { &*self.inner }
    }

    /// Executes an arbitrary task taken from the global pool.
    fn execute(&mut self, hdr: *mut TaskHeader, helped: bool) {
        let inner = self.inner();
        inner.executed.fetch_add(1, Relaxed);
        if helped {
            inner.helped.fetch_add(1, Relaxed);
        }
        // SAFETY: we own the node between pop/steal and DONE.
        unsafe {
            (*hdr).state.store(STOLEN_BASE + self.idx, Release);
            let ok = ((*hdr).exec)(hdr, self as *mut Self as *mut ());
            (*hdr)
                .state
                .store(if ok { DONE } else { DONE_PANIC }, Release);
        }
    }

    /// Joins `expected`, helping with other tasks while it is pending.
    ///
    /// # Safety
    /// `expected` must be a node this worker pushed and not yet joined,
    /// with body type `B`.
    unsafe fn join_node<B: NodeBody<Self>>(&mut self, expected: *mut TaskHeader) -> B::Output {
        let inner = self.inner();
        let mut idle = 0u32;
        loop {
            let s = (*expected).state.load(Acquire);
            if is_done(s) {
                if s == DONE {
                    return take_result_and_free::<B, Self>(expected);
                }
                let p = take_panic_and_free::<B, Self>(expected);
                std::panic::resume_unwind(p);
            }
            // Not done: either still queued or being executed. Help.
            match inner.queue.pop().map(|p| p.0) {
                Some(ptr) if ptr == expected => {
                    // Nobody took it: run inline.
                    let body = take_body_and_free::<B, Self>(ptr);
                    return body.run(self);
                }
                Some(ptr) => {
                    // Someone else's task: execute it (helping).
                    self.execute(ptr, true);
                    idle = 0;
                }
                None => {
                    idle += 1;
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

impl Fork for CentralCtx {
    fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let hdr = alloc_node::<ClosureBody<FB>, Self>(ClosureBody(b));
        let inner = self.inner();
        inner.spawns.fetch_add(1, Relaxed);
        inner.queue.push(Ptr(hdr));

        let guard = CentralJoinGuard::<ClosureBody<FB>> {
            ctx: self as *mut Self,
            hdr,
            _marker: PhantomData,
        };
        let ra = a(self);
        std::mem::forget(guard);
        // SAFETY: hdr is our pending push of this body type.
        let rb = unsafe { self.join_node::<ClosureBody<FB>>(hdr) };
        (ra, rb)
    }

    fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let inner = self.inner();
        let mut pending = Vec::with_capacity(n - 1);
        for i in 1..n {
            let hdr = alloc_node::<ForEachBody<'_, F>, Self>(ForEachBody { body, i });
            inner.spawns.fetch_add(1, Relaxed);
            inner.queue.push(Ptr(hdr));
            pending.push(hdr);
        }
        body(self, 0);
        while let Some(hdr) = pending.pop() {
            // SAFETY: our pending pushes, LIFO order, uniform body type.
            unsafe { self.join_node::<ForEachBody<'_, F>>(hdr) };
        }
    }

    fn worker_index(&self) -> usize {
        self.idx
    }

    fn num_workers(&self) -> usize {
        self.inner().workers
    }
}

/// Unwind guard: joins (discarding) the pending node.
struct CentralJoinGuard<B: NodeBody<CentralCtx>> {
    ctx: *mut CentralCtx,
    hdr: *mut TaskHeader,
    _marker: PhantomData<fn() -> B>,
}

impl<B: NodeBody<CentralCtx>> Drop for CentralJoinGuard<B> {
    fn drop(&mut self) {
        // SAFETY: ctx outlives the guard; hdr is the matching pending
        // push of body type B.
        unsafe {
            let _ = (*self.ctx).join_node::<B>(self.hdr);
        }
    }
}

/// Background worker loop: take tasks from the global pool.
fn background_loop(inner: Arc<CentralInner>, idx: usize) {
    // SAFETY: pool (via Arc) outlives the loop; unique worker idx.
    let mut ctx = unsafe { CentralCtx::new(&inner, idx) };
    let mut idle = 0u32;
    loop {
        if inner.shutdown.load(Acquire) {
            break;
        }
        if inner.active.load(Acquire) {
            // Take from the front (oldest = biggest subtrees).
            match inner.queue.steal(ws_deque::StealProtocol::Base).success() {
                Some(p) => {
                    ctx.execute(p.0, false);
                    idle = 0;
                }
                None => {
                    idle += 1;
                    if idle < 32 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        } else {
            idle += 1;
            if idle < 64 {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(200));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    #[test]
    fn fib_single_worker() {
        let mut p = CentralPool::new(1);
        assert_eq!(p.run(|c| fib(c, 18)), 2584);
    }

    #[test]
    fn fib_multi_worker() {
        let mut p = CentralPool::new(4);
        assert_eq!(p.run(|c| fib(c, 20)), 6765);
        assert!(p.stats().spawns > 5000);
    }

    #[test]
    fn for_each_covers_indices() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut p = CentralPool::new(3);
        let hits: Vec<AtomicU64> = (0..50).map(|_| AtomicU64::new(0)).collect();
        p.run(|c| {
            c.for_each_spawn(50, &|_c, i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn panic_propagates() {
        let mut p = CentralPool::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            p.run(|c| {
                let ((), ()) = c.fork(|_| {}, |_| panic!("central boom"));
            })
        }));
        assert!(r.is_err());
        assert_eq!(p.run(|c| fib(c, 10)), 55);
    }

    #[test]
    fn repeated_regions() {
        let mut p = CentralPool::new(2);
        for _ in 0..20 {
            assert_eq!(p.run(|c| fib(c, 12)), 144);
        }
    }
}
