//! The generic baseline scheduler: heap task nodes over a pluggable
//! work-stealing queue.
//!
//! Instantiated with [`crate::queues::ChaseLevQueue`] it stands in for
//! **TBB** (child stealing, pointer deque with fence-synchronized owner
//! pops, heap task objects); with [`crate::queues::LockedQueue`] it
//! stands in for **Cilk++**'s heavyweight locked stealing path, and with
//! the additional global steal lock for **icc OpenMP**'s centralized
//! behavior (see DESIGN.md §3 for the substitution argument).
//!
//! The region protocol (active flag, caller-as-worker-0) matches
//! `wool_core::Pool` so that all systems see identical workloads.

use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::Arc;
use std::thread::JoinHandle;

use wool_core::spinlock::SpinLock;
use wool_core::{Executor, Fork, Job, Stats};

use crate::node::{
    alloc_node, is_done, take_body_and_free, take_panic_and_free, take_result_and_free,
    ClosureBody, Fate, ForEachBody, NodeBody, TaskHeader, DONE, DONE_PANIC, PENDING, STOLEN_BASE,
};
use crate::queues::NodeQueue;

/// Per-worker scheduler counters (atomics: written by the owning worker,
/// read by the coordinator at any time).
#[derive(Debug, Default)]
pub struct NodeStats {
    /// Tasks spawned.
    pub spawns: AtomicU64,
    /// Successful steals.
    pub steals: AtomicU64,
    /// Successful steals while leap-frogging.
    pub leap_steals: AtomicU64,
    /// Steal attempts that found nothing.
    pub failed_steals: AtomicU64,
    /// Joins that found their task stolen.
    pub stolen_joins: AtomicU64,
}

/// One baseline worker.
struct NodeWorker<Q: NodeQueue> {
    queue: Q,
    stats: NodeStats,
    /// xorshift64* state for victim selection (owner-only).
    rng: UnsafeCell<u64>,
}

// SAFETY: `rng` is only touched by the owning worker thread; everything
// else is atomics or the queue (which carries its own Sync obligations).
unsafe impl<Q: NodeQueue> Sync for NodeWorker<Q> {}
unsafe impl<Q: NodeQueue> Send for NodeWorker<Q> {}

/// Shared pool state.
struct NodePoolInner<Q: NodeQueue> {
    workers: Box<[NodeWorker<Q>]>,
    active: AtomicBool,
    shutdown: AtomicBool,
    /// Optional global lock serializing all steals (the OpenMP-like
    /// configuration).
    global_steal_lock: Option<SpinLock>,
}

/// Configuration of a baseline pool.
#[derive(Debug, Clone)]
pub struct NodePoolConfig {
    /// Total workers, including the `run` caller.
    pub workers: usize,
    /// Serialize all steals through one global lock (OpenMP-like).
    pub global_steal_lock: bool,
    /// Display name for reports.
    pub name: &'static str,
}

/// A baseline work-stealing pool over queue type `Q`.
pub struct NodePool<Q: NodeQueue> {
    inner: Arc<NodePoolInner<Q>>,
    threads: Vec<JoinHandle<()>>,
    name: &'static str,
}

impl<Q: NodeQueue> NodePool<Q> {
    /// Creates a pool with `workers` workers (>= 1).
    pub fn with_config(cfg: NodePoolConfig) -> Self {
        assert!(cfg.workers >= 1, "a pool needs at least one worker");
        let workers: Box<[NodeWorker<Q>]> = (0..cfg.workers)
            .map(|i| NodeWorker {
                queue: Q::new(),
                stats: NodeStats::default(),
                rng: UnsafeCell::new(0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1) | 1),
            })
            .collect();
        let inner = Arc::new(NodePoolInner {
            workers,
            active: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
            global_steal_lock: cfg.global_steal_lock.then(SpinLock::new),
        });
        let threads = (1..cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("{}-{}", cfg.name, i))
                    .spawn(move || background_loop(inner, i))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        NodePool {
            inner,
            threads,
            name: cfg.name,
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.inner.workers.len()
    }

    /// Runs `f` as the root of a parallel region; the caller becomes
    /// worker 0.
    pub fn run<R, F>(&mut self, f: F) -> R
    where
        R: Send,
        F: FnOnce(&mut NodeCtx<Q>) -> R + Send,
    {
        let inner = &*self.inner;
        inner.active.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }
        // SAFETY: the pool outlives the context; this thread is the
        // unique worker 0 while `run` executes (`&mut self`).
        let mut ctx = unsafe { NodeCtx::new(inner, 0) };
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| f(&mut ctx)));
        inner.active.store(false, Release);
        match result {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Aggregated scheduler statistics since construction (or the last
    /// [`reset_stats`](NodePool::reset_stats)).
    pub fn stats(&self) -> Stats {
        let mut total = Stats::default();
        for w in self.inner.workers.iter() {
            total.spawns += w.stats.spawns.load(Relaxed);
            total.steals += w.stats.steals.load(Relaxed);
            total.leap_steals += w.stats.leap_steals.load(Relaxed);
            total.failed_steals += w.stats.failed_steals.load(Relaxed);
            total.stolen_joins += w.stats.stolen_joins.load(Relaxed);
        }
        total
    }

    /// Zeroes all statistics counters.
    pub fn reset_stats(&mut self) {
        for w in self.inner.workers.iter() {
            w.stats.spawns.store(0, Relaxed);
            w.stats.steals.store(0, Relaxed);
            w.stats.leap_steals.store(0, Relaxed);
            w.stats.failed_steals.store(0, Relaxed);
            w.stats.stolen_joins.store(0, Relaxed);
        }
    }
}

impl<Q: NodeQueue> Drop for NodePool<Q> {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Release);
        for t in &self.threads {
            t.thread().unpark();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl<Q: NodeQueue> Executor for NodePool<Q> {
    fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R {
        self.run(move |ctx| job.call(ctx))
    }

    fn workers(&self) -> usize {
        NodePool::workers(self)
    }

    fn name(&self) -> String {
        self.name.to_string()
    }
}

/// The fork-join context of a baseline worker.
pub struct NodeCtx<Q: NodeQueue> {
    inner: *const NodePoolInner<Q>,
    idx: usize,
    _not_send: PhantomData<*mut ()>,
}

impl<Q: NodeQueue> NodeCtx<Q> {
    /// # Safety
    /// `inner` must outlive the context; the calling thread must be the
    /// unique worker `idx` while the context exists.
    unsafe fn new(inner: &NodePoolInner<Q>, idx: usize) -> Self {
        NodeCtx {
            inner,
            idx,
            _not_send: PhantomData,
        }
    }

    #[inline(always)]
    fn inner<'a>(&self) -> &'a NodePoolInner<Q> {
        // SAFETY: constructor contract.
        unsafe { &*self.inner }
    }

    #[inline(always)]
    fn me<'a>(&self) -> &'a NodeWorker<Q> {
        &self.inner().workers[self.idx]
    }

    /// Joins the node most recently pushed by this worker.
    ///
    /// # Safety
    /// `expected` must be the header of the most recent un-joined push
    /// of this worker, of body type `B`.
    unsafe fn join_node<B: NodeBody<Self>>(&mut self, expected: *mut TaskHeader) -> B::Output {
        // SAFETY(owner-pop): this thread is the queue's unique owner.
        if let Some(ptr) = self.me().queue.pop() {
            debug_assert_eq!(ptr, expected, "LIFO discipline violated");
            let body = take_body_and_free::<B, Self>(ptr);
            return body.run(self);
        }
        // The node was (or is being) stolen.
        self.me().stats.stolen_joins.fetch_add(1, Relaxed);
        let hdr = &*expected;
        let mut idle = 0u32;
        loop {
            let s = hdr.state.load(Acquire);
            if is_done(s) {
                if s == DONE {
                    return take_result_and_free::<B, Self>(expected);
                }
                let p = take_panic_and_free::<B, Self>(expected);
                std::panic::resume_unwind(p);
            }
            if s >= STOLEN_BASE {
                // Leap-frog: steal only from our thief.
                let thief = s - STOLEN_BASE;
                if !self.try_steal_from(thief, true) {
                    idle += 1;
                    if idle < 64 {
                        std::hint::spin_loop();
                    } else {
                        std::thread::yield_now();
                    }
                }
            } else {
                // PENDING: the thief holds the pointer but has not yet
                // announced itself.
                debug_assert_eq!(s, PENDING);
                std::hint::spin_loop();
            }
        }
    }

    /// One steal attempt; on success executes the task and returns true.
    fn try_steal_from(&mut self, victim_idx: usize, leap: bool) -> bool {
        let inner = self.inner();
        let victim = &inner.workers[victim_idx];
        let stolen = if let Some(glock) = &inner.global_steal_lock {
            glock.with(|| victim.queue.steal())
        } else {
            victim.queue.steal()
        };
        match stolen {
            Some(hdr) => {
                let me = self.me();
                if leap {
                    me.stats.leap_steals.fetch_add(1, Relaxed);
                } else {
                    me.stats.steals.fetch_add(1, Relaxed);
                }
                // Announce ourselves for leap-frogging, then execute.
                // SAFETY: we own the node between steal and DONE.
                unsafe {
                    (*hdr).state.store(STOLEN_BASE + self.idx, Release);
                    let ok = ((*hdr).exec)(hdr, self as *mut Self as *mut ());
                    (*hdr)
                        .state
                        .store(if ok { DONE } else { DONE_PANIC }, Release);
                }
                true
            }
            None => {
                self.me().stats.failed_steals.fetch_add(1, Relaxed);
                false
            }
        }
    }

    /// One random-victim steal round.
    fn steal_round(&mut self) -> bool {
        let p = self.inner().workers.len();
        if p <= 1 {
            return false;
        }
        // SAFETY: rng is owner-only.
        let r = unsafe {
            let rng = &mut *self.me().rng.get();
            let mut x = *rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *rng = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        let mut victim = (r % (p as u64 - 1)) as usize;
        if victim >= self.idx {
            victim += 1;
        }
        self.try_steal_from(victim, false)
    }
}

impl<Q: NodeQueue> Fork for NodeCtx<Q> {
    fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let hdr = alloc_node::<ClosureBody<FB>, Self>(ClosureBody(b));
        let me = self.me();
        me.stats.spawns.fetch_add(1, Relaxed);
        // SAFETY(owner-push): this thread is the queue's unique owner.
        unsafe { me.queue.push(hdr) };

        let guard = NodeJoinGuard::<Q, ClosureBody<FB>> {
            ctx: self as *mut Self,
            hdr,
            _marker: PhantomData,
        };
        let ra = a(self);
        std::mem::forget(guard);

        // SAFETY: `hdr` is our most recent un-joined push with this
        // body type.
        let rb = unsafe { self.join_node::<ClosureBody<FB>>(hdr) };
        (ra, rb)
    }

    fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync,
    {
        if n == 0 {
            return;
        }
        let mut pending: Vec<*mut TaskHeader> = Vec::with_capacity(n - 1);
        for i in 1..n {
            let hdr = alloc_node::<ForEachBody<'_, F>, Self>(ForEachBody { body, i });
            let me = self.me();
            me.stats.spawns.fetch_add(1, Relaxed);
            // SAFETY(owner-push): unique owner.
            unsafe { me.queue.push(hdr) };
            pending.push(hdr);
        }
        let guard = ForEachNodeGuard::<'_, Q, F> {
            ctx: self as *mut Self,
            pending: &mut pending,
            _marker: PhantomData,
        };
        body(unsafe { &mut *guard.ctx }, 0);
        std::mem::forget(guard);
        while let Some(hdr) = pending.pop() {
            // SAFETY: LIFO join order over our own pushes.
            unsafe { self.join_node::<ForEachBody<'_, F>>(hdr) };
        }
    }

    fn worker_index(&self) -> usize {
        self.idx
    }

    fn num_workers(&self) -> usize {
        self.inner().workers.len()
    }
}

/// Panic guard: joins (and discards) the pending node if the inline
/// branch of `fork` unwinds.
struct NodeJoinGuard<Q: NodeQueue, B: NodeBody<NodeCtx<Q>>> {
    ctx: *mut NodeCtx<Q>,
    hdr: *mut TaskHeader,
    _marker: PhantomData<fn() -> B>,
}

impl<Q: NodeQueue, B: NodeBody<NodeCtx<Q>>> Drop for NodeJoinGuard<Q, B> {
    fn drop(&mut self) {
        // SAFETY: ctx outlives the guard (same frame); hdr is the most
        // recent un-joined push with body type B.
        unsafe {
            let _ = (*self.ctx).join_node::<B>(self.hdr);
        }
    }
}

/// Panic guard for `for_each_spawn`.
struct ForEachNodeGuard<'v, Q: NodeQueue, F> {
    ctx: *mut NodeCtx<Q>,
    pending: *mut Vec<*mut TaskHeader>,
    _marker: PhantomData<&'v F>,
}

impl<'v, Q, F> Drop for ForEachNodeGuard<'v, Q, F>
where
    Q: NodeQueue,
{
    fn drop(&mut self) {
        // The guard only fires during unwind out of `body(.., 0)`; we
        // must join all pending siblings. We cannot name `F`'s bounds in
        // this Drop without them on the struct, so the struct carries F.
        // SAFETY: see NodeJoinGuard.
        unsafe {
            let pending = &mut *self.pending;
            while let Some(hdr) = pending.pop() {
                let _ = wait_discard(&mut *self.ctx, hdr);
            }
        }
    }
}

/// Joins a pending node without knowing its body type, discarding the
/// result. Used only on unwind paths: an un-executed sibling is dropped
/// without running (unlike the non-panicking path, which always runs
/// every spawned task).
///
/// # Safety
/// `hdr` must be the context's most recent un-joined push.
unsafe fn wait_discard<Q: NodeQueue>(ctx: &mut NodeCtx<Q>, hdr: *mut TaskHeader) -> bool {
    if let Some(ptr) = ctx.me().queue.pop() {
        debug_assert_eq!(ptr, hdr);
        ((*ptr).finalize)(ptr, Fate::DropUnexecuted);
        return true;
    }
    let mut idle = 0u32;
    loop {
        let s = (*hdr).state.load(Acquire);
        if is_done(s) {
            let fate = if s == DONE {
                Fate::DropResult
            } else {
                Fate::DropPanic
            };
            ((*hdr).finalize)(hdr, fate);
            return s == DONE;
        }
        if s >= STOLEN_BASE {
            let thief = s - STOLEN_BASE;
            if !ctx.try_steal_from(thief, true) {
                idle += 1;
                if idle < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Background worker loop.
fn background_loop<Q: NodeQueue>(inner: Arc<NodePoolInner<Q>>, idx: usize) {
    // SAFETY: the Arc keeps the pool alive; unique worker `idx` thread.
    let mut ctx = unsafe { NodeCtx::new(&inner, idx) };
    let mut idle = 0u32;
    loop {
        if inner.shutdown.load(Acquire) {
            break;
        }
        if inner.active.load(Acquire) {
            if ctx.steal_round() {
                idle = 0;
            } else {
                idle += 1;
                if idle < 32 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        } else {
            idle += 1;
            if idle < 64 {
                std::thread::yield_now();
            } else {
                std::thread::park_timeout(std::time::Duration::from_micros(200));
            }
        }
    }
}
