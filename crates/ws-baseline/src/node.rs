//! Heap-allocated task frames for the baseline schedulers.
//!
//! The Wool paper contrasts the direct task stack with the designs of
//! Cilk++ and TBB, which use "free list allocation of task structures,
//! keeping only pointers in their task queues". The baselines here
//! reproduce that structure: every spawn allocates a [`TaskNode`] on the
//! heap and pushes a type-erased pointer to its [`TaskHeader`] onto a
//! deque. (We rely on the allocator's thread-local caching to play the
//! role of the free list; the cost profile — pointer chasing, allocator
//! traffic, a cache line per task — is the one the paper attributes to
//! these systems.)

use std::any::Any;
use std::mem::{ManuallyDrop, MaybeUninit};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::AtomicUsize;

/// Header state: queued, not yet taken by anyone.
pub const PENDING: usize = 0;
/// Header state: completed successfully (result stored).
pub const DONE: usize = 1;
/// Header state: the task panicked (payload stored).
pub const DONE_PANIC: usize = 2;
/// Header state base: `STOLEN(i)` is `STOLEN_BASE + i`.
pub const STOLEN_BASE: usize = 3;

/// True if the state denotes completion (successful or panicked).
#[inline]
pub fn is_done(s: usize) -> bool {
    s == DONE || s == DONE_PANIC
}

/// A unit of work executable by a baseline scheduler with context `C`.
///
/// Mirrors `wool-core`'s internal task trait; a named trait (rather than
/// bare `FnOnce`) lets `for_each_spawn` give every iteration the same
/// concrete type.
pub trait NodeBody<C>: Send + Sized {
    /// Result type.
    type Output: Send;
    /// Runs the task.
    fn run(self, ctx: &mut C) -> Self::Output;
}

/// Adapter for plain closures.
pub struct ClosureBody<F>(pub F);

impl<C, F, R> NodeBody<C> for ClosureBody<F>
where
    F: FnOnce(&mut C) -> R + Send,
    R: Send,
{
    type Output = R;
    #[inline(always)]
    fn run(self, ctx: &mut C) -> R {
        (self.0)(ctx)
    }
}

/// One `for_each_spawn` iteration: shared body reference plus an index.
pub struct ForEachBody<'a, F> {
    /// The loop body.
    pub body: &'a F,
    /// This iteration's index.
    pub i: usize,
}

impl<'a, C, F> NodeBody<C> for ForEachBody<'a, F>
where
    F: Fn(&mut C, usize) + Sync,
{
    type Output = ();
    #[inline(always)]
    fn run(self, ctx: &mut C) {
        (self.body)(ctx, self.i)
    }
}

/// How a node should be disposed of by [`TaskHeader::finalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fate {
    /// The body was never executed: drop it.
    DropUnexecuted,
    /// The node completed successfully: drop the result.
    DropResult,
    /// The node panicked: the payload is dropped with the node.
    DropPanic,
}

/// The type-erased prefix of every task node; deques store
/// `*mut TaskHeader`.
pub struct TaskHeader {
    /// PENDING → STOLEN(i) → DONE/DONE_PANIC (stolen path), or consumed
    /// directly by the owner's inline pop.
    pub state: AtomicUsize,
    /// Monomorphized executor: runs the body with the (type-erased)
    /// worker context, writes the result or panic payload into the node,
    /// and returns success. The **caller** publishes DONE/DONE_PANIC.
    pub exec: unsafe fn(*mut TaskHeader, *mut ()) -> bool,
    /// Monomorphized disposer: drops the indicated contents and frees
    /// the allocation with the correct layout. Used on unwind paths
    /// where the joining code cannot name the node's concrete type.
    pub finalize: unsafe fn(*mut TaskHeader, Fate),
}

/// A full task frame: header + body + result storage.
#[repr(C)] // header first: `*mut TaskNode<B>` casts to `*mut TaskHeader`
pub struct TaskNode<B: NodeBody<C>, C> {
    /// Type-erased prefix.
    pub header: TaskHeader,
    body: ManuallyDrop<B>,
    result: MaybeUninit<B::Output>,
    panic: Option<Box<dyn Any + Send>>,
    _ctx: std::marker::PhantomData<fn(&mut C)>,
}

/// Allocates a node for `body`, returning the erased header pointer.
pub fn alloc_node<B, C>(body: B) -> *mut TaskHeader
where
    B: NodeBody<C>,
{
    let node = Box::new(TaskNode::<B, C> {
        header: TaskHeader {
            state: AtomicUsize::new(PENDING),
            exec: exec_node::<B, C>,
            finalize: finalize_node::<B, C>,
        },
        body: ManuallyDrop::new(body),
        result: MaybeUninit::uninit(),
        panic: None,
        _ctx: std::marker::PhantomData,
    });
    Box::into_raw(node) as *mut TaskHeader
}

/// The erased executor stored in every header.
///
/// # Safety
/// `hdr` must point to a live `TaskNode<B, C>` whose body has not been
/// taken; `ctx` must point to a valid `C` for the duration of the call.
unsafe fn exec_node<B, C>(hdr: *mut TaskHeader, ctx: *mut ()) -> bool
where
    B: NodeBody<C>,
{
    let node = hdr as *mut TaskNode<B, C>;
    let body = ManuallyDrop::take(&mut (*node).body);
    let ctx = &mut *(ctx as *mut C);
    match std::panic::catch_unwind(AssertUnwindSafe(|| body.run(ctx))) {
        Ok(r) => {
            (*node).result.write(r);
            true
        }
        Err(p) => {
            (*node).panic = Some(p);
            false
        }
    }
}

/// The erased disposer stored in every header.
///
/// # Safety
/// `hdr` must point to a `TaskNode<B, C>` in the state implied by
/// `fate`; the pointer must not be used afterwards.
unsafe fn finalize_node<B, C>(hdr: *mut TaskHeader, fate: Fate)
where
    B: NodeBody<C>,
{
    let node = hdr as *mut TaskNode<B, C>;
    match fate {
        Fate::DropUnexecuted => ManuallyDrop::drop(&mut (*node).body),
        Fate::DropResult => (*node).result.assume_init_drop(),
        Fate::DropPanic => { /* the Option<Box<dyn Any>> field drops with the node */ }
    }
    drop(Box::from_raw(node));
}

/// Takes the body out of a node that was popped back by its owner
/// (inline execution) and frees the allocation.
///
/// # Safety
/// `hdr` must be the unique live pointer to an unexecuted
/// `TaskNode<B, C>` allocated by [`alloc_node`] with these types.
pub unsafe fn take_body_and_free<B, C>(hdr: *mut TaskHeader) -> B
where
    B: NodeBody<C>,
{
    let node = hdr as *mut TaskNode<B, C>;
    let body = ManuallyDrop::take(&mut (*node).body);
    drop(Box::from_raw(node));
    body
}

/// Reads the result of a completed (DONE) node and frees it.
///
/// # Safety
/// Caller must have Acquire-observed `DONE` on `hdr.state` and be the
/// joining owner.
pub unsafe fn take_result_and_free<B, C>(hdr: *mut TaskHeader) -> B::Output
where
    B: NodeBody<C>,
{
    let node = hdr as *mut TaskNode<B, C>;
    let r = (*node).result.assume_init_read();
    drop(Box::from_raw(node));
    r
}

/// Reads the panic payload of a DONE_PANIC node and frees it.
///
/// # Safety
/// Caller must have Acquire-observed `DONE_PANIC` on `hdr.state` and be
/// the joining owner.
pub unsafe fn take_panic_and_free<B, C>(hdr: *mut TaskHeader) -> Box<dyn Any + Send>
where
    B: NodeBody<C>,
{
    let node = hdr as *mut TaskNode<B, C>;
    let p = (*node).panic.take().expect("panicked node has a payload");
    drop(Box::from_raw(node));
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    struct Ctx(u64);

    /// Helper pinning the body type across alloc/take.
    unsafe fn alloc_then_take<B: NodeBody<Ctx>>(body: B) -> B {
        let hdr = alloc_node::<B, Ctx>(body);
        take_body_and_free::<B, Ctx>(hdr)
    }

    #[test]
    fn inline_roundtrip() {
        // SAFETY: unique pointer, correct types.
        let body = unsafe { alloc_then_take(ClosureBody(|c: &mut Ctx| c.0 * 2)) };
        let mut ctx = Ctx(21);
        assert_eq!(body.run(&mut ctx), 42);
    }

    /// A nameable body type so tests can spell the generic parameters of
    /// the take_* functions exactly.
    struct AddOne;
    impl NodeBody<Ctx> for AddOne {
        type Output = u64;
        fn run(self, ctx: &mut Ctx) -> u64 {
            ctx.0 + 1
        }
    }

    struct Boom;
    impl NodeBody<Ctx> for Boom {
        type Output = u64;
        fn run(self, _: &mut Ctx) -> u64 {
            panic!("node-panic")
        }
    }

    #[test]
    fn stolen_style_roundtrip() {
        let hdr = alloc_node::<AddOne, Ctx>(AddOne);
        let mut ctx = Ctx(9);
        // SAFETY: as a thief would: exec then read result.
        unsafe {
            let ok = ((*hdr).exec)(hdr, &mut ctx as *mut Ctx as *mut ());
            assert!(ok);
            (*hdr).state.store(DONE, Ordering::Release);
            let r = take_result_and_free::<AddOne, Ctx>(hdr);
            assert_eq!(r, 10);
        }
    }

    #[test]
    fn panic_roundtrip() {
        let hdr = alloc_node::<Boom, Ctx>(Boom);
        let mut ctx = Ctx(0);
        // SAFETY: thief-style execution with matching types.
        unsafe {
            let ok = ((*hdr).exec)(hdr, &mut ctx as *mut Ctx as *mut ());
            assert!(!ok);
            (*hdr).state.store(DONE_PANIC, Ordering::Release);
            let p = take_panic_and_free::<Boom, Ctx>(hdr);
            assert_eq!(*p.downcast_ref::<&str>().unwrap(), "node-panic");
        }
    }

    #[test]
    fn for_each_body_runs_with_index() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        let body =
            |_: &mut Ctx, i: usize| _ = hits.fetch_add(i, std::sync::atomic::Ordering::Relaxed);
        let fe = ForEachBody { body: &body, i: 7 };
        let mut ctx = Ctx(0);
        fe.run(&mut ctx);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 7);
    }

    #[test]
    fn state_helpers() {
        assert!(is_done(DONE));
        assert!(is_done(DONE_PANIC));
        assert!(!is_done(PENDING));
        assert!(!is_done(STOLEN_BASE + 4));
    }
}
