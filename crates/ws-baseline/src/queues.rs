//! Queue adapters plugging `ws-deque` structures into the baseline pool.

use std::cell::UnsafeCell;

use ws_deque::chase_lev::OwnerToken;
use ws_deque::{ChaseLev, LockedDeque, Steal, StealProtocol};

use crate::node::TaskHeader;

/// A per-worker task queue of type-erased node pointers.
///
/// # Safety contract
/// `push`/`pop` must only be called by the worker that owns the queue
/// (the pool guarantees this: each queue is driven by exactly one
/// thread). `steal` may be called by anyone.
pub trait NodeQueue: Send + Sync + 'static {
    /// Creates an empty queue.
    fn new() -> Self;

    /// Owner: push a task pointer.
    ///
    /// # Safety
    /// Caller must be the unique owning worker thread.
    unsafe fn push(&self, node: *mut TaskHeader);

    /// Owner: pop the most recent push.
    ///
    /// # Safety
    /// Caller must be the unique owning worker thread.
    unsafe fn pop(&self) -> Option<*mut TaskHeader>;

    /// Thief: take the oldest task, if any. `None` covers both "empty"
    /// and "lost a race" — the baseline steal loops simply retry.
    fn steal(&self) -> Option<*mut TaskHeader>;
}

/// Raw pointers are not `Send`; wrap them for deque storage.
///
/// SAFETY rationale: the pointer identifies a heap node whose ownership
/// is transferred through the queue; the node protocol (see
/// `crate::node`) serializes all accesses.
struct Ptr(*mut TaskHeader);
// SAFETY: see type docs.
unsafe impl Send for Ptr {}

/// TBB-like substrate: our Chase–Lev deque (fence-synchronized pop).
pub struct ChaseLevQueue {
    deque: ChaseLev<Ptr>,
    /// Owner token for the deque's owner end; only touched by the
    /// owning worker (hence the UnsafeCell is sound).
    token: UnsafeCell<OwnerToken>,
}

// SAFETY: `token` is owner-only per the NodeQueue contract; the deque is
// already Sync for Send payloads.
unsafe impl Sync for ChaseLevQueue {}
unsafe impl Send for ChaseLevQueue {}

impl NodeQueue for ChaseLevQueue {
    fn new() -> Self {
        ChaseLevQueue {
            deque: ChaseLev::new(),
            // SAFETY: exactly one token per deque, used by one thread.
            token: UnsafeCell::new(unsafe { OwnerToken::new() }),
        }
    }

    unsafe fn push(&self, node: *mut TaskHeader) {
        self.deque.push(Ptr(node), &mut *self.token.get());
    }

    unsafe fn pop(&self) -> Option<*mut TaskHeader> {
        self.deque.pop(&mut *self.token.get()).map(|p| p.0)
    }

    fn steal(&self) -> Option<*mut TaskHeader> {
        match self.deque.steal() {
            Steal::Success(p) => Some(p.0),
            _ => None,
        }
    }
}

/// Cilk++-like substrate: a mutex-protected deque; `PROTOCOL` selects
/// the §IV-C thief protocol.
pub struct LockedQueue<const PROTOCOL: u8> {
    deque: LockedDeque<Ptr>,
}

/// Protocol selector values for [`LockedQueue`].
pub mod protocol {
    /// Lock immediately.
    pub const BASE: u8 = 0;
    /// Peek before locking.
    pub const PEEK: u8 = 1;
    /// Peek, then try_lock.
    pub const TRYLOCK: u8 = 2;
}

impl<const PROTOCOL: u8> LockedQueue<PROTOCOL> {
    fn protocol() -> StealProtocol {
        match PROTOCOL {
            protocol::BASE => StealProtocol::Base,
            protocol::PEEK => StealProtocol::Peek,
            _ => StealProtocol::Trylock,
        }
    }
}

impl<const PROTOCOL: u8> NodeQueue for LockedQueue<PROTOCOL> {
    fn new() -> Self {
        LockedQueue {
            deque: LockedDeque::new(),
        }
    }

    unsafe fn push(&self, node: *mut TaskHeader) {
        self.deque.push(Ptr(node));
    }

    unsafe fn pop(&self) -> Option<*mut TaskHeader> {
        self.deque.pop().map(|p| p.0)
    }

    fn steal(&self) -> Option<*mut TaskHeader> {
        self.deque.steal(Self::protocol()).success().map(|p| p.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_ptr(v: usize) -> *mut TaskHeader {
        v as *mut TaskHeader
    }

    fn exercise<Q: NodeQueue>() {
        let q = Q::new();
        // SAFETY: single-threaded test acts as the owner.
        unsafe {
            q.push(fake_ptr(8));
            q.push(fake_ptr(16));
            q.push(fake_ptr(24));
            assert_eq!(q.pop(), Some(fake_ptr(24)));
            assert_eq!(q.steal(), Some(fake_ptr(8)));
            assert_eq!(q.pop(), Some(fake_ptr(16)));
            assert_eq!(q.pop(), None);
            assert_eq!(q.steal(), None);
        }
    }

    #[test]
    fn chase_lev_queue_order() {
        exercise::<ChaseLevQueue>();
    }

    #[test]
    fn locked_queue_order_all_protocols() {
        exercise::<LockedQueue<{ protocol::BASE }>>();
        exercise::<LockedQueue<{ protocol::PEEK }>>();
        exercise::<LockedQueue<{ protocol::TRYLOCK }>>();
    }
}
