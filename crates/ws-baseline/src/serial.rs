//! The serial executor: runs every "parallel" construct inline.
//!
//! This provides the paper's `T_S` — "sequential execution time (with
//! no task overheads)" — against which absolute speedups and the
//! per-task overhead `(T_1 - T_S) / N_T` of Table II are computed.
//! Closures are called directly, so the optimizer sees exactly the code
//! a hand-written sequential program would produce.

use wool_core::{Executor, Fork, Job};

/// The serial fork-join context: everything runs inline.
#[derive(Debug, Default)]
pub struct SerialCtx {
    _private: (),
}

impl Fork for SerialCtx {
    #[inline(always)]
    fn fork<RA, RB, FA, FB>(&mut self, a: FA, b: FB) -> (RA, RB)
    where
        FA: FnOnce(&mut Self) -> RA + Send,
        FB: FnOnce(&mut Self) -> RB + Send,
        RA: Send,
        RB: Send,
    {
        // Program order: the CALL branch first, then the "spawned" one
        // (which a single Wool worker would run at the join).
        let ra = a(self);
        let rb = b(self);
        (ra, rb)
    }

    #[inline(always)]
    fn for_each_spawn<F>(&mut self, n: usize, body: &F)
    where
        F: Fn(&mut Self, usize) + Sync,
    {
        // Mirror the parallel execution order: the direct call is
        // iteration 0, spawned iterations join LIFO afterwards — but
        // since iterations must be independent, plain order is
        // observationally equivalent and fastest.
        for i in 0..n {
            body(self, i);
        }
    }
}

/// The serial executor.
#[derive(Debug, Default)]
pub struct SerialExecutor;

impl SerialExecutor {
    /// Creates a serial executor.
    pub fn new() -> Self {
        SerialExecutor
    }

    /// Runs a closure with a serial context.
    pub fn run<R>(&mut self, f: impl FnOnce(&mut SerialCtx) -> R) -> R {
        let mut ctx = SerialCtx::default();
        f(&mut ctx)
    }
}

impl Executor for SerialExecutor {
    fn run_job<R: Send, J: Job<R>>(&mut self, job: J) -> R {
        let mut ctx = SerialCtx::default();
        job.call(&mut ctx)
    }

    fn workers(&self) -> usize {
        1
    }

    fn name(&self) -> String {
        "serial".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib<C: Fork>(c: &mut C, n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = c.fork(|c| fib(c, n - 1), |c| fib(c, n - 2));
        a + b
    }

    #[test]
    fn serial_fib() {
        let mut e = SerialExecutor::new();
        assert_eq!(e.run(|c| fib(c, 20)), 6765);
    }

    #[test]
    fn serial_for_each_in_order() {
        let mut e = SerialExecutor::new();
        let log = std::sync::Mutex::new(Vec::new());
        e.run(|c| {
            c.for_each_spawn(5, &|_, i| log.lock().unwrap().push(i));
        });
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn serial_executor_traits() {
        struct J;
        impl Job<u32> for J {
            fn call<C: Fork>(self, _ctx: &mut C) -> u32 {
                7
            }
        }
        let mut e = SerialExecutor::new();
        assert_eq!(e.run_job(J), 7);
        assert_eq!(e.workers(), 1);
        assert_eq!(Executor::name(&e), "serial");
    }
}
