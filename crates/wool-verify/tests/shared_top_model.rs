//! Exhaustive models of the **shared-top** protocol (the Table II
//! *base* rung, `LockedBase`): steal validity decided by the
//! `top_shared`/`bot` comparison under the victim lock, the state word
//! demoted to a completion signal.
//!
//! The regression scenario here was found by `wool-par`'s property
//! tests: during a stolen join the owner leap-frogs, and leap-frogged
//! executions spawn on the owner's stack — their pushes raise
//! `top_shared` and their joins lower it only back to `k + 1` (the
//! lowest nested slot). If the post-wait `bot = k` restore does not
//! also re-lower `top_shared`, the consumed slot `k` re-enters the
//! `[bot, top_shared)` window and a thief steals a dead descriptor.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::sync::Arc;
use wool_core::slot::{is_done, stolen, TaskSlot, DONE, TASK};
use wool_core::spinlock::SpinLock;
use wool_core::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use wool_core::sync::atomic::{AtomicBool, AtomicUsize};
use wool_core::sync::{hint, thread};
use wool_verify::support::bounded;

/// One victim's shared-top deque: the words of `worker.rs` that this
/// strategy's thieves and owner exchange, with a task-id word and an
/// execution counter per task standing in for the closure payload.
struct SharedTopModel {
    lock: SpinLock,
    bot: AtomicUsize,
    top_shared: AtomicUsize,
    slots: Vec<TaskSlot>,
    /// Per-slot task id, written where `TaskRepr::store` writes the
    /// closure.
    data: Vec<AtomicUsize>,
    /// Per-task-id execution counter; exactly-once means every entry
    /// ends at 1.
    executed: Vec<AtomicUsize>,
}

impl SharedTopModel {
    fn new(nslots: usize, ntasks: usize) -> Self {
        SharedTopModel {
            lock: SpinLock::new(),
            bot: AtomicUsize::new(0),
            top_shared: AtomicUsize::new(0),
            slots: (0..nslots).map(|_| TaskSlot::default()).collect(),
            data: (0..nslots).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            executed: (0..ntasks).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Mirrors `try_push` for a `SHARED_TOP` strategy: write the
    /// payload, mark TASK, publish the new `top_shared` (Release, no
    /// lock). Returns the new `top`.
    fn owner_push(&self, top: usize, id: usize) -> usize {
        let slot = &self.slots[top];
        self.data[top].store(id, Relaxed);
        slot.state.store(TASK, Release);
        self.top_shared.store(top + 1, Release);
        top + 1
    }

    /// Mirrors `join_task_shared_top`: lower `top_shared` under the
    /// lock, detect a steal by `bot > k`; for a stolen task run
    /// `nested` (the leap-frog window, where leap-frogged executions
    /// spawn on this same stack), wait for DONE, then restore `bot`
    /// and re-lower `top_shared` under the lock. Returns the new
    /// `top`.
    fn owner_join(&self, top: usize, nested: impl FnOnce(usize)) -> usize {
        let k = top - 1;
        let slot = &self.slots[k];
        self.lock.lock();
        self.top_shared.store(k, Relaxed);
        let was_stolen = self.bot.load(Relaxed) > k;
        self.lock.unlock();

        if !was_stolen {
            self.execute(k);
            return k;
        }
        nested(top);
        while !is_done(slot.state.load(Acquire)) {
            hint::spin_loop();
        }
        self.lock.lock();
        self.bot.store(k, Relaxed);
        // The regression this file guards: without this store a nested
        // join leaves `top_shared` at `k + 1 > bot`, re-exposing the
        // consumed slot `k` to thieves.
        self.top_shared.store(k, Relaxed);
        self.lock.unlock();
        k
    }

    /// Mirrors `steal_shared_top`, including its protocol guard: a live
    /// slot in `[bot, top_shared)` must hold TASK.
    fn thief_attempt(&self, me: usize) -> bool {
        self.lock.lock();
        let b = self.bot.load(Relaxed);
        let t = self.top_shared.load(Acquire);
        if b >= t {
            self.lock.unlock();
            return false;
        }
        let slot = &self.slots[b];
        let s = slot.state.load(Relaxed);
        assert_eq!(
            s, TASK,
            "shared-top protocol violation: live slot {b} (bot {b}, top {t}) holds state {s}"
        );
        slot.state.store(stolen(me), Release);
        self.bot.store(b + 1, Relaxed);
        self.lock.unlock();
        self.execute(b);
        slot.state.store(DONE, Release);
        true
    }

    /// "Runs" the task in slot `k`: bumps its execution counter.
    fn execute(&self, k: usize) {
        let id = self.data[k].load(Relaxed);
        self.executed[id].fetch_add(1, SeqCst);
    }

    fn assert_each_executed_once(&self) {
        for (id, n) in self.executed.iter().enumerate() {
            assert_eq!(n.load(SeqCst), 1, "task {id} execution count");
        }
    }
}

/// Runs thief attempts until the owner signals done or the miss budget
/// is exhausted (same shape as `slot_protocol.rs::thief_loop`).
fn thief_loop(m: &SharedTopModel, me: usize, owner_done: &AtomicBool, max_misses: usize) -> usize {
    let mut executed = 0;
    let mut misses = 0;
    while misses < max_misses {
        if m.thief_attempt(me) {
            executed += 1;
        } else {
            misses += 1;
            if owner_done.load(SeqCst) {
                break;
            }
            hint::spin_loop();
        }
    }
    executed
}

/// Baseline: one task, one thief — the steal-vs-inline-join race under
/// the lock resolves to exactly one execution either way.
#[test]
fn shared_top_one_task_one_thief() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(SharedTopModel::new(1, 1));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        let top = m.owner_push(0, 0);
        let _ = m.owner_join(top, |_| {});
        done.store(true, SeqCst);
        let stole = thief.join().unwrap();
        assert!(stole <= 1);
        m.assert_each_executed_once();
    });
}

/// The leap-frog regression: thief A deterministically steals and
/// completes task 0, forcing the owner's join onto the stolen path,
/// where a nested task (the leap-frogged spawn) is pushed and joined
/// on the same stack. Thief B probes concurrently; its protocol guard
/// fails if the `bot` restore leaves `top_shared` above the consumed
/// slot.
#[test]
fn shared_top_leapfrog_spawn_regression() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(SharedTopModel::new(2, 2));
        let done = Arc::new(AtomicBool::new(false));

        let top = m.owner_push(0, 0);
        // Scripted: with no contention yet this steal must succeed,
        // completing task 0 before the owner's join begins.
        assert!(m.thief_attempt(7), "scripted steal of task 0 must win");

        let thief_b = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 8, &done, 4))
        };
        let _ = m.owner_join(top, |t| {
            // Leap-frogged execution: a nested task spawned and joined
            // on this stack while the outer join waits.
            let t = m.owner_push(t, 1);
            let _ = m.owner_join(t, |_| {});
        });
        done.store(true, SeqCst);
        let _ = thief_b.join().unwrap();
        m.assert_each_executed_once();
    });
}
