//! Exhaustive models of the real Vyukov-style MPMC [`Injector`]:
//! concurrent submit/dequeue, the full and empty edges, and sequence-lap
//! wraparound. The queue under test is `wool_core::Injector` itself —
//! under `--cfg loom` its atomics route through the explorer.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::sync::Arc;
use wool_core::sync::atomic::Ordering::Relaxed;
use wool_core::sync::{hint, thread};
use wool_core::Injector;
use wool_verify::support::bounded;
use wool_verify::support::probe::{probe, Counters};

/// Two producers and one consumer over a capacity-2 queue: every job
/// arrives exactly once (the sum over distinct values proves no loss
/// and no duplication).
#[test]
fn two_producers_one_consumer_exactly_once() {
    wool_loom::model_config(bounded(2), || {
        let q = Arc::new(Injector::with_capacity(2));
        let c = Arc::new(Counters::default());
        let producers: Vec<_> = [1usize, 2]
            .into_iter()
            .map(|v| {
                let q = Arc::clone(&q);
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    q.push(probe(&c, v))
                        .ok()
                        .expect("capacity-2 queue full with 2 producers");
                })
            })
            .collect();
        let mut got = 0;
        while got < 2 {
            match q.pop() {
                // SAFETY: probe payloads ignore the ctx pointer.
                Some(job) => {
                    unsafe { job.run(std::ptr::null_mut()) };
                    got += 1;
                }
                None => hint::spin_loop(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert!(q.pop().is_none());
        assert_eq!(c.sum.load(Relaxed), 3, "1 + 2, each exactly once");
        assert_eq!(c.ran.load(Relaxed), 2);
        assert_eq!(c.dropped.load(Relaxed), 0);
    });
}

/// One producer pushing three jobs through a capacity-2 queue while the
/// consumer drains it: exercises the full edge (push returns the job
/// back) and the sequence-lap wraparound arithmetic on the third cell
/// reuse.
#[test]
fn spsc_full_edge_and_wraparound() {
    wool_loom::model_config(bounded(2), || {
        let q = Arc::new(Injector::with_capacity(2));
        let c = Arc::new(Counters::default());
        let producer = {
            let q = Arc::clone(&q);
            let c = Arc::clone(&c);
            thread::spawn(move || {
                let mut full_hits = 0usize;
                for v in [1usize, 2, 3] {
                    let mut job = probe(&c, v);
                    loop {
                        match q.push(job) {
                            Ok(()) => break,
                            Err(back) => {
                                full_hits += 1;
                                job = back;
                                hint::spin_loop();
                            }
                        }
                    }
                }
                full_hits
            })
        };
        let mut got = 0;
        while got < 3 {
            match q.pop() {
                // SAFETY: probe payloads ignore the ctx pointer.
                Some(job) => {
                    unsafe { job.run(std::ptr::null_mut()) };
                    got += 1;
                }
                None => hint::spin_loop(),
            }
        }
        let _ = producer.join().unwrap();
        assert!(q.pop().is_none());
        assert_eq!(c.sum.load(Relaxed), 6, "1 + 2 + 3, each exactly once");
        assert_eq!(c.ran.load(Relaxed), 3);
        assert_eq!(c.dropped.load(Relaxed), 0);
    });
}

/// Deterministic edges inside the model runtime: pop on empty is None,
/// a full queue hands the job back exactly once, and dropping the queue
/// disposes of unconsumed jobs.
#[test]
fn sequential_edges() {
    wool_loom::model_config(bounded(2), || {
        let c = Arc::new(Counters::default());
        let q = Injector::with_capacity(2);
        assert!(q.pop().is_none());
        q.push(probe(&c, 1)).ok().unwrap();
        q.push(probe(&c, 2)).ok().unwrap();
        let bounced = q.push(probe(&c, 3)).expect_err("full at capacity 2");
        drop(bounced);
        assert_eq!(c.dropped.load(Relaxed), 1);
        drop(q);
        assert_eq!(c.dropped.load(Relaxed), 3, "queued jobs disposed on drop");
        assert_eq!(c.ran.load(Relaxed), 0);
    });
}
