//! Exhaustive models of the TATAS [`SpinLock`]: mutual exclusion under
//! contention, `try_lock` single-grant, and release-on-panic (the
//! no-poisoning contract of `with`).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use wool_core::spinlock::SpinLock;
use wool_core::sync::atomic::Ordering::SeqCst;
use wool_core::sync::atomic::{AtomicBool, AtomicUsize};
use wool_core::sync::thread;
use wool_verify::support::bounded;

/// Acquire the lock, assert sole occupancy via an independent flag, and
/// release. The `inside` swap would observe `true` if two threads were
/// ever simultaneously inside the critical section.
fn contend(lock: &SpinLock, inside: &AtomicBool, acquired: &AtomicUsize) {
    lock.lock();
    assert!(
        !inside.swap(true, SeqCst),
        "two threads inside the critical section"
    );
    acquired.fetch_add(1, SeqCst);
    inside.store(false, SeqCst);
    lock.unlock();
}

/// Two contenders over every interleaving of the TATAS acquire path
/// (fast swap, the test-and-test-and-set inner spin, and release):
/// mutual exclusion holds and both eventually acquire.
#[test]
fn mutual_exclusion_two_contenders() {
    wool_loom::model_config(bounded(3), || {
        let lock = Arc::new(SpinLock::new());
        let inside = Arc::new(AtomicBool::new(false));
        let acquired = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                let acquired = Arc::clone(&acquired);
                thread::spawn(move || contend(&lock, &inside, &acquired))
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(acquired.load(SeqCst), 2);
        assert!(lock.try_lock(), "lock free after both released");
    });
}

/// Two racing `try_lock` calls on a free lock: at most one holds at a
/// time, and at least one must succeed (the first swap to land wins —
/// `try_lock` can spuriously fail only when someone actually holds it).
#[test]
fn try_lock_single_grant() {
    wool_loom::model_config(bounded(3), || {
        let lock = Arc::new(SpinLock::new());
        let inside = Arc::new(AtomicBool::new(false));
        let wins = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let inside = Arc::clone(&inside);
                let wins = Arc::clone(&wins);
                thread::spawn(move || {
                    if lock.try_lock() {
                        assert!(!inside.swap(true, SeqCst), "double grant");
                        wins.fetch_add(1, SeqCst);
                        inside.store(false, SeqCst);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(wins.load(SeqCst) >= 1, "free lock refused every try_lock");
    });
}

/// A critical section that panics must release the lock on unwind (no
/// poisoning), and a contender spinning in `lock()` at that moment must
/// be woken by the release and complete. This exercises the model
/// runtime's unwind path: the guard's unlock runs while panicking.
#[test]
fn with_releases_on_panic_and_wakes_contender() {
    // The deliberate in-model panic would spam the default hook once per
    // explored execution; silence it for the duration.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    wool_loom::model_config(bounded(3), || {
        let lock = Arc::new(SpinLock::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let contender = {
            let lock = Arc::clone(&lock);
            let ran = Arc::clone(&ran);
            thread::spawn(move || {
                lock.with(|| {
                    ran.fetch_add(1, SeqCst);
                });
            })
        };
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            lock.with(|| -> () { panic!("boom") });
        }));
        assert!(panicked.is_err());
        contender.join().unwrap();
        assert_eq!(ran.load(SeqCst), 1);
        // Usable afterwards: no poisoning.
        lock.lock();
        lock.unlock();
    });
    std::panic::set_hook(prev);
}
