//! Exhaustive models of the private-task machinery (§III-B): the
//! `n_public` boundary, the trip-wire `publish_request` channel, the
//! privatization in joins, and the thief back-off clause that keeps
//! thieves off private descriptors.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::sync::Arc;
use wool_core::sync::atomic::AtomicBool;
use wool_core::sync::atomic::Ordering::{Relaxed, SeqCst};
use wool_core::sync::{hint, thread};
use wool_verify::support::{bounded, Attempt, VictimModel};

/// See `slot_protocol.rs`: miss-capped thief loop; the cap bounds each
/// execution's length while the DFS varies where the attempts land.
fn thief_loop(m: &VictimModel, me: usize, owner_done: &AtomicBool, max_misses: usize) -> usize {
    let mut executed = 0;
    let mut misses = 0;
    while misses < max_misses {
        match m.thief_attempt(me) {
            Attempt::Executed(_) => executed += 1,
            Attempt::Empty | Attempt::Retry => {
                misses += 1;
                if owner_done.load(SeqCst) {
                    break;
                }
                hint::spin_loop();
            }
        }
    }
    executed
}

/// The canonical private-task race (the comment block in `join_task`'s
/// private fast path): the owner joins a public task inline,
/// *privatizes* the boundary down, and reuses the slot for a private
/// task — while a stale thief that validated against the old boundary
/// still holds a CAS window. The §III-B back-off clause
/// (`n_public <= b` ⇒ restore TASK) is what makes the owner's private
/// spin terminate; the model proves the combination leaves every task
/// executed exactly once and the join never hangs.
#[test]
fn private_join_vs_stale_thief_backoff() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(1, 2, true));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        // Incarnation 1: published. The join privatizes on the inline
        // path (n_public -> 0).
        let top = m.owner_push(0, 0, true);
        let top = m.owner_join(top);
        // Incarnation 2: private. A stale thief CAS here must back off.
        let top = m.owner_push(top, 1, false);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        let _ = thief.join().unwrap();
        m.assert_each_executed_once();
    });
}

/// The trip-wire publish path on a fresh private stack: thieves find
/// `bot >= n_public`, raise `publish_request`, and the owner's next
/// spawn publishes a batch. Interleavings cover publish-then-steal,
/// steal-the-batch-then-re-request (the trip wire fires again at the
/// boundary), and the owner consuming everything before any publication
/// lands.
#[test]
fn trip_wire_publishes_private_work() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(2, 2, true));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        let top = m.owner_push(0, 0, false);
        let top = m.owner_push(top, 1, false);
        let top = m.owner_join(top);
        let top = m.owner_join(top);
        assert_eq!(top, 0);
        done.store(true, SeqCst);
        let _ = thief.join().unwrap();
        m.assert_each_executed_once();
        // The boundary never exceeds the number of descriptors that
        // existed, and ends at or below the empty stack's top.
        assert!(m.n_public.load(Relaxed) <= 2);
    });
}

/// Two thieves against a private stack: the publication batch admits
/// one public descriptor at a time, so at most one thief can win each
/// batch and the second CAS (or the back-off) must reject the other.
#[test]
fn two_thieves_on_private_stack() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(2, 2, true));
        let done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = [7usize, 8]
            .into_iter()
            .map(|me| {
                let m = Arc::clone(&m);
                let done = Arc::clone(&done);
                thread::spawn(move || thief_loop(&m, me, &done, 2))
            })
            .collect();
        let top = m.owner_push(0, 0, false);
        let top = m.owner_push(top, 1, false);
        let top = m.owner_join(top);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        for t in thieves {
            let _ = t.join().unwrap();
        }
        m.assert_each_executed_once();
    });
}
