//! Exhaustive models of the slot state machine (§III-A): owner swap vs.
//! thief CAS over `EMPTY`/`TASK`/`STOLEN(i)`/`DONE`, with public-only
//! descriptors (the `n_public` machinery is modeled separately in
//! `publish_protocol.rs`).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::sync::Arc;
use wool_core::sync::atomic::{AtomicBool, Ordering::SeqCst};
use wool_core::sync::{hint, thread};
use wool_verify::support::{bounded, Attempt, VictimModel};

/// Runs `thief_attempt` until the owner signals completion or the thief
/// has burned `max_misses` fruitless attempts; returns how many tasks
/// this thief executed. The spin between attempts lets the explorer
/// prune idle re-polls, and the miss cap bounds the per-execution
/// operation count (the DFS still chooses *which* owner operations the
/// capped attempts race against — different executions place them at
/// different protocol points). Successful steals do not count misses.
fn thief_loop(m: &VictimModel, me: usize, owner_done: &AtomicBool, max_misses: usize) -> usize {
    let mut executed = 0;
    let mut misses = 0;
    while misses < max_misses {
        match m.thief_attempt(me) {
            Attempt::Executed(_) => executed += 1,
            Attempt::Empty | Attempt::Retry => {
                misses += 1;
                if owner_done.load(SeqCst) {
                    break;
                }
                hint::spin_loop();
            }
        }
    }
    executed
}

/// The core owner-join-races-thief window: one task, one thief. In some
/// interleavings the owner's swap wins (inline join), in others the
/// thief's CAS wins and the owner must follow the EMPTY → STOLEN → DONE
/// resolution path, restoring `bot` afterwards. Either way the task runs
/// exactly once and the join always resolves.
#[test]
fn one_task_owner_vs_one_thief() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(1, 1, false));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        let top = m.owner_push(0, 0, true);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        let stolen = thief.join().unwrap();
        assert!(stolen <= 1);
        m.assert_each_executed_once();
    });
}

/// Two thieves race each other *and* the owner for a single task: the
/// CAS admits exactly one winner, the loser observes the transient EMPTY
/// and retries or gives up.
#[test]
fn one_task_two_thieves() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(1, 1, false));
        let done = Arc::new(AtomicBool::new(false));
        let thieves: Vec<_> = [7usize, 8]
            .into_iter()
            .map(|me| {
                let m = Arc::clone(&m);
                let done = Arc::clone(&done);
                thread::spawn(move || thief_loop(&m, me, &done, 2))
            })
            .collect();
        let top = m.owner_push(0, 0, true);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        let stolen: usize = thieves.into_iter().map(|t| t.join().unwrap()).sum();
        assert!(stolen <= 1);
        m.assert_each_executed_once();
    });
}

/// Descriptor reincarnation: the owner pushes and joins the same slot
/// twice while a thief runs. A stale thief that read `bot` before the
/// first incarnation resolved may CAS the second incarnation's TASK —
/// the §III-A back-off validation (`bot` re-check) decides whether that
/// acquisition stands. Both incarnations must execute exactly once.
#[test]
fn reincarnation_stale_thief() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(1, 2, false));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        let top = m.owner_push(0, 0, true);
        let top = m.owner_join(top);
        let top = m.owner_push(top, 1, true);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        let _ = thief.join().unwrap();
        m.assert_each_executed_once();
    });
}

/// Depth-two stack: the owner spawns two tasks and joins them in LIFO
/// order while a thief steals from the bottom — the configuration where
/// `bot` and `top` genuinely diverge and the post-steal `bot` restore
/// must line up with the next join.
#[test]
fn two_slots_lifo_join_vs_thief() {
    wool_loom::model_config(bounded(2), || {
        let m = Arc::new(VictimModel::new(2, 2, false));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let m = Arc::clone(&m);
            let done = Arc::clone(&done);
            thread::spawn(move || thief_loop(&m, 7, &done, 3))
        };
        let top = m.owner_push(0, 0, true);
        let top = m.owner_push(top, 1, true);
        let top = m.owner_join(top);
        let _ = m.owner_join(top);
        done.store(true, SeqCst);
        let _ = thief.join().unwrap();
        m.assert_each_executed_once();
    });
}
