//! Exhaustive model of the serve-mode park/wake handshake: the
//! Dekker-style parked-flag protocol between `ServeEngine::submit` and
//! the park sequence in `serve_loop` (`wool-core/src/serve.rs`).
//!
//! The worker's side: `parked.store(true, SeqCst); fence(SeqCst);`
//! re-check the injector; park only if still empty. The submitter's
//! side: `push; fence(SeqCst);` then swap the parked flag and unpark.
//! The theorem: one side always observes the other, so a submission
//! cannot be lost while a worker parks. The model treats `park_timeout`
//! as an *unbounded* park — the real code's timeout is only a safety
//! net, and the protocol must not rely on it.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release`
#![cfg(loom)]

use std::sync::Arc;
use std::time::Duration;
use wool_core::sync::atomic::Ordering::{Relaxed, SeqCst};
use wool_core::sync::atomic::{fence, AtomicBool};
use wool_core::sync::{hint, thread};
use wool_core::Injector;
use wool_verify::support::bounded;
use wool_verify::support::probe::{probe, Counters};

/// The worker's poll/park sequence from `serve_loop` (minus the steal
/// sweep and shutdown clause, which the model has no peers for), with
/// the idle escalation reduced to one spin step. Returns after running
/// one job. The spin sits after a *failed* pop — the point where the
/// worker has re-checked shared state and genuinely cannot progress
/// (e.g. a submitter holds a reserved-but-unpublished cell) — and the
/// park re-check resets the escalation exactly as `serve_loop` does.
fn worker_loop(q: &Injector, parked: &AtomicBool) {
    let mut idle = 0;
    loop {
        if let Some(job) = q.pop() {
            // SAFETY: probe payloads ignore the ctx pointer.
            unsafe { job.run(std::ptr::null_mut()) };
            return;
        }
        idle += 1;
        if idle < 2 {
            hint::spin_loop();
            continue;
        }
        parked.store(true, SeqCst);
        fence(SeqCst);
        if !q.is_empty() {
            parked.store(false, Relaxed);
            idle = 0;
            continue;
        }
        // Under the model this parks *forever* unless unparked: the
        // timeout safety net is deliberately not modeled.
        thread::park_timeout(Duration::from_micros(50));
        parked.store(false, Relaxed);
    }
}

/// `ServeEngine::submit` + `ServeShared::wake_one`, verbatim (the
/// model's single worker makes wake_one's scan a single flag check; the
/// thread registry lock is skipped — registration precedes the first
/// parked-flag store in program order, so a visible flag implies a
/// registered thread).
fn submit(q: &Injector, parked: &AtomicBool, worker: &thread::Thread, c: &Arc<Counters>, v: usize) {
    q.push(probe(c, v)).ok().expect("queue full");
    fence(SeqCst);
    if parked.load(Relaxed) && parked.swap(false, SeqCst) {
        worker.unpark();
    }
}

/// The positive theorem: across every interleaving of one submission
/// with the worker's pop/park cycle — including the worker parking
/// right as the job lands — the job runs and the model terminates
/// (a lost wakeup would surface as a deadlock failure).
#[test]
fn submit_cannot_be_lost_while_worker_parks() {
    wool_loom::model_config(bounded(3), || {
        let q = Arc::new(Injector::with_capacity(2));
        let parked = Arc::new(AtomicBool::new(false));
        let c = Arc::new(Counters::default());
        let worker = {
            let q = Arc::clone(&q);
            let parked = Arc::clone(&parked);
            thread::spawn(move || worker_loop(&q, &parked))
        };
        submit(&q, &parked, worker.thread(), &c, 1);
        worker.join().unwrap();
        assert_eq!(c.ran.load(Relaxed), 1);
        assert_eq!(c.sum.load(Relaxed), 1);
    });
}

/// Two submissions racing one worker's park cycle: the worker must be
/// woken for the second job even if it parks between the two.
#[test]
fn back_to_back_submissions_both_run() {
    wool_loom::model_config(bounded(3), || {
        let q = Arc::new(Injector::with_capacity(2));
        let parked = Arc::new(AtomicBool::new(false));
        let c = Arc::new(Counters::default());
        let worker = {
            let q = Arc::clone(&q);
            let parked = Arc::clone(&parked);
            thread::spawn(move || {
                worker_loop(&q, &parked);
                worker_loop(&q, &parked);
            })
        };
        submit(&q, &parked, worker.thread(), &c, 1);
        submit(&q, &parked, worker.thread(), &c, 2);
        worker.join().unwrap();
        assert_eq!(c.ran.load(Relaxed), 2);
        assert_eq!(c.sum.load(Relaxed), 3);
    });
}

/// The checker's teeth: without the post-flag re-check (and its fence),
/// the classic lost wakeup exists — the submitter reads the flag before
/// the worker sets it, the worker parks after the push, nobody unparks.
/// The explorer must find that interleaving and report the deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn lost_wakeup_without_recheck_is_found() {
    wool_loom::model_config(bounded(3), || {
        let q = Arc::new(Injector::with_capacity(2));
        let parked = Arc::new(AtomicBool::new(false));
        let c = Arc::new(Counters::default());
        let worker = {
            let q = Arc::clone(&q);
            let parked = Arc::clone(&parked);
            thread::spawn(move || loop {
                if let Some(job) = q.pop() {
                    // SAFETY: probe payloads ignore the ctx pointer.
                    unsafe { job.run(std::ptr::null_mut()) };
                    return;
                }
                // BROKEN: no fence, no re-check of the queue.
                parked.store(true, SeqCst);
                thread::park_timeout(Duration::from_micros(50));
                parked.store(false, Relaxed);
            })
        };
        submit(&q, &parked, worker.thread(), &c, 1);
        worker.join().unwrap();
    });
}
