//! Model-checking harness for `wool-core`'s synchronization protocols.
//!
//! This crate holds no scheduler code. It packages **models** — small,
//! self-contained re-statements of the four protocols the direct task
//! stack stands on — and checks them exhaustively with the vendored
//! [`wool_loom`] interleaving explorer:
//!
//! 1. **The slot state machine** (`tests/slot_protocol.rs`): owner swap
//!    vs. thief CAS over `EMPTY`/`TASK`/`STOLEN(i)`/`DONE`, including
//!    the owner-join-races-thief window and descriptor reincarnation.
//! 2. **The private/public publish path** (`tests/publish_protocol.rs`):
//!    the `n_public` boundary, the trip-wire `publish_request` channel,
//!    and the thief back-off that protects private descriptors (§III-B).
//! 3. **The Vyukov MPMC injector** (`tests/injector_mpmc.rs`): the real
//!    [`wool_core::Injector`] under concurrent submit/dequeue, full and
//!    empty edges, and sequence-lap wraparound.
//! 4. **The serve park/wake protocol** (`tests/serve_wakeup.rs`): the
//!    Dekker-style parked-flag handshake between `submit` and
//!    `serve_loop`, proving a submission cannot be lost while a worker
//!    parks — plus a deliberately broken variant the checker must catch.
//!
//! A fifth suite (`tests/spinlock_model.rs`) proves mutual exclusion and
//! panic-safety of the TATAS [`wool_core::spinlock::SpinLock`], and a
//! sixth (`tests/shared_top_model.rs`) models the shared-top
//! (`LockedBase`) steal/join protocol, including the leap-frog
//! `top_shared` restore regression found by `wool-par`'s property
//! tests.
//!
//! The model suites are compiled only under `--cfg loom`:
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p wool-verify --release
//! ```
//!
//! Without the cfg, `cargo test -p wool-verify` only runs the support
//! module's own unit tests (so tier-1 CI stays fast). See
//! `docs/VERIFICATION.md` for the full matrix and what each model does
//! and does not prove; in particular, the explorer is sequentially
//! consistent, so weak-memory reorderings are covered by the Miri and
//! TSan jobs, not here.

#![warn(missing_docs)]

pub mod support;
