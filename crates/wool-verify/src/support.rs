//! Shared model infrastructure: a victim-deque model that mirrors the
//! atomic-operation sequences of `wool-core/src/exec.rs` one-for-one.
//!
//! The model uses the **real** [`TaskSlot`] state word, the real state
//! constants, the real [`spin_while_empty`] loop and the real
//! [`check_transition`] guards, so a protocol change in `exec.rs` that
//! is not reflected here will usually show up as a guard firing inside
//! the models. Task *payloads* are replaced by a task-id word and an
//! execution counter per task: the properties the models assert are
//! **exactly-once execution** and **joins always resolve** (the checker
//! turns a join that can hang into a deadlock/livelock failure).
//!
//! Every function cites the `exec.rs` function it mirrors. Orderings are
//! passed through verbatim for documentation even though the explorer
//! gives every execution sequentially consistent semantics.

use wool_core::slot::{
    check_transition, is_done, is_stolen, spin_while_empty, stolen, TaskSlot, DONE, EMPTY, TASK,
};
use wool_core::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release};
use wool_core::sync::atomic::{AtomicBool, AtomicUsize};
use wool_core::sync::hint;

/// CHESS-style bounded exploration: every schedule with at most
/// `preemptions` preemptions is visited. Unbounded exploration is
/// intractable for these models — each protocol step is several atomic
/// operations, and the schedule count is combinatorial in their number —
/// while small bounds (2–3) are known to retain nearly all bug-finding
/// power (Musuvathi & Qadeer, PLDI'07). `docs/VERIFICATION.md` states
/// the bound used by each suite.
pub fn bounded(preemptions: u32) -> wool_loom::Config {
    wool_loom::Config {
        preemption_bound: Some(preemptions),
        ..wool_loom::Config::default()
    }
}

/// Outcome of one modeled steal attempt (mirrors `StealOutcome`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attempt {
    /// A task was stolen and executed; carries the task id.
    Executed(usize),
    /// No stealable task was observed.
    Empty,
    /// Lost a race (CAS failure or back-off); retry.
    Retry,
}

/// One victim worker's deque state, as thieves see it: the descriptor
/// array plus the `bot` / `n_public` / `publish_request` words of
/// `worker.rs`, with a task-id word and an execution counter per task
/// standing in for the closure payload.
pub struct VictimModel {
    /// The task descriptors (real state words).
    pub slots: Vec<TaskSlot>,
    /// Per-slot task id, written before the slot's `TASK` store exactly
    /// where `TaskRepr::store` writes the closure.
    pub data: Vec<AtomicUsize>,
    /// Steal frontier (`Worker::bot`).
    pub bot: AtomicUsize,
    /// Public boundary (`Worker::n_public`); unused when `private` is
    /// false.
    pub n_public: AtomicUsize,
    /// Trip-wire publication request (`Worker::publish_request`).
    pub publish_request: AtomicBool,
    /// Per-task-id execution counter; exactly-once means every entry
    /// ends at 1.
    pub executed: Vec<AtomicUsize>,
    /// Whether the modeled strategy uses private tasks (§III-B).
    pub private: bool,
    /// Slots published per trip-wire publication (`publish_batch`).
    pub publish_batch: usize,
}

impl VictimModel {
    /// A model with `nslots` descriptors and `ntasks` task identities.
    pub fn new(nslots: usize, ntasks: usize, private: bool) -> Self {
        VictimModel {
            slots: (0..nslots).map(|_| TaskSlot::default()).collect(),
            data: (0..nslots).map(|_| AtomicUsize::new(usize::MAX)).collect(),
            bot: AtomicUsize::new(0),
            n_public: AtomicUsize::new(0),
            publish_request: AtomicBool::new(false),
            executed: (0..ntasks).map(|_| AtomicUsize::new(0)).collect(),
            private,
            publish_batch: 1,
        }
    }

    /// Mirrors `WorkerHandle::try_push` (spawn). Returns the new `top`.
    ///
    /// `publish_all` corresponds to `force_publish_all` (the non-private
    /// behavior of publishing every descriptor immediately).
    pub fn owner_push(&self, top: usize, id: usize, publish_all: bool) -> usize {
        let k = top;
        let slot = &self.slots[k];
        check_transition(slot, |s| !is_stolen(s), "model spawn reuses slot");
        // TaskRepr::store: the closure write, before the state store.
        self.data[k].store(id, Relaxed);
        if self.private && !publish_all {
            slot.state.store(TASK, Relaxed);
        } else {
            slot.state.store(TASK, Release);
        }
        let top = k + 1;
        if self.private {
            if publish_all {
                self.n_public.store(top, Release);
            } else if self.publish_request.load(Relaxed) {
                self.publish(top);
            }
        }
        top
    }

    /// Mirrors `WorkerHandle::publish` (§III-B trip-wire response).
    pub fn publish(&self, top: usize) {
        self.publish_request.store(false, Relaxed);
        let np = self.n_public.load(Relaxed);
        if top > np {
            self.n_public
                .store((np + self.publish_batch).min(top), Release);
        }
    }

    /// Mirrors `WorkerHandle::join_task` + `rts_join` for the `NoLock`
    /// steal protocol. Consumes the youngest task; returns the new
    /// `top`. Every blocking wait in the real code is a spin here, so a
    /// protocol hole that can hang a join is reported by the checker as
    /// a deadlock or livelock.
    pub fn owner_join(&self, top: usize) -> usize {
        let k = top - 1;
        let slot = &self.slots[k];

        if self.private && k >= self.n_public.load(Relaxed) {
            // Private fast path (join_task): wait out a transient thief,
            // then pop with plain stores.
            while slot.state.load(Relaxed) != TASK {
                hint::spin_loop();
            }
            check_transition(slot, |s| s == TASK || s == EMPTY, "model private pop");
            slot.state.store(EMPTY, Relaxed);
            self.execute(k);
            return k;
        }

        // Public fast path: one swap.
        let mut s = slot.state.swap(EMPTY, AcqRel);
        if s == TASK {
            if self.private && self.n_public.load(Relaxed) > k {
                self.n_public.store(k, Release);
            }
            self.execute(k);
            return k;
        }

        // RTS_join.
        loop {
            if s == EMPTY {
                s = spin_while_empty(slot);
            }
            if s == TASK {
                s = slot.state.swap(EMPTY, AcqRel);
                if s == TASK {
                    self.execute(k);
                    return k;
                }
                continue;
            }
            if is_stolen(s) {
                // leap_wait, reduced to its wait (the model's thieves
                // have no deques of their own to leap-frog into).
                loop {
                    let t = slot.state.load(Acquire);
                    if is_done(t) {
                        s = t;
                        break;
                    }
                    hint::spin_loop();
                }
            }
            assert!(is_done(s), "model join saw unexpected state {s}");
            if self.private && self.n_public.load(Relaxed) > k {
                self.n_public.store(k, Release);
            }
            // The thief advanced `bot`; synchronized on DONE, we own it.
            assert_eq!(
                self.bot.load(Relaxed),
                k + 1,
                "bot does not point past the joined stolen slot"
            );
            self.bot.store(k, Release);
            // finish_stolen: reading the result requires the execution
            // to have happened (exactly once) before the DONE we saw.
            let id = self.data[k].load(Relaxed);
            assert_eq!(
                self.executed[id].load(Relaxed),
                1,
                "result read without a happens-before execution"
            );
            return k;
        }
    }

    /// Mirrors `WorkerHandle::steal_nolock` (`RTS_steal`, Figure 3),
    /// including the §III-A back-off validation and the §III-B privacy
    /// clause and trip wire. `me` is the thief index.
    pub fn thief_attempt(&self, me: usize) -> Attempt {
        let b = self.bot.load(Acquire);
        if self.private {
            let np = self.n_public.load(Acquire);
            if b >= np {
                self.publish_request.store(true, Relaxed);
                return Attempt::Empty;
            }
        }
        if b >= self.slots.len() {
            return Attempt::Empty;
        }
        let slot = &self.slots[b];
        if slot.state.load(Acquire) != TASK {
            return Attempt::Empty;
        }
        if slot
            .state
            .compare_exchange(TASK, EMPTY, AcqRel, Relaxed)
            .is_err()
        {
            return Attempt::Retry;
        }
        // §III-A back-off validation.
        if self.bot.load(Acquire) != b || (self.private && self.n_public.load(Acquire) <= b) {
            check_transition(slot, |s| s == EMPTY, "model back-off restore");
            slot.state.store(TASK, Release);
            return Attempt::Retry;
        }
        check_transition(slot, |s| s == EMPTY, "model STOLEN announcement");
        slot.state.store(stolen(me), Release);
        self.bot.store(b + 1, Release);
        if self.private {
            // Trip wire with trip_distance = 1.
            let np = self.n_public.load(Relaxed);
            if np.saturating_sub(b + 1) < 1 {
                self.publish_request.store(true, Relaxed);
            }
        }
        // execute_stolen: run, then publish completion.
        let id = self.data[b].load(Relaxed);
        self.executed[id].fetch_add(1, Relaxed);
        // Legal: STOLEN(me) untouched, or EMPTY if the joining owner's
        // swap already consumed the STOLEN marker and is waiting for the
        // DONE below (mirrors the exec.rs guard; the EMPTY case is the
        // interleaving this model originally caught).
        let mine = stolen(me);
        check_transition(
            slot,
            move |s| s == mine || s == EMPTY,
            "model completion publish",
        );
        slot.state.store(DONE, Release);
        Attempt::Executed(id)
    }

    /// Records an inline execution of the task in slot `k`.
    fn execute(&self, k: usize) {
        let id = self.data[k].load(Relaxed);
        self.executed[id].fetch_add(1, Relaxed);
    }

    /// Asserts the exactly-once property over every task identity.
    pub fn assert_each_executed_once(&self) {
        for (id, n) in self.executed.iter().enumerate() {
            assert_eq!(
                n.load(Relaxed),
                1,
                "task {id} executed {} times, expected exactly once",
                n.load(Relaxed)
            );
        }
    }
}

/// Counter-instrumented [`wool_core::Runnable`] payloads for the
/// injector and serve models: each probe adds its value to a shared sum
/// when run, and bumps `dropped` if disposed unrun.
pub mod probe {
    use std::sync::Arc;
    use wool_core::sync::atomic::{AtomicUsize, Ordering::Relaxed};
    use wool_core::Runnable;

    /// Shared counters the probes report into.
    #[derive(Default)]
    pub struct Counters {
        /// Sum of the values of all probes that ran.
        pub sum: AtomicUsize,
        /// Number of probes that ran.
        pub ran: AtomicUsize,
        /// Number of probes disposed without running.
        pub dropped: AtomicUsize,
    }

    struct Payload {
        counters: Arc<Counters>,
        value: usize,
    }

    unsafe fn call(data: *mut (), _ctx: *mut ()) {
        let p = Box::from_raw(data as *mut Payload);
        p.counters.sum.fetch_add(p.value, Relaxed);
        p.counters.ran.fetch_add(1, Relaxed);
    }

    unsafe fn drop_fn(data: *mut ()) {
        let p = Box::from_raw(data as *mut Payload);
        p.counters.dropped.fetch_add(1, Relaxed);
    }

    /// Builds a probe job carrying `value`.
    pub fn probe(counters: &Arc<Counters>, value: usize) -> Runnable {
        let b = Box::new(Payload {
            counters: Arc::clone(counters),
            value,
        });
        // SAFETY: the box pointer is consumed exactly once by `call` or
        // `drop_fn`, per the queue's contract.
        unsafe { Runnable::new(Box::into_raw(b) as *mut (), call, drop_fn, 0, value as u32) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The model functions are plain sequential code outside a checker
    /// run; a smoke test keeps them honest under `cargo test` without
    /// `--cfg loom`.
    #[test]
    fn sequential_push_join_roundtrip() {
        let m = VictimModel::new(2, 2, true);
        let top = m.owner_push(0, 0, false);
        let top = m.owner_push(top, 1, false);
        let top = m.owner_join(top);
        let top = m.owner_join(top);
        assert_eq!(top, 0);
        m.assert_each_executed_once();
    }

    #[test]
    fn sequential_steal_then_join() {
        let m = VictimModel::new(1, 1, true);
        let top = m.owner_push(0, 0, true);
        assert_eq!(m.thief_attempt(3), Attempt::Executed(0));
        let _ = m.owner_join(top);
        m.assert_each_executed_once();
    }

    #[test]
    fn privacy_miss_requests_publication() {
        let m = VictimModel::new(1, 1, true);
        let top = m.owner_push(0, 0, false);
        assert_eq!(m.thief_attempt(3), Attempt::Empty);
        assert!(m.publish_request.load(Relaxed));
        // The next owner push (or an explicit publish) honors it.
        m.publish(top);
        assert_eq!(m.n_public.load(Relaxed), 1);
        assert_eq!(m.thief_attempt(3), Attempt::Executed(0));
        let _ = m.owner_join(top);
        m.assert_each_executed_once();
    }

    #[test]
    fn probe_runs_and_drops() {
        use std::sync::Arc;
        let c = Arc::new(probe::Counters::default());
        let q = wool_core::Injector::with_capacity(2);
        q.push(probe::probe(&c, 5)).ok().unwrap();
        q.push(probe::probe(&c, 7)).ok().unwrap();
        // SAFETY: probe payloads ignore the ctx pointer.
        unsafe { q.pop().unwrap().run(std::ptr::null_mut()) };
        drop(q); // second probe disposed unrun
        assert_eq!(c.sum.load(Relaxed), 5);
        assert_eq!(c.ran.load(Relaxed), 1);
        assert_eq!(c.dropped.load(Relaxed), 1);
    }
}
