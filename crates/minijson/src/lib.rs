//! # minijson — a dependency-free JSON toolkit
//!
//! The repository builds in hermetic environments with no access to a
//! crates registry, so `serde`/`serde_json` are not available. This
//! crate provides the small slice of their functionality the workspace
//! needs:
//!
//! * [`Json`] — an ordered JSON value (object keys keep insertion
//!   order, so emitted documents are stable and diffable),
//! * [`Json::pretty`] / [`Json::compact`] — printers with full string
//!   escaping,
//! * [`parse`] — a strict recursive-descent parser (used by tests to
//!   validate emitted documents, e.g. Chrome trace files),
//! * [`ToJson`] — a conversion trait with impls for primitives,
//!   strings, options, vectors, slices and pairs, plus the
//!   [`impl_to_json!`] macro that derives it for plain structs.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// A JSON value. Object fields preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`; integral values within the
    /// exactly-representable range print without a decimal point).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered list of `(key, value)` pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline-free
    /// document (callers append their own newline if they want one).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(0));
        out
    }

    /// Renders without any whitespace.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, '[', ']', items.len(), |out, i, ind| {
                items[i].write(out, ind);
            }),
            Json::Obj(fields) => write_seq(out, indent, '{', '}', fields.len(), |out, i, ind| {
                write_escaped(out, &fields[i].0);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                fields[i].1.write(out, ind);
            }),
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; emit null like serde_json does.
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Shared array/object printer: `n` elements emitted by `emit`,
/// pretty-printed when `indent` is set.
fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    n: usize,
    emit: impl Fn(&mut String, usize, Option<usize>),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|d| d + 1);
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(d) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(d));
        }
        emit(out, i, inner);
    }
    if let Some(d) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(d));
    }
    out.push(close);
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Description of what was expected.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',', "expected ',' or ']'")?;
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(fields));
            }
            self.expect(b',', "expected ',' or '}'")?;
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("control character in string")),
                c => {
                    // Re-assemble UTF-8 multibyte sequences: the input is
                    // a &str, so byte runs are valid UTF-8 already.
                    if c < 0x80 {
                        out.push(c as char);
                    } else {
                        let start = self.i - 1;
                        while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                            self.i += 1;
                        }
                        out.push_str(
                            std::str::from_utf8(&self.b[start..self.i])
                                .map_err(|_| self.err("invalid UTF-8"))?,
                        );
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.eat(b'.') {
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

/// Conversion into a [`Json`] value.
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Json;
}

macro_rules! to_json_num {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        })*
    };
}
to_json_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Row { name: String, value: f64 }
/// minijson::impl_to_json!(Row { name, value });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::ToJson::to_json(&self.$field))),+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for src in ["null", "true", "false", "0", "-1.5", "1e3", "\"hi\""] {
            let v = parse(src).unwrap();
            assert_eq!(parse(&v.compact()).unwrap(), v, "{src}");
        }
    }

    #[test]
    fn roundtrip_nested() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x\ny","d":{"e":[]}}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.compact()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Json::Num(3.0).compact(), "3");
        assert_eq!(Json::Num(3.5).compact(), "3.5");
        assert_eq!(Json::Num(-0.0).compact(), "0");
        assert_eq!(Json::Num(f64::NAN).compact(), "null");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" backslash\\ newline\n tab\t unicode\u{1F600} ctrl\u{01}";
        let v = Json::Str(s.to_string());
        assert_eq!(parse(&v.compact()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_escapes() {
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1 2",
            "\"\u{01}\"",
            "{1:2}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = parse(r#"{"n": 42, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert!(v.get("missing").is_none());
        assert!(v.get("s").unwrap().as_u64().is_none());
    }

    #[test]
    fn to_json_impls() {
        #[derive(Debug)]
        struct Row {
            name: String,
            vals: Vec<(usize, f64)>,
            opt: Option<u32>,
        }
        impl_to_json!(Row { name, vals, opt });
        let r = Row {
            name: "w".into(),
            vals: vec![(1, 2.5)],
            opt: None,
        };
        let j = r.to_json();
        assert_eq!(j.compact(), r#"{"name":"w","vals":[[1,2.5]],"opt":null}"#);
    }

    #[test]
    fn pretty_is_indented() {
        let v = parse(r#"{"a":[1],"b":{}}"#).unwrap();
        let p = v.pretty();
        assert!(p.contains("\n  \"a\": [\n    1\n  ]"), "{p}");
    }
}
